"""The in-memory triple store.

Supports the full pattern-matching API (any combination of bound
subject / predicate / object), insertion, deletion, bulk loading and
cardinality estimates. All terms are dictionary-encoded; the public API
speaks :class:`~repro.store.terms.Term` objects.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.store.dictionary import TermDictionary
from repro.store.index import TwoLevelIndex
from repro.store.terms import IRI, Term
from repro.store.triples import Triple


class TripleStore:
    """Dictionary-encoded triple store with SPO / POS / OSP indexes.

    >>> store = TripleStore()
    >>> _ = store.add(Triple.of("merkel", "leaderOf", "germany"))
    >>> store.count(predicate=IRI("leaderOf"))
    1
    """

    def __init__(self, triples: Iterable[Triple] | None = None) -> None:
        self._dictionary = TermDictionary()
        self._spo = TwoLevelIndex()
        self._pos = TwoLevelIndex()
        self._osp = TwoLevelIndex()
        if triples is not None:
            self.add_all(triples)

    # -- mutation ---------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert ``triple``; return ``True`` if it was not present."""
        s = self._dictionary.encode(triple.subject)
        p = self._dictionary.encode(triple.predicate)
        o = self._dictionary.encode(triple.object)
        if not self._spo.add(s, p, o):
            return False
        self._pos.add(p, o, s)
        self._osp.add(o, s, p)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Bulk insert; return the number of *new* triples."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Delete ``triple``; return ``True`` if it was present."""
        s = self._dictionary.lookup(triple.subject)
        p = self._dictionary.lookup(triple.predicate)
        o = self._dictionary.lookup(triple.object)
        if s is None or p is None or o is None:
            return False
        if not self._spo.remove(s, p, o):
            return False
        self._pos.remove(p, o, s)
        self._osp.remove(o, s, p)
        return True

    # -- lookup -----------------------------------------------------------

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, Triple):
            return False
        s = self._dictionary.lookup(triple.subject)
        p = self._dictionary.lookup(triple.predicate)
        o = self._dictionary.lookup(triple.object)
        if s is None or p is None or o is None:
            return False
        return self._spo.contains(s, p, o)

    def match(
        self,
        subject: IRI | None = None,
        predicate: IRI | None = None,
        obj: Term | None = None,
    ) -> Iterator[Triple]:
        """Iterate all triples matching the bound components.

        Unbound components are ``None``. The index whose ordering matches
        the bound prefix is chosen so every pattern needs one scan:

        ========================  =======
        bound                     index
        ========================  =======
        (none), S, S+P, S+P+O     SPO
        P, P+O                    POS
        O, O+S                    OSP
        ========================  =======
        """
        s = self._lookup_or_none(subject)
        p = self._lookup_or_none(predicate)
        o = self._lookup_or_none(obj)
        # A bound term that is not in the dictionary matches nothing.
        if (subject is not None and s is None) or (
            predicate is not None and p is None
        ) or (obj is not None and o is None):
            return
        decode = self._dictionary.decode
        if s is not None and p is not None and o is not None:
            if self._spo.contains(s, p, o):
                yield Triple(subject, predicate, obj)  # type: ignore[arg-type]
            return
        if s is not None:
            # Predicate may be bound (prefix scan) while the object is also
            # bound (S+O pattern, P free): filter the scan on the object.
            for s_, p_, o_ in self._spo.scan(s, p):
                if o is not None and o_ != o:
                    continue
                yield Triple(decode(s_), decode(p_), decode(o_))  # type: ignore[arg-type]
            return
        if p is not None:
            for p_, o_, s_ in self._pos.scan(p, o):
                yield Triple(decode(s_), decode(p_), decode(o_))  # type: ignore[arg-type]
            return
        if o is not None:
            for o_, s_, p_ in self._osp.scan(o):
                yield Triple(decode(s_), decode(p_), decode(o_))  # type: ignore[arg-type]
            return
        for s_, p_, o_ in self._spo.scan():
            yield Triple(decode(s_), decode(p_), decode(o_))  # type: ignore[arg-type]

    def count(
        self,
        subject: IRI | None = None,
        predicate: IRI | None = None,
        obj: Term | None = None,
    ) -> int:
        """Cardinality of a pattern. O(1) for (), S, P, S+P, P+O; scans else."""
        s = self._lookup_or_none(subject)
        p = self._lookup_or_none(predicate)
        o = self._lookup_or_none(obj)
        if (subject is not None and s is None) or (
            predicate is not None and p is None
        ) or (obj is not None and o is None):
            return 0
        if s is None and p is None and o is None:
            return len(self._spo)
        if s is not None and o is None:
            return self._spo.count(s, p)
        if p is not None and s is None:
            return self._pos.count(p, o)
        if o is not None and p is None:
            return self._osp.count(o, s)
        # S and O bound (P free), or fully bound: fall back to a scan.
        return sum(1 for _ in self.match(subject, predicate, obj))

    # -- vocabulary -------------------------------------------------------

    def subjects(self) -> Iterator[IRI]:
        """Distinct subjects."""
        decode = self._dictionary.decode
        for s in self._spo.firsts():
            yield decode(s)  # type: ignore[misc]

    def predicates(self) -> Iterator[IRI]:
        """Distinct predicates."""
        decode = self._dictionary.decode
        for p in self._pos.firsts():
            yield decode(p)  # type: ignore[misc]

    def objects(self) -> Iterator[Term]:
        """Distinct objects."""
        decode = self._dictionary.decode
        for o in self._osp.firsts():
            yield decode(o)

    def terms(self) -> Iterator[Term]:
        """All terms ever seen (including removed ones — ids are stable)."""
        return iter(self._dictionary)

    @property
    def dictionary(self) -> TermDictionary:
        return self._dictionary

    def __len__(self) -> int:
        return len(self._spo)

    def __iter__(self) -> Iterator[Triple]:
        return self.match()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TripleStore(triples={len(self)}, terms={len(self._dictionary)})"

    # -- internals --------------------------------------------------------

    def _lookup_or_none(self, term: Term | None) -> int | None:
        if term is None:
            return None
        return self._dictionary.lookup(term)
