"""Plain-text table rendering for experiment reports.

The evaluation harness prints tables shaped like the ones in the paper
(Table 2, Table 3, ...). This module renders them without third-party
dependencies, as GitHub-flavoured markdown or aligned ASCII.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any


def _render_cell(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


@dataclass
class Table:
    """A small column-oriented table builder.

    >>> t = Table(["algo", "f1"])
    >>> t.add_row(["ContextRW", 0.23])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    algo       | f1
    -----------+------
    ContextRW  | 0.2300
    """

    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    float_format: str = ".4f"
    title: str | None = None

    def add_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(row))

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.add_row(row)

    def sorted_by(self, column: str, *, reverse: bool = False) -> "Table":
        """Return a copy sorted by ``column``."""
        index = list(self.columns).index(column)
        clone = Table(list(self.columns), float_format=self.float_format, title=self.title)
        clone.rows = sorted(self.rows, key=lambda row: row[index], reverse=reverse)
        return clone

    def column(self, name: str) -> list[Any]:
        """Return the values of column ``name`` in row order."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def render(self, *, markdown: bool = False) -> str:
        """Render as aligned ASCII (default) or markdown."""
        header = [str(c) for c in self.columns]
        body = [
            [_render_cell(cell, self.float_format) for cell in row] for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        if markdown:
            lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(header, widths)) + " |")
            lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
            for row in body:
                lines.append(
                    "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
                )
        else:
            lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
            lines.append("-+-".join("-" * w for w in widths))
            for row in body:
                lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as minimal CSV (cells containing commas are quoted)."""

        def esc(cell: str) -> str:
            return f'"{cell}"' if ("," in cell or '"' in cell) else cell

        out = [",".join(esc(str(c)) for c in self.columns)]
        for row in self.rows:
            out.append(
                ",".join(esc(_render_cell(cell, self.float_format)) for cell in row)
            )
        return "\n".join(out)

    def __len__(self) -> int:
        return len(self.rows)


def format_table(
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
    markdown: bool = False,
    float_format: str = ".4f",
) -> str:
    """One-shot helper: build and render a :class:`Table`."""
    table = Table(columns, float_format=float_format, title=title)
    table.extend(rows)
    return table.render(markdown=markdown)
