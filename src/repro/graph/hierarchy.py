"""Type hierarchy (YAGO's ``subclassOf`` lattice).

YAGO carries 366K node types organized in a hierarchy. The experiments use
it to pick domain populations ("politicians", "actors") including instances
of subtypes. The hierarchy is extracted from the graph's ``subclassOf``
edges and supports transitive queries with memoisation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.graph.labels import SUBCLASS_OF_LABEL, TYPE_LABEL
from repro.graph.model import KnowledgeGraph, NodeRef


class TypeHierarchy:
    """Transitive-closure queries over the ``subclassOf`` relation."""

    def __init__(self, graph: KnowledgeGraph) -> None:
        self._graph = graph
        self._version = graph.version
        self._ancestors_cache: dict[int, frozenset[int]] = {}
        self._descendants_cache: dict[int, frozenset[int]] = {}

    def _check_version(self) -> None:
        if self._graph.version != self._version:
            self._ancestors_cache.clear()
            self._descendants_cache.clear()
            self._version = self._graph.version

    # -- structure ----------------------------------------------------------

    def supertypes(self, type_node: NodeRef) -> set[str]:
        """Direct supertypes of ``type_node`` (names)."""
        graph = self._graph
        return {
            graph.node_name(t)
            for t in graph.neighbors(type_node, SUBCLASS_OF_LABEL)
        }

    def subtypes(self, type_node: NodeRef) -> set[str]:
        """Direct subtypes of ``type_node`` (names)."""
        graph = self._graph
        return {
            graph.node_name(t)
            for t in graph.neighbors(type_node, SUBCLASS_OF_LABEL, direction="in")
        }

    def ancestors(self, type_node: NodeRef) -> set[str]:
        """All transitive supertypes (excluding the type itself)."""
        node_id = self._graph.node_id(type_node)
        return {self._graph.node_name(t) for t in self._ancestor_ids(node_id)}

    def descendants(self, type_node: NodeRef) -> set[str]:
        """All transitive subtypes (excluding the type itself)."""
        node_id = self._graph.node_id(type_node)
        return {self._graph.node_name(t) for t in self._descendant_ids(node_id)}

    def _ancestor_ids(self, node_id: int) -> frozenset[int]:
        self._check_version()
        cached = self._ancestors_cache.get(node_id)
        if cached is not None:
            return cached
        result = frozenset(self._closure(node_id, direction="out"))
        self._ancestors_cache[node_id] = result
        return result

    def _descendant_ids(self, node_id: int) -> frozenset[int]:
        self._check_version()
        cached = self._descendants_cache.get(node_id)
        if cached is not None:
            return cached
        result = frozenset(self._closure(node_id, direction="in"))
        self._descendants_cache[node_id] = result
        return result

    def _closure(self, start: int, *, direction: str) -> Iterator[int]:
        """BFS over subclassOf edges; robust to cycles."""
        graph = self._graph
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in graph.neighbors(node, SUBCLASS_OF_LABEL, direction=direction):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
                    yield nxt

    # -- instance queries ----------------------------------------------------

    def is_subtype(self, child: NodeRef, parent: NodeRef) -> bool:
        """Whether ``child`` is (transitively) a subclass of ``parent``."""
        child_id = self._graph.node_id(child)
        parent_id = self._graph.node_id(parent)
        if child_id == parent_id:
            return True
        return parent_id in self._ancestor_ids(child_id)

    def instances(self, type_node: NodeRef, *, transitive: bool = True) -> set[int]:
        """Node ids typed with ``type_node`` or (optionally) any subtype."""
        graph = self._graph
        root = graph.node_id(type_node)
        type_ids = {root}
        if transitive:
            type_ids |= set(self._descendant_ids(root))
        out: set[int] = set()
        for type_id in type_ids:
            out.update(graph.neighbors(type_id, TYPE_LABEL, direction="in"))
        return out

    def types_of(self, node: NodeRef, *, transitive: bool = False) -> set[str]:
        """Type names of ``node``, optionally with all supertypes."""
        graph = self._graph
        direct = {graph.node_id(t) for t in graph.neighbors(node, TYPE_LABEL)}
        all_ids = set(direct)
        if transitive:
            for type_id in direct:
                all_ids |= set(self._ancestor_ids(type_id))
        return {graph.node_name(t) for t in all_ids}

    def shared_types(self, nodes: Iterable[NodeRef], *, transitive: bool = True) -> set[str]:
        """Type names common to every node in ``nodes``."""
        shared: set[str] | None = None
        for node in nodes:
            types = self.types_of(node, transitive=transitive)
            shared = types if shared is None else shared & types
            if not shared:
                return set()
        return shared or set()
