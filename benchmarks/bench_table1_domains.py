"""Table 1 — the query entities of the three evaluation domains.

Regenerates the table and asserts that all 18 entities resolve to nodes in
the synthetic YAGO graph (entity resolution is the input assumption of
Section 2).
"""

from conftest import run_once

from repro.eval.experiments import domains_table


def test_table1_domains(benchmark, setting):
    table = run_once(benchmark, domains_table, setting)
    print()
    print(table.render())

    assert len(table) == 18, "three domains x six entities"
    assert all(table.column("resolved")), "every Table-1 entity must resolve"
    assert all(degree > 0 for degree in table.column("out_degree"))
    domains = set(table.column("domain"))
    assert domains == {"politicians", "actors", "movie contributors"}
