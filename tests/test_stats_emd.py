"""Unit tests for Earth Mover's Distance."""

import pytest
from scipy.stats import wasserstein_distance

from repro.errors import StatisticsError
from repro.stats.emd import earth_movers_distance_1d, total_variation_distance


class TestEmd1d:
    def test_identical_is_zero(self):
        assert earth_movers_distance_1d([1, 2, 3], [1, 2, 3]) == pytest.approx(0.0)

    def test_unit_shift(self):
        # all mass moves one position
        assert earth_movers_distance_1d([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_agrees_with_scipy(self):
        p = [3, 1, 0, 2]
        q = [1, 1, 2, 2]
        positions = [0, 1, 2, 3]
        ours = earth_movers_distance_1d(p, q, positions=positions)
        theirs = wasserstein_distance(
            positions, positions, u_weights=p, v_weights=q
        )
        assert ours == pytest.approx(float(theirs))

    def test_explicit_positions_scale_distance(self):
        near = earth_movers_distance_1d([1, 0], [0, 1], positions=[0, 1])
        far = earth_movers_distance_1d([1, 0], [0, 1], positions=[0, 10])
        assert far == pytest.approx(10 * near)

    def test_symmetry(self):
        p, q = [2, 1, 1], [0, 1, 3]
        assert earth_movers_distance_1d(p, q) == pytest.approx(
            earth_movers_distance_1d(q, p)
        )

    def test_triangle_inequality(self):
        a, b, c = [4, 0, 0], [0, 4, 0], [0, 0, 4]
        ab = earth_movers_distance_1d(a, b)
        bc = earth_movers_distance_1d(b, c)
        ac = earth_movers_distance_1d(a, c)
        assert ac <= ab + bc + 1e-12

    def test_single_cell_support(self):
        assert earth_movers_distance_1d([5], [3]) == pytest.approx(0.0)

    def test_decreasing_positions_rejected(self):
        with pytest.raises(StatisticsError):
            earth_movers_distance_1d([1, 1], [1, 1], positions=[1, 0])

    def test_position_shape_mismatch(self):
        with pytest.raises(StatisticsError):
            earth_movers_distance_1d([1, 1], [1, 1], positions=[0, 1, 2])

    def test_empty_rejected(self):
        with pytest.raises(StatisticsError):
            earth_movers_distance_1d([], [])


class TestTotalVariation:
    def test_identical_is_zero(self):
        assert total_variation_distance([1, 1], [2, 2]) == pytest.approx(0.0)

    def test_disjoint_is_one(self):
        assert total_variation_distance([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_bounded(self):
        assert 0 <= total_variation_distance([3, 1, 2], [1, 1, 4]) <= 1

    def test_symmetric(self):
        p, q = [5, 1], [2, 4]
        assert total_variation_distance(p, q) == pytest.approx(
            total_variation_distance(q, p)
        )

    def test_shape_mismatch(self):
        with pytest.raises(StatisticsError):
            total_variation_distance([1], [1, 2])
