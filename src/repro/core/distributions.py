"""Instance and cardinality distributions (Section 3.2).

For an edge label ``l`` and node sets ``Q`` (query) and ``C`` (context):

* the **instance** distributions ``Inst_q / Inst_c`` count, for each value
  node ``i``, how many ``l``-labelled edges from the set end in ``i``. A
  ``None`` bucket counts set members with *no* ``l``-edge — Figure 7 shows
  it explicitly ("The first label is None, indicating no matching edge
  found").
* the **cardinality** distributions ``Card_q / Card_c`` count, for each
  ``i = 0, 1, 2, ...``, how many set members have exactly ``i``
  ``l``-labelled edges. This captures existence/cardinality facts that
  instance counts cannot ("Angela Merkel has no child while all other
  leaders have at least one").

Query and context vectors are aligned over the same support, "so x_i is
zero if i appears only in the context".

Paper cross-reference (Mottin et al., EDBT 2018):

* **Section 3.2, instance distributions** — :func:`instance_counts`
  (reference) and the instance channel of :class:`_SweepCounts` (batch);
  the ``None`` bucket realises Figure 7's explicit "no matching edge"
  label (the ``hasWonPrize`` example).
* **Section 3.2, cardinality distributions** — :func:`cardinality_counts`
  and the cardinality channel of :class:`_SweepCounts`; Figure 8's
  ``hasChild`` histogram ("Angela Merkel has no child while all other
  leaders have at least one") is exactly a
  :meth:`CharacteristicDistributions.cardinality_rows` table.
* **Support alignment** ("x_i is zero if i appears only in the
  context") — :func:`_assemble`, shared by both paths so the batch
  sweep is bit-identical to the per-label reference.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.graph.model import KnowledgeGraph, NodeRef
from repro.stats.histograms import align_count_maps
from repro.walk import kernels

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.graph.compiled import CompiledGraph


class _NoneInstance:
    """Sentinel for the "no matching edge" bucket of instance distributions.

    A dedicated singleton (rather than the string ``"None"``) cannot collide
    with a graph node that happens to be named ``None``.
    """

    _instance: "_NoneInstance | None" = None

    def __new__(cls) -> "_NoneInstance":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "None"

    def __str__(self) -> str:
        return "None"


#: The "no matching edge" instance value.
NONE_INSTANCE = _NoneInstance()


def instance_counts(
    graph: KnowledgeGraph,
    nodes: Iterable[NodeRef],
    label: str,
    *,
    none_bucket: bool = True,
) -> dict[object, int]:
    """``{value: occurrences}`` of ``label``-edge endpoints from ``nodes``.

    Values are the *names* of the target nodes (phi of Definition 1).
    With ``none_bucket`` (default) every member without any ``label`` edge
    contributes one count to :data:`NONE_INSTANCE`.
    """
    counts: dict[object, int] = {}
    for node in nodes:
        targets = list(graph.neighbors(node, label))
        if not targets and none_bucket:
            counts[NONE_INSTANCE] = counts.get(NONE_INSTANCE, 0) + 1
            continue
        for target in targets:
            value = graph.node_name(target)
            counts[value] = counts.get(value, 0) + 1
    return counts


def cardinality_counts(
    graph: KnowledgeGraph, nodes: Iterable[NodeRef], label: str
) -> dict[int, int]:
    """``{i: number of members with exactly i label-edges}``."""
    counts: dict[int, int] = {}
    for node in nodes:
        degree = graph.out_degree(node, label)
        counts[degree] = counts.get(degree, 0) + 1
    return counts


@dataclass(frozen=True)
class CharacteristicDistributions:
    """The four aligned distributions of one candidate characteristic."""

    label: str
    instance_support: tuple[object, ...]
    inst_query: np.ndarray
    inst_context: np.ndarray
    cardinality_support: tuple[int, ...]
    card_query: np.ndarray
    card_context: np.ndarray

    @property
    def query_size(self) -> int:
        """|Q| recovered from the cardinality histogram."""
        return int(self.card_query.sum())

    @property
    def context_size(self) -> int:
        """|C| recovered from the cardinality histogram."""
        return int(self.card_context.sum())

    def instance_rows(self) -> list[tuple[str, int, int]]:
        """``(value, query count, context count)`` rows for reporting."""
        return [
            (str(value), int(q), int(c))
            for value, q, c in zip(
                self.instance_support, self.inst_query, self.inst_context
            )
        ]

    def cardinality_rows(self) -> list[tuple[int, int, int]]:
        """``(cardinality, query count, context count)`` rows for reporting."""
        return [
            (int(value), int(q), int(c))
            for value, q, c in zip(
                self.cardinality_support, self.card_query, self.card_context
            )
        ]


def _assemble(
    label: str,
    inst_q: dict[object, int],
    inst_c: dict[object, int],
    card_q: dict[int, int],
    card_c: dict[int, int],
) -> CharacteristicDistributions:
    """Align count maps into one :class:`CharacteristicDistributions`.

    Shared by the per-label reference path and the batch sweep, so both
    produce bit-identical supports and arrays from equal count maps.
    """
    instance_support, x_inst, y_inst = align_count_maps(inst_q, inst_c)

    max_cardinality = max(
        max(card_q, default=0),
        max(card_c, default=0),
    )
    card_support = list(range(max_cardinality + 1))
    x_card = np.array([card_q.get(i, 0) for i in card_support], dtype=np.int64)
    y_card = np.array([card_c.get(i, 0) for i in card_support], dtype=np.int64)

    return CharacteristicDistributions(
        label=label,
        instance_support=tuple(instance_support),
        inst_query=x_inst,
        inst_context=y_inst,
        cardinality_support=tuple(card_support),
        card_query=x_card,
        card_context=y_card,
    )


def build_distributions(
    graph: KnowledgeGraph,
    query: Sequence[NodeRef],
    context: Sequence[NodeRef],
    label: str,
    *,
    none_bucket: bool = True,
) -> CharacteristicDistributions:
    """Build the aligned Inst/Card distribution pairs for ``label``.

    The cardinality support is the contiguous range ``0..max`` observed in
    either set, so the histograms read like Figure 8 (zeros included).

    This is the reference implementation: one adjacency scan per label.
    The pipeline hot path uses :func:`build_all_distributions`, which
    produces identical output for every label in a single sweep.
    """
    return _assemble(
        label,
        instance_counts(graph, query, label, none_bucket=none_bucket),
        instance_counts(graph, context, label, none_bucket=none_bucket),
        cardinality_counts(graph, query, label),
        cardinality_counts(graph, context, label),
    )


class _SweepCounts:
    """Label-id-keyed counters from one columnar pass over a node set."""

    __slots__ = (
        "size",
        "inst_labels",
        "inst_targets",
        "inst_counts",
        "card_labels",
        "card_degrees",
        "card_counts",
        "members_with_label",
    )

    def __init__(
        self,
        compiled,
        members: "Sequence[int]",
        label_mask: "np.ndarray | None" = None,
    ) -> None:
        rows, owners = compiled.gather_rows(np.asarray(members, dtype=np.int64))
        labels = compiled.label_ids[rows]
        targets = compiled.targets[rows]
        if label_mask is not None:
            # Rows of labels the caller will never ask about (excluded /
            # inverse labels — often most of the adjacency) can be
            # dropped before the sort: counts for the surviving labels
            # are untouched, and the dropped labels' count_maps must not
            # be consulted (their members_with_label reads zero).
            keep = label_mask[labels]
            labels = labels[keep]
            targets = targets[keep]
            owners = owners[keep]
        # Instance channel: occurrences per (label, target) pair.
        node_count = max(compiled.node_count, 1)
        inst_key = labels * node_count + targets
        inst_unique, inst_counts = kernels.unique_counts(inst_key)
        # Cardinality channel: degree of each (member, label) pair.
        width = max(compiled.label_count, 1)
        pair_key = owners * width + labels
        pair_unique, pair_degree = kernels.unique_counts(pair_key)
        self._fill(
            len(members),
            compiled.label_count,
            node_count,
            inst_unique,
            inst_counts,
            pair_unique,
            pair_degree,
        )

    def _fill(
        self,
        size: int,
        label_count: int,
        node_count: int,
        inst_unique: np.ndarray,
        inst_counts: np.ndarray,
        pair_unique: np.ndarray,
        pair_degree: np.ndarray,
    ) -> None:
        """Finish construction from the two keyed channels.

        ``inst_unique`` holds sorted ``label * node_count + target`` keys
        with their occurrence counts; ``pair_unique`` sorted
        ``owner * label_count + label`` keys with each pair's edge count
        (= the member's degree under that label). Shared by
        :meth:`__init__` and the fused multi-set pass of
        :func:`sweep_counts_many`, so both land on identical state.
        """
        self.size = size
        self.inst_counts = inst_counts
        self.inst_labels = inst_unique // node_count
        self.inst_targets = inst_unique - self.inst_labels * node_count
        width = max(label_count, 1)
        pair_label = pair_unique % width
        self.members_with_label = np.bincount(pair_label, minlength=label_count)
        # Degrees histogrammed into member counts per (label, degree).
        degree_width = int(pair_degree.max()) + 1 if pair_degree.size else 1
        card_key = pair_label * degree_width + pair_degree
        card_unique, self.card_counts = kernels.unique_counts(card_key)
        self.card_labels = card_unique // degree_width
        self.card_degrees = card_unique - self.card_labels * degree_width

    def count_maps(
        self, label_id: "int | None", names: list[str], none_bucket: bool
    ) -> tuple[dict[object, int], dict[int, int]]:
        """The ``(instance, cardinality)`` count maps of one label.

        Content-identical to :func:`instance_counts` /
        :func:`cardinality_counts` over the same member set (zero-count
        cardinality buckets are omitted; the assembly fills them in).
        """
        instances: dict[object, int] = {}
        cardinalities: dict[int, int] = {}
        zero_members = self.size
        if label_id is not None:
            lo = int(np.searchsorted(self.inst_labels, label_id, side="left"))
            hi = int(np.searchsorted(self.inst_labels, label_id, side="right"))
            for target, count in zip(
                self.inst_targets[lo:hi].tolist(), self.inst_counts[lo:hi].tolist()
            ):
                instances[names[target]] = count
            lo = int(np.searchsorted(self.card_labels, label_id, side="left"))
            hi = int(np.searchsorted(self.card_labels, label_id, side="right"))
            for degree, count in zip(
                self.card_degrees[lo:hi].tolist(), self.card_counts[lo:hi].tolist()
            ):
                cardinalities[degree] = count
            zero_members = self.size - int(self.members_with_label[label_id])
        if zero_members > 0:
            cardinalities[0] = zero_members
            if none_bucket:
                instances[NONE_INSTANCE] = zero_members
        return instances, cardinalities


def sweep_counts_many(
    compiled: "CompiledGraph",
    node_sets: "Sequence[Sequence[int]]",
    label_mask: "np.ndarray | None" = None,
) -> "list[_SweepCounts]":
    """One :class:`_SweepCounts` per node set, from a single fused pass.

    The micro-batch worker path calls this with every batch member's query
    and context sets at once: one ``gather_rows`` and one keyed
    ``unique_counts`` per channel replace the per-member pairs, amortising
    the fixed sort/gather overhead across the batch. Each set's keys are
    offset into a disjoint range (``set_index * span``) so one sorted
    unique pass yields every member's slice; subtracting the offset
    recovers exactly the keys :meth:`_SweepCounts.__init__` derives, and
    the shared :meth:`_SweepCounts._fill` tail does the rest — the
    returned counters are interchangeable with per-set construction
    (``tests/test_batch_parity.py`` pins equality).
    """
    sets = [np.asarray(list(node_set), dtype=np.int64) for node_set in node_sets]
    if not sets:
        return []
    empty = np.empty(0, dtype=np.int64)
    # Saturated batches share their heaviest nodes: the same high-PPR
    # hubs headline nearly every member's context. Gather and sort each
    # distinct node's edges once, then assemble per-set counters from
    # the per-node slices — integer count sums, so exactly the counters
    # a per-set gather would produce, at a fraction of the sort volume.
    distinct, inverse = np.unique(np.concatenate(sets), return_inverse=True)
    rows, owners = compiled.gather_rows(distinct)
    labels = compiled.label_ids[rows].astype(np.int64, copy=False)
    targets = compiled.targets[rows].astype(np.int64, copy=False)
    if label_mask is not None:
        # Same row filter as _SweepCounts.__init__: drop edges of labels
        # the consumer will never query (excluded / inverse labels).
        keep = label_mask[labels]
        labels = labels[keep]
        targets = targets[keep]
        owners = owners[keep]
    node_count = max(compiled.node_count, 1)
    label_count = compiled.label_count
    width = max(label_count, 1)
    # One sort keyed (node, label, target): per-node instance slices are
    # contiguous runs, sorted by the same inner key _SweepCounts uses.
    span = width * node_count
    key = owners * span + labels * node_count + targets
    key_unique, key_counts = kernels.unique_counts(key)
    key_owner = key_unique // span
    inner_unique = key_unique - key_owner * span
    bounds = np.arange(distinct.shape[0] + 1, dtype=np.int64)
    node_slices = np.searchsorted(key_unique, bounds * span)
    # Per-node (label, degree) pairs fall out of the same sorted pass:
    # (node, label) runs are contiguous, and a run's total count is the
    # node's degree under that label — no second full sort.
    pair_full = key_owner * width + inner_unique // node_count
    if pair_full.size:
        run_starts = np.flatnonzero(
            np.concatenate((np.ones(1, dtype=bool), pair_full[1:] != pair_full[:-1]))
        )
        pair_keys = pair_full[run_starts]
        pair_counts = np.add.reduceat(key_counts, run_starts)
    else:
        pair_keys = pair_counts = empty
    pair_slices = np.searchsorted(pair_keys, bounds * width)
    out: "list[_SweepCounts]" = []
    position = 0
    for node_ids in sets:
        size = int(node_ids.shape[0])
        members = inverse[position : position + size]
        position += size
        # Instance channel: merge the member nodes' sorted key slices.
        # A stable argsort over pre-sorted runs is cheap, and summing
        # counts of equal keys matches a raw multiset count exactly.
        if size:
            keys = np.concatenate(
                [inner_unique[node_slices[d] : node_slices[d + 1]] for d in members]
            )
            counts = np.concatenate(
                [key_counts[node_slices[d] : node_slices[d + 1]] for d in members]
            )
        else:
            keys = counts = empty
        if keys.size:
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            counts = counts[order]
            starts = np.flatnonzero(
                np.concatenate((np.ones(1, dtype=bool), keys[1:] != keys[:-1]))
            )
            inst_unique = keys[starts]
            inst_counts = np.add.reduceat(counts, starts)
        else:
            inst_unique = inst_counts = empty
        # Cardinality channel: re-key each member node's (label, degree)
        # pairs to its set-local owner index. Owners ascend in set order
        # and labels ascend within each node, so the result is already
        # the sorted ``owner * width + label`` array __init__ derives.
        if size:
            pair_unique = np.concatenate(
                [
                    pair_keys[pair_slices[d] : pair_slices[d + 1]]
                    + (local * width - int(d) * width)
                    for local, d in enumerate(members)
                ]
            )
            pair_degree = np.concatenate(
                [pair_counts[pair_slices[d] : pair_slices[d + 1]] for d in members]
            )
        else:
            pair_unique = pair_degree = empty
        sweep = object.__new__(_SweepCounts)
        sweep._fill(  # noqa: SLF001 - same-module constructor tail
            size,
            label_count,
            node_count,
            inst_unique,
            inst_counts,
            pair_unique,
            pair_degree,
        )
        out.append(sweep)
    return out


def build_all_distributions(
    graph: KnowledgeGraph,
    query: Sequence[NodeRef],
    context: Sequence[NodeRef],
    labels: Iterable[str],
    *,
    none_bucket: bool = True,
    compiled: "CompiledGraph | None" = None,
    sweep_cache: "dict[tuple[int, ...], _SweepCounts] | None" = None,
) -> dict[str, CharacteristicDistributions]:
    """Build every label's distributions in one sweep over ``Q`` and ``C``.

    Instead of re-scanning each member's adjacency once per candidate
    label (the :func:`build_distributions` cost profile, O(|labels| *
    (|Q| + |C|)) scans), this gathers the members' edge rows from the
    compiled columnar snapshot once and accumulates **all** labels'
    instance and cardinality counters simultaneously, keyed by label id;
    node-name decoding is deferred to the final assembly and touches each
    distinct value once.

    Returns ``{label: distributions}`` preserving the input label order.
    Output is exactly equal — supports, ordering, arrays, the None
    bucket — to calling :func:`build_distributions` per label (the
    property tests in ``tests/test_perf_parity.py`` pin this down).

    A pre-pinned ``compiled`` snapshot may be injected (the query service
    pins one per request so the sweep stays consistent while writers
    mutate the graph); by default the graph's current snapshot is used.
    All member ids must be covered by the snapshot.

    ``sweep_cache`` maps node-id tuples to counters precomputed by
    :func:`sweep_counts_many` against the same snapshot (the micro-batch
    worker builds one fused pass for every batch member). Cached
    counters must cover every requested label (i.e. be built with no
    label mask, or a mask admitting all of ``labels``). A set missing
    from the cache is simply swept here — the cache is an amortisation,
    never a behaviour change.
    """
    label_list = list(labels)
    query_ids = graph.node_ids(query)
    context_ids = graph.node_ids(context)
    if compiled is None:
        compiled = graph._compiled()  # noqa: SLF001 - internal fast path
    elif not compiled.covers(query_ids) or not compiled.covers(context_ids):
        raise ValueError(
            "pinned snapshot does not cover every query/context node "
            f"(snapshot holds {compiled.node_count} nodes)"
        )
    table = graph._label_table()  # noqa: SLF001 - internal fast path
    names = graph._node_names_list()  # noqa: SLF001 - internal fast path

    query_sweep = context_sweep = None
    if sweep_cache is not None:
        query_sweep = sweep_cache.get(tuple(query_ids))
        context_sweep = sweep_cache.get(tuple(context_ids))
    if query_sweep is None or context_sweep is None:
        # Only the requested labels' rows matter: sweeping the rest of
        # the adjacency (often most of it, once inverse and excluded
        # labels are off the table) would be sorted and then never read.
        label_mask = np.zeros(max(compiled.label_count, 1), dtype=bool)
        for label in label_list:
            label_id = table.lookup(label)
            if label_id is not None:
                label_mask[label_id] = True
        if query_sweep is None:
            query_sweep = _SweepCounts(compiled, query_ids, label_mask)
        if context_sweep is None:
            context_sweep = _SweepCounts(compiled, context_ids, label_mask)

    out: dict[str, CharacteristicDistributions] = {}
    for label in label_list:
        label_id = table.lookup(label)
        inst_q, card_q = query_sweep.count_maps(label_id, names, none_bucket)
        inst_c, card_c = context_sweep.count_maps(label_id, names, none_bucket)
        out[label] = _assemble(label, inst_q, inst_c, card_q, card_c)
    return out
