"""Property-based tests (hypothesis) for the statistics layer.

Invariants: p-values live in [0, 1]; the exact multinomial test agrees
with a brute-force reference; EMD is a metric; alignment preserves counts.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.emd import earth_movers_distance_1d, total_variation_distance
from repro.stats.histograms import align_count_maps
from repro.stats.multinomial import (
    exact_multinomial_test,
    log_multinomial_pmf,
    montecarlo_multinomial_test,
)

probability_vectors = st.integers(2, 4).flatmap(
    lambda k: st.lists(
        st.floats(0.05, 1.0, allow_nan=False), min_size=k, max_size=k
    ).map(lambda ws: [w / sum(ws) for w in ws])
)


@st.composite
def pi_and_counts(draw):
    pi = draw(probability_vectors)
    counts = draw(
        st.lists(st.integers(0, 4), min_size=len(pi), max_size=len(pi)).filter(
            lambda c: 0 < sum(c) <= 8
        )
    )
    return pi, counts


@given(pi_and_counts())
@settings(max_examples=60, deadline=None)
def test_exact_p_value_in_unit_interval(case):
    pi, counts = case
    result = exact_multinomial_test(pi, counts)
    assert 0.0 <= result.p_value <= 1.0


@given(pi_and_counts())
@settings(max_examples=40, deadline=None)
def test_exact_test_matches_bruteforce(case):
    pi, counts = case
    n = sum(counts)
    k = len(pi)
    result = exact_multinomial_test(pi, counts)

    # brute force: enumerate all outcomes, sum those at most as likely
    def outcomes(total, cells):
        if cells == 1:
            yield (total,)
            return
        for first in range(total + 1):
            for rest in outcomes(total - first, cells - 1):
                yield (first, *rest)

    observed_logp = log_multinomial_pmf(np.array(pi), np.array(counts))
    total = 0.0
    for outcome in outcomes(n, k):
        logp = log_multinomial_pmf(np.array(pi), np.array(outcome))
        if logp <= observed_logp + 1e-9:
            total += math.exp(logp)
    assert result.p_value == min(total, 1.0) or abs(result.p_value - total) < 1e-9


@given(pi_and_counts())
@settings(max_examples=20, deadline=None)
def test_montecarlo_close_to_exact(case):
    pi, counts = case
    exact = exact_multinomial_test(pi, counts)
    approx = montecarlo_multinomial_test(pi, counts, samples=30_000, rng=7)
    assert abs(exact.p_value - approx.p_value) < 0.03


count_vectors = st.integers(2, 6).flatmap(
    lambda k: st.tuples(
        st.lists(st.integers(0, 20), min_size=k, max_size=k).filter(lambda v: sum(v) > 0),
        st.lists(st.integers(0, 20), min_size=k, max_size=k).filter(lambda v: sum(v) > 0),
    )
)


@given(count_vectors)
@settings(max_examples=80, deadline=None)
def test_emd_non_negative_and_symmetric(case):
    p, q = case
    d = earth_movers_distance_1d(p, q)
    assert d >= 0
    assert d == earth_movers_distance_1d(q, p)


@given(count_vectors)
@settings(max_examples=80, deadline=None)
def test_emd_zero_iff_equal_distributions(case):
    p, q = case
    p_norm = np.array(p) / sum(p)
    q_norm = np.array(q) / sum(q)
    d = earth_movers_distance_1d(p, q)
    if np.allclose(p_norm, q_norm):
        assert d < 1e-9
    else:
        assert d > 0


@given(count_vectors)
@settings(max_examples=80, deadline=None)
def test_total_variation_bounded(case):
    p, q = case
    assert 0.0 <= total_variation_distance(p, q) <= 1.0 + 1e-12


@given(
    st.dictionaries(st.text(min_size=1, max_size=4), st.integers(0, 10), max_size=6),
    st.dictionaries(st.text(min_size=1, max_size=4), st.integers(0, 10), max_size=6),
)
@settings(max_examples=80, deadline=None)
def test_align_preserves_totals_and_support(query_counts, context_counts):
    support, x, y = align_count_maps(query_counts, context_counts)
    assert x.sum() == sum(query_counts.values())
    assert y.sum() == sum(context_counts.values())
    assert set(support) == set(query_counts) | set(context_counts)
    assert len(support) == len(set(support))
