"""A minimal SPARQL ``SELECT`` front-end over the BGP evaluator.

The paper's system sits on Apache Jena, whose native query language is
SPARQL. This module implements the pragmatic subset needed to express the
traversals the paper performs — single ``SELECT`` queries over one basic
graph pattern, with ``DISTINCT`` and ``LIMIT``::

    SELECT ?who ?where WHERE {
        ?who <type> <politician> .
        ?who <isLeaderOf> ?where .
    } LIMIT 10

Terms are written as ``<iri>``, ``"literal"`` or ``?variable``. No
prefixes, filters, optionals or property paths — those are outside the
paper's usage.
"""

from __future__ import annotations

import re
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import ParseError
from repro.store.query import BGPQuery, Binding, TriplePattern, Variable
from repro.store.terms import IRI, Literal, Term
from repro.store.triplestore import TripleStore

_SELECT_RE = re.compile(
    r"^\s*SELECT\s+(?P<distinct>DISTINCT\s+)?(?P<projection>\*|(?:\?\w+\s*)+)"
    r"\s*WHERE\s*\{(?P<body>.*)\}"
    r"\s*(?:LIMIT\s+(?P<limit>\d+))?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_TERM_RE = re.compile(
    r"\s*(?:"
    r"<(?P<iri>[^<>\"{}|^`\\\s]*)>"
    r"|\"(?P<literal>(?:[^\"\\]|\\.)*)\""
    r"|\?(?P<variable>\w+)"
    r")\s*"
)


@dataclass(frozen=True)
class SelectQuery:
    """A parsed ``SELECT`` query."""

    variables: tuple[str, ...]  # empty = SELECT *
    pattern: BGPQuery
    distinct: bool = False
    limit: int | None = None

    def execute(self, store: TripleStore) -> Iterator[Binding]:
        """Yield projected bindings from ``store``."""
        produced = 0
        seen: set[tuple] = set()
        for binding in self.pattern.evaluate(store):
            projected = self._project(binding)
            if self.distinct:
                key = tuple(sorted((k, v) for k, v in projected.items()))
                if key in seen:
                    continue
                seen.add(key)
            yield projected
            produced += 1
            if self.limit is not None and produced >= self.limit:
                return

    def _project(self, binding: Binding) -> Binding:
        if not self.variables:
            return dict(binding)
        return {name: binding[name] for name in self.variables if name in binding}


def _parse_term(token: str, position: str) -> "Term | Variable":
    match = _TERM_RE.fullmatch(token)
    if match is None:
        raise ParseError(f"cannot parse {position} term: {token!r}")
    if match.group("iri") is not None:
        return IRI(match.group("iri"))
    if match.group("literal") is not None:
        from repro.store.terms import unescape_literal

        return Literal(unescape_literal(match.group("literal")))
    return Variable(match.group("variable"))


def _split_statements(body: str) -> list[str]:
    """Split the WHERE body on '.' separators that end statements."""
    statements = []
    for raw in body.split(" ."):
        raw = raw.strip().rstrip(".").strip()
        if raw:
            statements.append(raw)
    return statements


_TRIPLE_SPLIT_RE = re.compile(
    r"(<[^<>\s]*>|\"(?:[^\"\\]|\\.)*\"|\?\w+)"
)


def parse_select(text: str) -> SelectQuery:
    """Parse a ``SELECT`` query string.

    Raises :class:`~repro.errors.ParseError` on anything outside the
    supported subset.
    """
    match = _SELECT_RE.match(text)
    if match is None:
        raise ParseError("not a supported SELECT query")
    projection = match.group("projection").strip()
    if projection == "*":
        variables: tuple[str, ...] = ()
    else:
        variables = tuple(v.lstrip("?") for v in projection.split())
    patterns = []
    for statement in _split_statements(match.group("body")):
        tokens = [t for t in _TRIPLE_SPLIT_RE.findall(statement)]
        if len(tokens) != 3:
            raise ParseError(f"malformed triple pattern: {statement!r}")
        patterns.append(
            TriplePattern(
                _parse_term(tokens[0], "subject"),
                _parse_term(tokens[1], "predicate"),
                _parse_term(tokens[2], "object"),
            )
        )
    if not patterns:
        raise ParseError("empty WHERE clause")
    known = set()
    for pattern in patterns:
        known |= pattern.variables()
    for name in variables:
        if name not in known:
            raise ParseError(f"projected variable ?{name} not bound in WHERE")
    limit = match.group("limit")
    return SelectQuery(
        variables=variables,
        pattern=BGPQuery(patterns),
        distinct=match.group("distinct") is not None,
        limit=int(limit) if limit else None,
    )


def select(store: TripleStore, text: str) -> list[Binding]:
    """Parse and execute a SELECT query; return all bindings."""
    return list(parse_select(text).execute(store))
