"""Shared fixtures for the unit/integration test suite."""

from __future__ import annotations

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.datasets.loader import load_dataset
from repro.graph.builder import GraphBuilder


@pytest.fixture()
def toy_graph():
    """A small hand-built leaders graph used across unit tests."""
    return (
        GraphBuilder("toy")
        .typed("Merkel", "politician")
        .typed("Obama", "politician")
        .typed("Putin", "politician")
        .typed("Pitt", "actor")
        .fact("Merkel", "leaderOf", "Germany")
        .fact("Obama", "leaderOf", "USA")
        .fact("Putin", "leaderOf", "Russia")
        .fact("Merkel", "studied", "Physics")
        .fact("Obama", "studied", "Law")
        .fact("Putin", "studied", "Law")
        .fact("Obama", "hasChild", "Malia")
        .fact("Obama", "hasChild", "Natasha")
        .fact("Putin", "hasChild", "Mariya")
        .fact("Pitt", "actedIn", "Troy")
        .subclass("politician", "person")
        .subclass("actor", "person")
        .build()
    )


@pytest.fixture(scope="session")
def fig1_graph():
    return figure1_graph()


@pytest.fixture(scope="session")
def yago_small():
    """Synthetic YAGO at scale 1 (about 2.2k nodes) — session-shared.

    Tests must treat it as read-only; anything mutating builds its own
    graph.
    """
    return load_dataset("yago", scale=1.0)


@pytest.fixture(scope="session")
def linkedmdb_small():
    return load_dataset("linkedmdb", scale=1.0)
