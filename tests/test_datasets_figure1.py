"""Unit tests for the Figure-1 example graph."""

from repro.datasets.figure1 import FIGURE1_CONTEXT, FIGURE1_QUERY, figure1_graph


class TestFigure1:
    def test_query_and_context_nodes_exist(self, fig1_graph):
        for name in FIGURE1_QUERY + FIGURE1_CONTEXT:
            assert fig1_graph.has_node(name)

    def test_merkel_childless_and_physics(self, fig1_graph):
        assert fig1_graph.out_degree("Angela_Merkel", "hasChild") == 0
        assert fig1_graph.has_edge("Angela_Merkel", "studied", "Physics")

    def test_context_studied_law(self, fig1_graph):
        for name in FIGURE1_CONTEXT:
            assert fig1_graph.has_edge(name, "studied", "Law")

    def test_children_as_in_figure(self, fig1_graph):
        children = {
            fig1_graph.node_name(c)
            for c in fig1_graph.neighbors("Francois_Hollande", "hasChild")
        }
        assert children == {"Thomas", "Clemence", "Julien", "Flora"}

    def test_deterministic(self):
        a = figure1_graph()
        b = figure1_graph()
        assert a.node_count == b.node_count
        assert a.edge_count == b.edge_count

    def test_all_leaders_typed_politician(self, fig1_graph):
        for name in FIGURE1_QUERY + FIGURE1_CONTEXT:
            assert "politician" in fig1_graph.types_of(name)
