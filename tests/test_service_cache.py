"""Unit tests for the version-keyed LRU result cache."""

import threading

import pytest

from repro.service.cache import ResultCache


class TestLRU:
    def test_get_put_roundtrip(self):
        cache = ResultCache(maxsize=4)
        cache.put((1, "a"), "ra")
        assert cache.get((1, "a")) == "ra"
        assert cache.get((1, "b")) is None

    def test_eviction_order_is_lru(self):
        cache = ResultCache(maxsize=2)
        cache.put((1, "a"), "ra")
        cache.put((1, "b"), "rb")
        cache.get((1, "a"))  # refresh a -> b is now LRU
        cache.put((1, "c"), "rc")
        assert cache.get((1, "b")) is None
        assert cache.get((1, "a")) == "ra"
        assert cache.get((1, "c")) == "rc"

    def test_put_refreshes_existing_key(self):
        cache = ResultCache(maxsize=2)
        cache.put((1, "a"), "old")
        cache.put((1, "b"), "rb")
        cache.put((1, "a"), "new")  # refresh, no eviction
        cache.put((1, "c"), "rc")  # evicts b, the LRU
        assert cache.get((1, "a")) == "new"
        assert cache.get((1, "b")) is None

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=0)

    def test_len_and_contains(self):
        cache = ResultCache(maxsize=4)
        cache.put((1, "a"), "ra")
        assert len(cache) == 1
        assert (1, "a") in cache
        assert (2, "a") not in cache


class TestStats:
    def test_hit_miss_eviction_accounting(self):
        cache = ResultCache(maxsize=1)
        cache.get("missing")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts a
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.size == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_zero_without_lookups(self):
        assert ResultCache().stats().hit_rate == 0.0

    def test_as_dict_roundtrips(self):
        cache = ResultCache(maxsize=3)
        cache.put("a", 1)
        d = cache.stats().as_dict()
        assert d["size"] == 1
        assert d["maxsize"] == 3
        assert set(d) >= {"hits", "misses", "evictions", "purged", "hit_rate"}


class TestVersionPurge:
    def test_purge_drops_other_versions_only(self):
        cache = ResultCache(maxsize=8)
        cache.put((1, "a"), "v1a")
        cache.put((1, "b"), "v1b")
        cache.put((2, "a"), "v2a")
        assert cache.purge_versions(2) == 2
        assert cache.get((1, "a")) is None
        assert cache.get((2, "a")) == "v2a"
        assert cache.stats().purged == 2

    def test_clear_keeps_counters(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1


class TestThreadSafety:
    def test_concurrent_mixed_operations(self):
        cache = ResultCache(maxsize=32)
        errors = []

        def worker(offset):
            try:
                for i in range(300):
                    key = (i % 3, (i + offset) % 40)
                    cache.put(key, i)
                    cache.get(key)
                    if i % 50 == 0:
                        cache.purge_versions(i % 3)
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(cache) <= 32
        stats = cache.stats()
        assert stats.hits + stats.misses == 1200
