"""Tests for the fault-injection harness and its serving-stack hook sites."""

from __future__ import annotations

import time

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.disk import SnapshotRegistry, open_snapshot, save_graph_snapshot
from repro.disk.registry import RegistryError
from repro.parallel.shm import StaleSnapshotError, attach_snapshot, publish_graph
from repro.service import faults


@pytest.fixture(autouse=True)
def _disarmed(monkeypatch):
    """Every test starts and ends with no faults armed."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestFaultRule:
    def test_defaults(self):
        rule = faults.FaultRule("worker.crash")
        assert rule.probability == 1.0
        assert rule.delay_s == 0.0
        assert rule.limit is None

    def test_unknown_point_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="unknown fault point"):
            faults.FaultRule("worker.typo")

    @pytest.mark.parametrize("probability", [-0.1, 1.5])
    def test_probability_out_of_range_rejected(self, probability):
        with pytest.raises(faults.FaultSpecError, match="probability"):
            faults.FaultRule("worker.crash", probability=probability)

    def test_negative_delay_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="delay"):
            faults.FaultRule("worker.slow", delay_s=-1.0)

    def test_negative_limit_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="limit"):
            faults.FaultRule("worker.crash", limit=-1)


class TestParseSpec:
    def test_full_grammar(self):
        injector = faults.parse_spec("worker.crash=0.25:1.5:10, worker.slow=1")
        rules = {rule.point: rule for rule in injector.rules()}
        assert rules["worker.crash"] == faults.FaultRule(
            "worker.crash", probability=0.25, delay_s=1.5, limit=10
        )
        assert rules["worker.slow"] == faults.FaultRule("worker.slow")

    def test_empty_fields_take_defaults(self):
        (rule,) = faults.parse_spec("worker.slow=:2.5:").rules()
        assert rule == faults.FaultRule("worker.slow", delay_s=2.5)

    def test_blank_entries_skipped(self):
        assert faults.parse_spec("worker.crash=1, ,").rules() == (
            faults.FaultRule("worker.crash"),
        )

    @pytest.mark.parametrize(
        "spec",
        [
            "worker.crash",  # no '='
            "worker.crash=1:0:3:9",  # too many fields
            "worker.crash=often",  # non-numeric probability
            "worker.crash=1:soon",  # non-numeric delay
            "worker.crash=1:0:few",  # non-numeric limit
            "nope=1",  # unknown point
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(faults.FaultSpecError):
            faults.parse_spec(spec)


class TestFaultInjector:
    def test_unarmed_point_never_fires(self):
        injector = faults.FaultInjector([faults.FaultRule("worker.crash")])
        assert not injector.fire("shm.attach")
        assert injector.fired("shm.attach") == 0

    def test_limit_caps_firings(self):
        injector = faults.FaultInjector(
            [faults.FaultRule("worker.crash", limit=2)]
        )
        assert [injector.fire("worker.crash") for _ in range(4)] == [
            True,
            True,
            False,
            False,
        ]
        assert injector.fired("worker.crash") == 2

    def test_zero_probability_never_fires(self):
        injector = faults.FaultInjector(
            [faults.FaultRule("worker.crash", probability=0.0)]
        )
        assert not any(injector.fire("worker.crash") for _ in range(50))

    def test_seed_pins_the_decision_stream(self):
        def stream() -> list[bool]:
            injector = faults.FaultInjector(
                [faults.FaultRule("worker.crash", probability=0.5)], seed=7
            )
            return [injector.fire("worker.crash") for _ in range(20)]

        decisions = [stream(), stream()]
        assert decisions[0] == decisions[1]
        assert True in decisions[0] and False in decisions[0]

    def test_delay_applied_on_firing(self):
        injector = faults.FaultInjector(
            [faults.FaultRule("worker.slow", delay_s=0.05)]
        )
        started = time.monotonic()
        assert injector.fire("worker.slow")
        assert time.monotonic() - started >= 0.05


class TestProcessGlobalInjector:
    def test_module_fire_is_noop_when_disarmed(self):
        assert faults.get_injector() is None
        assert not faults.fire("worker.crash")

    def test_set_and_reset(self):
        injector = faults.FaultInjector([faults.FaultRule("worker.crash")])
        faults.set_injector(injector)
        assert faults.get_injector() is injector
        assert faults.fire("worker.crash")
        faults.reset()
        assert faults.get_injector() is None
        assert not faults.fire("worker.crash")

    def test_install_from_env_unset_is_noop(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        assert faults.install_from_env() is None
        assert faults.get_injector() is None

    def test_install_from_env_arms_the_spec(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "snapshot.vanish=1::3")
        injector = faults.install_from_env()
        assert injector is faults.get_injector()
        assert injector.rules() == (
            faults.FaultRule("snapshot.vanish", limit=3),
        )

    def test_install_from_explicit_environ(self):
        injector = faults.install_from_env({faults.FAULTS_ENV: "engine.slow=1"})
        assert injector is not None
        assert faults.fire("engine.slow")


class TestHookSites:
    """Each armed fault point surfaces as the documented stack error."""

    def test_shm_attach_failure(self):
        shared = publish_graph(figure1_graph())
        try:
            faults.set_injector(
                faults.FaultInjector([faults.FaultRule("shm.attach", limit=1)])
            )
            with pytest.raises(StaleSnapshotError, match="fault injection"):
                attach_snapshot(shared.header)
            # The limit is spent: the next attach must succeed.
            attach_snapshot(shared.header).close()
        finally:
            shared.unlink()

    def test_snapshot_vanish(self, tmp_path):
        path = tmp_path / "graph.snap"
        save_graph_snapshot(figure1_graph(), path)
        faults.set_injector(
            faults.FaultInjector([faults.FaultRule("snapshot.vanish", limit=1)])
        )
        with pytest.raises(FileNotFoundError, match="fault injection"):
            open_snapshot(path)
        open_snapshot(path)  # limit spent: file is "back"

    def test_registry_manifest_corruption(self, tmp_path):
        registry = SnapshotRegistry(tmp_path)
        registry.publish_graph(figure1_graph())
        faults.set_injector(
            faults.FaultInjector(
                [faults.FaultRule("registry.manifest", limit=1)]
            )
        )
        with pytest.raises(RegistryError, match="fault injection"):
            registry.refresh()
        registry.refresh()  # limit spent: manifest is readable again
