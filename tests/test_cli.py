"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_args(self):
        args = build_parser().parse_args(
            ["search", "--query", "Angela_Merkel", "Barack_Obama", "--scale", "0.5"]
        )
        assert args.command == "search"
        assert args.query == ["Angela_Merkel", "Barack_Obama"]
        assert args.scale == 0.5

    def test_experiment_validates_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "yago" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Angela_Merkel" in out

    def test_search_on_figure1(self, capsys):
        code = main(
            [
                "search",
                "--dataset",
                "figure1",
                "--context-size",
                "3",
                "--query",
                "Angela_Merkel",
                "Barack_Obama",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query" in out
        assert "context" in out

    def test_search_baseline_flag(self, capsys):
        code = main(
            [
                "search",
                "--dataset",
                "figure1",
                "--baseline",
                "--context-size",
                "3",
                "--query",
                "Angela_Merkel",
            ]
        )
        assert code == 0
        assert "RandomWalk" in capsys.readouterr().out


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8099
        assert args.workers == 4
        assert args.cache_size == 256

    def test_serve_custom_args(self):
        args = build_parser().parse_args(
            ["serve", "--dataset", "figure1", "--port", "0", "--workers", "2"]
        )
        assert args.dataset == "figure1"
        assert args.port == 0
        assert args.workers == 2

    def test_bench_serve_defaults(self):
        args = build_parser().parse_args(["bench-serve"])
        assert args.command == "bench-serve"
        assert args.out is None
        assert args.distinct == 12


class TestBenchServeCommand:
    def test_small_bench_writes_report(self, capsys, tmp_path):
        out = tmp_path / "bench.json"
        code = main(
            [
                "bench-serve",
                "--scale",
                "0.5",
                "--distinct",
                "2",
                "--context-size",
                "10",
                "--repeat",
                "1",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        import json

        report = json.loads(out.read_text())
        assert report["suite"] == "service_bench"
        # No wall-clock-ratio assertions here (scheduler noise on shared CI
        # runners would make the required test job flaky); the >=10x hit
        # speedup evidence lives in the committed BENCH_PR2.json and the
        # non-blocking perf-smoke job. Structural invariants only:
        assert report["warm"]["hit_speedup_mean"] > 0
        assert report["warm"]["n"] == report["params"]["distinct_queries"]
        assert report["single_flight"]["computed"] == 1
        assert "concurrent" in capsys.readouterr().out


class TestCompileParser:
    def test_compile_args(self):
        args = build_parser().parse_args(["compile", "yago", "out.snap", "--scale", "0.5"])
        assert args.command == "compile"
        assert args.source == "yago"
        assert str(args.snapshot) == "out.snap"
        assert args.scale == 0.5
        assert args.fmt == "auto"
        assert not args.no_transition

    def test_serve_snapshot_flag(self):
        args = build_parser().parse_args(["serve", "--snapshot", "graph.snap"])
        assert str(args.snapshot) == "graph.snap"
        defaults = build_parser().parse_args(["serve"])
        assert defaults.snapshot is None


class TestCompileCommand:
    def test_compile_dataset_then_open(self, capsys, tmp_path):
        out = tmp_path / "figure1.snap"
        assert main(["compile", "figure1", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "compiled figure1" in stdout
        assert str(out) in stdout
        from repro.datasets.loader import load_dataset
        from repro.disk import open_snapshot_view

        view = open_snapshot_view(out)
        graph = load_dataset("figure1")
        assert view.node_count == graph.node_count
        assert view.edge_count == graph.edge_count

    def test_compile_ntriples_dump(self, capsys, tmp_path):
        dump = tmp_path / "dump.nt"
        dump.write_text(
            "<Angela_Merkel> <leaderOf> <Germany> .\n"
            "<Barack_Obama> <leaderOf> <USA> .\n"
        )
        out = tmp_path / "dump.snap"
        assert main(["compile", str(dump), str(out)]) == 0
        from repro.disk import open_snapshot

        with open_snapshot(out) as snap:
            assert snap.compiled.node_count == 4
            assert snap.compiled.edge_count == 4  # inverse closure


class TestPublishInspectParser:
    def test_publish_args(self):
        args = build_parser().parse_args(
            ["publish", "dump.nt", "serving", "--name", "prod"]
        )
        assert args.command == "publish"
        assert args.source == "dump.nt"
        assert str(args.registry) == "serving"
        assert args.name == "prod"

    def test_inspect_args(self):
        args = build_parser().parse_args(["inspect", "graph.snap", "--json"])
        assert args.command == "inspect"
        assert str(args.target) == "graph.snap"
        assert args.json

    def test_serve_snapshot_dir_flags(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--snapshot-dir",
                "serving",
                "--poll-interval",
                "2.5",
                "--retain",
                "3",
            ]
        )
        assert str(args.snapshot_dir) == "serving"
        assert args.poll_interval == 2.5
        assert args.retain == 3
        defaults = build_parser().parse_args(["serve"])
        assert defaults.snapshot_dir is None
        assert defaults.poll_interval == 0.0
        assert defaults.retain == 2


class TestPublishInspectCommands:
    def test_publish_dataset_twice_is_two_versions(self, capsys, tmp_path):
        registry_dir = tmp_path / "serving"
        assert main(["publish", "figure1", str(registry_dir)]) == 0
        assert main(["publish", "figure1", str(registry_dir)]) == 0
        out = capsys.readouterr().out
        assert "as v1" in out and "as v2" in out
        from repro.disk import SnapshotRegistry

        registry = SnapshotRegistry(registry_dir, create=False)
        assert [e.version for e in registry.versions()] == [1, 2]

    def test_inspect_snapshot_file(self, capsys, tmp_path):
        registry_dir = tmp_path / "serving"
        assert main(["publish", "figure1", str(registry_dir)]) == 0
        from repro.disk import SnapshotRegistry

        entry = SnapshotRegistry(registry_dir, create=False).latest()
        capsys.readouterr()
        assert main(["inspect", entry.path]) == 0
        out = capsys.readouterr().out
        assert "snapshot format v1" in out
        assert f"version {entry.version}" in out
        assert "frozen PPR transition: baked in" in out

    def test_inspect_registry_directory(self, capsys, tmp_path):
        registry_dir = tmp_path / "serving"
        assert main(["publish", "figure1", str(registry_dir)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(registry_dir)]) == 0
        out = capsys.readouterr().out
        assert "snapshot registry" in out
        assert "v1: v000001.snap" in out

    def test_inspect_json_mode(self, capsys, tmp_path):
        import json as json_module

        registry_dir = tmp_path / "serving"
        assert main(["publish", "figure1", str(registry_dir)]) == 0
        from repro.disk import SnapshotRegistry

        entry = SnapshotRegistry(registry_dir, create=False).latest()
        capsys.readouterr()
        assert main(["inspect", entry.path, "--json"]) == 0
        info = json_module.loads(capsys.readouterr().out)
        assert info["version"] == 1
        assert info["has_transition"] is True

    def test_inspect_non_registry_directory_fails(self, capsys, tmp_path):
        assert main(["inspect", str(tmp_path)]) == 1
        assert "not a snapshot registry" in capsys.readouterr().out

    def test_serve_rejects_snapshot_and_snapshot_dir(self, capsys, tmp_path):
        code = main(
            [
                "serve",
                "--snapshot",
                "a.snap",
                "--snapshot-dir",
                str(tmp_path),
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().out

    def test_serve_empty_registry_fails(self, capsys, tmp_path):
        registry_dir = tmp_path / "serving"
        registry_dir.mkdir()
        code = main(["serve", "--snapshot-dir", str(registry_dir)])
        assert code == 1
        assert "empty" in capsys.readouterr().out


class TestServeResilienceFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.request_timeout is None
        assert args.max_pending is None
        assert args.retries == 2
        assert args.drain_timeout == 10.0

    def test_custom_values_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--request-timeout",
                "2.5",
                "--max-pending",
                "64",
                "--retries",
                "3",
                "--drain-timeout",
                "30",
            ]
        )
        assert args.request_timeout == 2.5
        assert args.max_pending == 64
        assert args.retries == 3
        assert args.drain_timeout == 30.0

    @pytest.mark.parametrize(
        ("argv", "message"),
        [
            (["--request-timeout", "0"], "--request-timeout must be positive"),
            (["--request-timeout", "-1"], "--request-timeout must be positive"),
            (["--max-pending", "0"], "--max-pending must be positive"),
            (["--retries", "-1"], "--retries must be >= 0"),
            (["--drain-timeout", "-1"], "--drain-timeout must be >= 0"),
            (["--poll-interval", "-1"], "--poll-interval must be >= 0"),
            (["--poll-interval", "5"], "--poll-interval requires --snapshot-dir"),
            (
                ["--request-timeout", "10", "--drain-timeout", "2"],
                "must not be shorter than --request-timeout",
            ),
        ],
    )
    def test_nonsensical_flags_rejected(self, capsys, argv, message):
        code = main(["serve", *argv])
        assert code == 2
        assert message in capsys.readouterr().out

    def test_zero_drain_timeout_is_valid(self):
        from repro.cli import _validate_serve_args

        args = build_parser().parse_args(
            ["serve", "--drain-timeout", "0", "--request-timeout", "5"]
        )
        assert _validate_serve_args(args) is None


class TestServeTracingFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.trace_sample_rate == 0.0
        assert args.slow_query_ms is None
        assert args.trace_buffer == 256
        assert args.metrics_exemplars is False
        assert args.log_format == "text"

    def test_custom_values_parse(self):
        args = build_parser().parse_args(
            [
                "serve",
                "--trace-sample-rate",
                "0.05",
                "--slow-query-ms",
                "250",
                "--trace-buffer",
                "64",
                "--metrics-exemplars",
                "--log-format",
                "json",
            ]
        )
        assert args.trace_sample_rate == 0.05
        assert args.slow_query_ms == 250.0
        assert args.trace_buffer == 64
        assert args.metrics_exemplars is True
        assert args.log_format == "json"

    @pytest.mark.parametrize(
        ("argv", "message"),
        [
            (
                ["--trace-sample-rate", "1.5"],
                "--trace-sample-rate must be within [0, 1]",
            ),
            (
                ["--trace-sample-rate", "-0.1"],
                "--trace-sample-rate must be within [0, 1]",
            ),
            (["--slow-query-ms", "0"], "--slow-query-ms must be positive"),
            (["--trace-buffer", "0"], "--trace-buffer must be >= 1"),
        ],
    )
    def test_nonsensical_flags_rejected(self, capsys, argv, message):
        code = main(["serve", *argv])
        assert code == 2
        assert message in capsys.readouterr().out

    def test_loadgen_trace_sample_rate_validated(self, capsys):
        code = main(
            [
                "loadgen",
                "--url",
                "http://127.0.0.1:1",
                "--trace-sample-rate",
                "2.0",
            ]
        )
        assert code == 2
        assert "--trace-sample-rate must be within [0, 1]" in (
            capsys.readouterr().out
        )
