"""Run the query-service benchmark and emit BENCH_PR<N>.json.

Thin wrapper over :func:`repro.service.bench.run_service_benchmark` (the
same driver behind ``repro bench-serve``), defaulting the output to the
repo-root ``BENCH_PR2.json`` so the service has a committed perf record
alongside ``BENCH_PR1.json``.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_service_bench.py [--out BENCH_PR2.json]
                                                          [--scale 2.0] [--workers 4]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.bench import print_report, run_service_benchmark  # noqa: E402


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=REPO_ROOT / "BENCH_PR2.json")
    parser.add_argument("--dataset", default="yago")
    parser.add_argument("--scale", type=float, default=2.0)
    parser.add_argument("--context-size", type=int, default=100)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--distinct", type=int, default=12)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    report = run_service_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        context_size=args.context_size,
        workers=args.workers,
        distinct=args.distinct,
        repeat=args.repeat,
        seed=args.seed,
    )
    print_report(report)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
