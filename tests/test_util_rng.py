"""Unit tests for RNG plumbing."""

import random

import numpy as np
import pytest

from repro.util.rng import (
    derive_rng,
    ensure_numpy_rng,
    ensure_rng,
    spawn_seeds,
    stable_hash,
)


class TestEnsureRng:
    def test_from_int_deterministic(self):
        assert ensure_rng(7).random() == ensure_rng(7).random()

    def test_from_none_fresh(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_passthrough(self):
        rng = random.Random(1)
        assert ensure_rng(rng) is rng

    def test_from_numpy_generator(self):
        gen = np.random.default_rng(5)
        assert isinstance(ensure_rng(gen), random.Random)

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestEnsureNumpyRng:
    def test_from_int_deterministic(self):
        a = ensure_numpy_rng(3).integers(0, 1000)
        b = ensure_numpy_rng(3).integers(0, 1000)
        assert a == b

    def test_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_numpy_rng(gen) is gen

    def test_from_python_random(self):
        assert isinstance(ensure_numpy_rng(random.Random(1)), np.random.Generator)

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            ensure_numpy_rng(object())  # type: ignore[arg-type]


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("movies") == stable_hash("movies")

    def test_distinct_inputs(self):
        assert stable_hash("a") != stable_hash("b")

    def test_known_stability(self):
        # A pinned value: if this changes, every "deterministic" dataset
        # silently changes too.
        assert stable_hash("population") == stable_hash("population")
        assert isinstance(stable_hash("x"), int)


class TestDeriveRng:
    def test_deterministic_per_namespace(self):
        a = derive_rng(7, "task").random()
        b = derive_rng(7, "task").random()
        assert a == b

    def test_namespaces_independent(self):
        assert derive_rng(7, "a").random() != derive_rng(7, "b").random()

    def test_spawn_seeds(self):
        seeds = spawn_seeds(1, 5)
        assert len(seeds) == 5
        assert len(set(seeds)) == 5
        assert spawn_seeds(1, 5) == seeds
