"""Figure 4 — average F1 vs query size |Q| at |C| in {50, 100}.

Paper claims asserted:
* ContextRW beats RandomWalk at every query size for |C| = 100;
* ContextRW benefits from larger queries (the average F1 over |Q| in
  {4, 5, 6} is not worse than over |Q| in {2, 3} at |C| = 50 — "our method
  can capture semantic relationships between the nodes");
* the baseline does not improve with |Q| at |C| = 50.
"""

from conftest import run_once

from repro.eval.experiments import query_size_sweep
from repro.eval.metrics import mean


def test_fig4_f1_vs_query_size(benchmark, setting):
    table = run_once(benchmark, query_size_sweep, setting)
    print()
    print(table.render())

    values = {
        (algo, c, q): f1 for algo, c, q, f1 in table.rows
    }
    for q in (2, 3, 4, 5, 6):
        assert values[("ContextRW", 100, q)] >= values[("RandomWalk", 100, q)], (
            f"ContextRW should win at |C|=100, |Q|={q}"
        )

    crw_small = mean(values[("ContextRW", 50, q)] for q in (2, 3))
    crw_large = mean(values[("ContextRW", 50, q)] for q in (4, 5, 6))
    assert crw_large >= 0.9 * crw_small, (
        "ContextRW must not degrade with more query nodes"
    )

    rw_small = mean(values[("RandomWalk", 50, q)] for q in (2, 3))
    rw_large = mean(values[("RandomWalk", 50, q)] for q in (4, 5, 6))
    assert rw_large <= rw_small + 0.05, (
        "the baseline should not benefit from larger queries"
    )
