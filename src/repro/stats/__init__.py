"""Statistical machinery for distribution comparison (Section 3.2).

The centrepiece is the exact multinomial test with Monte-Carlo fallback
(the paper's footnote 1); KL divergence, Earth Mover's Distance and the
classical chi-square / z tests are provided as the comparison baselines the
paper discusses and dismisses.
"""

from repro.stats.divergence import js_divergence, kl_divergence
from repro.stats.emd import earth_movers_distance_1d, total_variation_distance
from repro.stats.histograms import align_count_maps, counts_to_probabilities
from repro.stats.multinomial import (
    MultinomialTestResult,
    exact_multinomial_test,
    log_multinomial_pmf,
    montecarlo_multinomial_test,
    multinomial_test,
    number_of_compositions,
)
from repro.stats.tests import chi_square_test, two_proportion_z_test

__all__ = [
    "MultinomialTestResult",
    "align_count_maps",
    "chi_square_test",
    "counts_to_probabilities",
    "earth_movers_distance_1d",
    "exact_multinomial_test",
    "js_divergence",
    "kl_divergence",
    "log_multinomial_pmf",
    "montecarlo_multinomial_test",
    "multinomial_test",
    "number_of_compositions",
    "total_variation_distance",
    "two_proportion_z_test",
]
