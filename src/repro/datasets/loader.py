"""Dataset registry with memoized construction.

Experiments and benchmarks request graphs through :func:`load_dataset` so
that repeated runs within one process reuse the same built graph (the
generators are deterministic, so sharing is safe as long as callers do not
mutate the graph — experiment code never does). :func:`to_snapshot`
compiles any registered dataset straight into a snapshot file for
``repro serve --snapshot`` / zero-copy cold starts.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from functools import lru_cache
from typing import TYPE_CHECKING

from repro.datasets.figure1 import figure1_graph
from repro.datasets.linkedmdb import synthetic_linkedmdb
from repro.datasets.yago import synthetic_yago
from repro.graph.model import KnowledgeGraph

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.disk.ingest import IngestStats

_BUILDERS: dict[str, Callable[..., KnowledgeGraph]] = {
    "yago": lambda scale, seed: synthetic_yago(scale=scale, seed=seed),
    "linkedmdb": lambda scale, seed: synthetic_linkedmdb(scale=scale, seed=seed),
    "figure1": lambda scale, seed: figure1_graph(),
}


def dataset_names() -> list[str]:
    """The registered dataset identifiers."""
    return sorted(_BUILDERS)


@lru_cache(maxsize=16)
def load_dataset(
    name: str, *, scale: float = 1.0, seed: int | None = None
) -> KnowledgeGraph:
    """Build (or fetch the memoized) dataset ``name``.

    ``seed`` defaults to each generator's own default so that
    ``load_dataset("yago")`` always names the same graph.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        ) from None
    default_seed = {"yago": 7, "linkedmdb": 13, "figure1": 0}[name]
    return builder(scale, seed if seed is not None else default_seed)


def to_snapshot(
    name: str,
    path: "str | os.PathLike[str]",
    *,
    scale: float = 1.0,
    seed: int | None = None,
    include_transition: bool = True,
    graph_name: "str | None" = None,
) -> "IngestStats":
    """Compile dataset ``name`` into a snapshot file at ``path``.

    Routes the built graph through the streaming bulk ingester
    (:func:`repro.disk.ingest_triples`) with the graph's node/label
    vocabulary pre-interned, so the written arrays are **byte-identical**
    to ``load_dataset(...).compiled()`` — ids, ordering, weights, the
    lot. ``repro serve --snapshot <path>`` then answers exactly what
    live-graph serving of the same dataset would, after a cold start
    that is one ``mmap`` instead of a generate-and-compile.

    Edges are streamed with the inverse closure *off* because the built
    graph already contains both directions; the ingester just re-counts
    them into CSR form.
    """
    from repro.disk.ingest import ingest_triples

    graph = load_dataset(name, scale=scale, seed=seed)
    names = graph._node_names_list()  # noqa: SLF001 - internal fast path
    return ingest_triples(
        (
            (names[edge.source], edge.label, names[edge.target])
            for edge in graph.edges()
        ),
        path,
        graph_name=graph_name or graph.name,
        add_inverse=False,
        include_transition=include_transition,
        node_names=names,
        label_names=list(graph._label_table()),  # noqa: SLF001
        version=graph.version,
    )


def clear_dataset_cache() -> None:
    """Drop memoized graphs (tests use this to guarantee isolation)."""
    load_dataset.cache_clear()
