"""Integration tests: the full pipeline end to end on real generators.

These assert the paper's headline behaviours on the synthetic YAGO graph —
the same checks the benchmarks make, at unit-suite scale.
"""

import pytest

from repro.core import ContextRW, FindNC, RandomWalkContext, rw_mult
from repro.datasets import (
    ACTORS_DOMAIN,
    AUTHORS_QUERY,
    CrowdSimulator,
    load_dataset,
)
from repro.eval.metrics import f1_at
from repro.graph.hierarchy import TypeHierarchy


@pytest.fixture(scope="module")
def graph():
    return load_dataset("yago", scale=1.0)


class TestContextQuality:
    def test_contextrw_beats_baseline_on_crowd_truth(self, graph):
        query = [graph.node_id(n) for n in ACTORS_DOMAIN.entities[:4]]
        truth = CrowdSimulator(graph, rng=3).simulate(query)
        crw = ContextRW(graph, rng=11).select(query, 150)
        rw = RandomWalkContext(graph, damping=0.2).select(query, 150)
        crw_f1 = f1_at(crw.nodes, truth.entities, 100)
        rw_f1 = f1_at(rw.nodes, truth.entities, 100)
        assert crw_f1 > rw_f1, (crw_f1, rw_f1)

    def test_contextrw_context_is_domain_pure(self, graph):
        query = [graph.node_id(n) for n in ACTORS_DOMAIN.entities[:4]]
        context = ContextRW(graph, rng=11).select(query, 50)
        hierarchy = TypeHierarchy(graph)
        people = hierarchy.instances("person", transitive=True)
        person_share = sum(1 for n in context.nodes if n in people) / len(context)
        assert person_share >= 0.8

    def test_figure1_context_matches_paper(self):
        from repro.datasets import FIGURE1_CONTEXT, FIGURE1_QUERY, figure1_graph

        fig_graph = figure1_graph()
        query = [fig_graph.node_id(n) for n in FIGURE1_QUERY]
        context = ContextRW(fig_graph, rng=7).select(query, 3)
        assert set(context.names(fig_graph)) == set(FIGURE1_CONTEXT)


class TestNotableCharacteristics:
    def test_actors_created_notable_haswonprize_not(self, graph):
        finder = FindNC(graph, context_size=100, rng=11)
        result = finder.run(list(ACTORS_DOMAIN.entities[:5]))
        assert result.result_for("created").notable
        assert not result.result_for("hasWonPrize").notable
        assert not result.result_for("actedIn").notable

    def test_rwmult_false_positives(self, graph):
        baseline = rw_mult(graph, context_size=100, damping=0.2, rng=11)
        result = baseline.run(list(ACTORS_DOMAIN.entities[:5]))
        assert result.result_for("actedIn").notable

    def test_authors_influences_notable_created_not(self, graph):
        selector = ContextRW(graph, rng=23, samples=200_000)
        finder = FindNC(graph, context_selector=selector, context_size=30, rng=23)
        result = finder.run(list(AUTHORS_QUERY))
        assert result.result_for("influences").notable
        assert not result.result_for("created").notable

    def test_merkel_no_child_surfaces_with_full_politician_query(self, graph):
        from repro.datasets import POLITICIANS_DOMAIN

        finder = FindNC(graph, context_size=50, rng=11)
        result = finder.run(list(POLITICIANS_DOMAIN.entities))
        child = result.result_for("hasChild")
        leader = result.result_for("isLeaderOf")
        assert child.notable
        assert leader.notable


class TestCrossDatasetConsistency:
    def test_actor_queries_work_on_linkedmdb(self):
        lmdb = load_dataset("linkedmdb", scale=1.0)
        query = [lmdb.node_id(n) for n in ACTORS_DOMAIN.entities[:3]]
        context = ContextRW(lmdb, rng=11).select(query, 50)
        assert len(context) == 50
        truth = CrowdSimulator(lmdb, rng=3).simulate(query)
        assert f1_at(context.nodes, truth.entities, 50) > 0
