"""Metapaths and metapath-constrained path counting.

A metapath (Sun et al., PathSim) abstracts a path into the sequence of
labels along it. Section 2 defines it with *alternating node and edge
labels* ``<phi(n1), psi(n1,n2), ..., phi(nt)>``; the mining text of
Section 3.1 collects "the sequence of edge labels encountered during the
random walk". This implementation takes the middle road that keeps both
properties that matter:

* matching is keyed on the **edge-label sequence** (the informative part —
  in a YAGO-like schema edge labels mostly determine the intermediate node
  types anyway), and
* the **terminal node type** is kept as a constraint (``end_type``). This
  is the piece of the alternating definition with real selective power: a
  mined path that started at an actor, replayed from the query, must end
  at an actor. Dropping it floods contexts with attribute-value nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.labels import TYPE_LABEL, inverse_label
from repro.graph.model import KnowledgeGraph
from repro.graph.traversal import follow_label_counted


@dataclass(frozen=True, slots=True)
class Metapath:
    """An edge-label sequence with an optional terminal-type constraint.

    ``Metapath(("actedIn", "actedIn_inv"), end_type="actor")`` reads "to a
    movie, then to one of its actors" — the co-actor pattern.
    """

    labels: tuple[str, ...]
    end_type: str | None = None

    def __post_init__(self) -> None:
        if not self.labels:
            raise ValueError("a metapath needs at least one edge label")
        if not all(isinstance(label, str) and label for label in self.labels):
            raise ValueError("metapath labels must be non-empty strings")

    @property
    def length(self) -> int:
        return len(self.labels)

    def reversed(self) -> "Metapath":
        """The metapath traversing the same pattern in the other direction.

        Reversing a *path* reverses the label order and inverts each label;
        under the inverse-closure assumption the reversed metapath always
        has matching paths whenever the original does. The terminal-type
        constraint is dropped (the start type of the original path is not
        recorded).

        >>> Metapath(("a", "b")).reversed()
        Metapath(labels=('b_inv', 'a_inv'), end_type=None)
        """
        return Metapath(tuple(inverse_label(label) for label in reversed(self.labels)))

    def __str__(self) -> str:
        path = " -> ".join(self.labels)
        if self.end_type is not None:
            return f"{path} [{self.end_type}]"
        return path


def primary_type(graph: KnowledgeGraph, node: int) -> str | None:
    """The canonical single type of ``node`` (phi's role in matching).

    Nodes may carry several ``type`` edges; the lexicographically smallest
    type name is the deterministic representative. ``None`` for untyped
    nodes.
    """
    best: str | None = None
    for type_node in graph.neighbors(node, TYPE_LABEL):
        name = graph.node_name(type_node)
        if best is None or name < best:
            best = name
    return best


def node_has_type(graph: KnowledgeGraph, node: int, type_name: str) -> bool:
    """Whether ``node`` carries a ``type`` edge to ``type_name``."""
    for type_node in graph.neighbors(node, TYPE_LABEL):
        if graph.node_name(type_node) == type_name:
            return True
    return False


def count_matching_paths(
    graph: KnowledgeGraph, start: int, metapath: Metapath
) -> dict[int, int]:
    """``{end node: number of paths start ~metapath~> end}``.

    Counts *walks* matching the label sequence (nodes may repeat), computed
    by propagating path counts one label at a time — cost is O(sum of
    frontier degrees), independent of the (possibly exponential) number of
    paths. When the metapath carries an ``end_type``, endpoints lacking
    that type are filtered out.
    """
    frontier = {start: 1}
    for label in metapath.labels:
        if not frontier:
            return {}
        frontier = follow_label_counted(graph, frontier, label)
    if metapath.end_type is not None and frontier:
        frontier = {
            node: count
            for node, count in frontier.items()
            if node_has_type(graph, node, metapath.end_type)
        }
    return frontier


@dataclass
class ScoredMetapath:
    """A mined metapath with its occurrence count and selection probability."""

    metapath: Metapath
    count: int
    probability: float = field(default=0.0)

    @property
    def labels(self) -> tuple[str, ...]:
        return self.metapath.labels

    @property
    def length(self) -> int:
        return self.metapath.length


def normalize_probabilities(paths: list[ScoredMetapath]) -> list[ScoredMetapath]:
    """Set ``probability = count / sum(counts)`` (Pr(m) of Section 3.1)."""
    total = sum(p.count for p in paths)
    if total <= 0:
        for p in paths:
            p.probability = 0.0
        return paths
    for p in paths:
        p.probability = p.count / total
    return paths
