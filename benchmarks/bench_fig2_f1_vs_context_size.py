"""Figure 2 — F1 vs context size |C| per actors query, both algorithms.

Paper claims asserted:
* "In all cases, ContextRW performs 2 times better than the baseline"
  (we assert a >= 1.5x mean advantage in the paper's |C| sweet spot).
* Quality rises with |C| then flattens/falls — the best F1 is not at the
  smallest cutoff.
"""

from conftest import run_once

from repro.eval.experiments import context_size_sweep
from repro.eval.metrics import mean


def test_fig2_f1_vs_context_size(benchmark, setting):
    table = run_once(benchmark, context_size_sweep, setting)
    print()
    print(table.render())

    def series(algorithm, size):
        return [
            f1
            for algo, _q, c, f1 in table.rows
            if algo == algorithm and c == size
        ]

    crw_mid = mean(series("ContextRW", 100)) + mean(series("ContextRW", 150))
    rw_mid = mean(series("RandomWalk", 100)) + mean(series("RandomWalk", 150))
    assert crw_mid > 0, "ContextRW must retrieve part of the ground truth"
    assert crw_mid >= 1.5 * rw_mid, (
        f"ContextRW should dominate the baseline around |C|=100-150 "
        f"(got {crw_mid:.3f} vs {rw_mid:.3f})"
    )

    # The F1 curve should not peak at the smallest cutoff (Figure 2 rises
    # before it flattens).
    crw_small = mean(series("ContextRW", 10))
    crw_best = max(mean(series("ContextRW", c)) for c in (50, 100, 150, 200))
    assert crw_best > crw_small
