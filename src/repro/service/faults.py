"""Fault injection for the serving stack (chaos testing harness).

Production resilience claims are only as good as the faults they were
tested against. This module provides the injection points the chaos
tests and the ``fault_storm`` benchmark phase drive: named *fault
points* threaded through the serving stack — worker loop, shared-memory
attach, snapshot open, registry refresh, local compute — that are
**no-ops by default** and cost one module-attribute read plus one
``None`` check per call when nothing is armed.

Fault points
------------

===================  ====================================================
``worker.crash``     a worker process calls ``os._exit(1)`` mid-job
``worker.slow``      a worker sleeps before computing (hung-worker model)
``shm.attach``       attaching an shm segment raises ``StaleSnapshotError``
``snapshot.vanish``  opening a snapshot file raises ``FileNotFoundError``
``registry.manifest``  a registry refresh raises ``RegistryError``
``engine.slow``      the engine's local compute path sleeps (thread backend)
``delta.append``     a delta-log append crashes before its publishing rename
``registry.compact``  compaction crashes after writing the fresh snapshot,
                     before recording it in the manifest
===================  ====================================================

Arming faults
-------------

Programmatically (same process)::

    from repro.service import faults
    faults.set_injector(faults.FaultInjector([
        faults.FaultRule("worker.crash", probability=0.25, limit=10),
    ]))
    ...
    faults.reset()

Via the environment (crosses the ``spawn`` boundary into worker
processes, and into ``repro serve`` subprocesses)::

    REPRO_FAULTS="worker.crash=0.25::10,worker.slow=1:2.5"

The spec grammar is ``point=probability[:delay_s[:limit]]``, entries
comma-separated: ``probability`` in ``[0, 1]`` is the chance each
arrival fires, ``delay_s`` is a sleep applied when it fires (default
0), and ``limit`` caps the total number of firings (default unlimited).
Workers re-read the variable at startup (:func:`install_from_env` runs
first thing in the worker main), so deleting it between a spawn and a
respawn yields a deterministic "faulty worker replaced by a healthy
one" recipe — the chaos tests lean on exactly that.

This module is stdlib-only and import-cycle-free: hook sites in
:mod:`repro.parallel.shm` and :mod:`repro.disk` import it lazily inside
the guarded function, never at module level.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass

#: The environment variable :func:`install_from_env` reads.
FAULTS_ENV = "REPRO_FAULTS"

#: Every fault point the serving stack consults (specs naming anything
#: else are rejected — a typo'd point silently never firing would make
#: a chaos test vacuous).
KNOWN_POINTS = frozenset(
    {
        "worker.crash",
        "worker.slow",
        "shm.attach",
        "snapshot.vanish",
        "registry.manifest",
        "engine.slow",
        "delta.append",
        "registry.compact",
    }
)


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec string could not be parsed."""


@dataclass(frozen=True)
class FaultRule:
    """One armed fault point.

    ``probability`` is the per-arrival chance of firing, ``delay_s`` a
    sleep applied on each firing (models slow/hung components), and
    ``limit`` an optional cap on total firings (``None`` = unlimited).
    """

    point: str
    probability: float = 1.0
    delay_s: float = 0.0
    limit: "int | None" = None

    def __post_init__(self) -> None:
        if self.point not in KNOWN_POINTS:
            raise FaultSpecError(
                f"unknown fault point {self.point!r} "
                f"(known: {', '.join(sorted(KNOWN_POINTS))})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(
                f"{self.point}: probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.delay_s < 0:
            raise FaultSpecError(
                f"{self.point}: delay must be >= 0, got {self.delay_s}"
            )
        if self.limit is not None and self.limit < 0:
            raise FaultSpecError(
                f"{self.point}: limit must be >= 0, got {self.limit}"
            )


class FaultInjector:
    """Decides, thread-safely, whether an armed fault point fires.

    ``seed`` pins the probabilistic decisions for reproducible chaos
    runs; by default each injector (hence each worker process) draws
    its own stream.
    """

    def __init__(
        self, rules: "list[FaultRule] | tuple[FaultRule, ...]", *, seed: "int | None" = None
    ) -> None:
        self._rules = {rule.point: rule for rule in rules}
        self._fired = dict.fromkeys(self._rules, 0)
        self._lock = threading.Lock()
        self._rng = random.Random(seed)

    def fire(self, point: str) -> bool:
        """Whether ``point`` fires now; applies the rule's delay if so."""
        rule = self._rules.get(point)
        if rule is None:
            return False
        with self._lock:
            if rule.limit is not None and self._fired[point] >= rule.limit:
                return False
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                return False
            self._fired[point] += 1
        if rule.delay_s > 0:
            time.sleep(rule.delay_s)
        return True

    def fired(self, point: str) -> int:
        """How many times ``point`` has fired on this injector."""
        with self._lock:
            return self._fired.get(point, 0)

    def rules(self) -> "tuple[FaultRule, ...]":
        """The armed rules (introspection/logging)."""
        return tuple(self._rules.values())


def parse_spec(spec: str, *, seed: "int | None" = None) -> FaultInjector:
    """Build an injector from a ``point=prob[:delay_s[:limit]]`` spec."""
    rules = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        point, sep, params = entry.partition("=")
        if not sep:
            raise FaultSpecError(
                f"bad fault entry {entry!r}: expected point=prob[:delay[:limit]]"
            )
        parts = params.split(":")
        if len(parts) > 3:
            raise FaultSpecError(f"bad fault entry {entry!r}: too many fields")
        try:
            probability = float(parts[0]) if parts[0] else 1.0
            delay_s = float(parts[1]) if len(parts) > 1 and parts[1] else 0.0
            limit = int(parts[2]) if len(parts) > 2 and parts[2] else None
        except ValueError as error:
            raise FaultSpecError(f"bad fault entry {entry!r}: {error}") from error
        rules.append(
            FaultRule(
                point.strip(), probability=probability, delay_s=delay_s, limit=limit
            )
        )
    return FaultInjector(rules, seed=seed)


# -- process-global injector -----------------------------------------------

_injector: "FaultInjector | None" = None


def set_injector(injector: "FaultInjector | None") -> None:
    """Install ``injector`` as this process's active fault source."""
    global _injector
    _injector = injector


def get_injector() -> "FaultInjector | None":
    """The active injector, or ``None`` when no faults are armed."""
    return _injector


def reset() -> None:
    """Disarm all faults in this process."""
    set_injector(None)


def install_from_env(environ: "dict | None" = None) -> "FaultInjector | None":
    """Arm faults from ``REPRO_FAULTS`` (no-op when unset/empty).

    Called at worker-process startup and by ``repro serve`` — the env
    var is the only transport that crosses the ``spawn`` boundary.
    """
    spec = (environ if environ is not None else os.environ).get(FAULTS_ENV, "")
    if not spec.strip():
        return None
    injector = parse_spec(spec)
    set_injector(injector)
    return injector


def fire(point: str) -> bool:
    """Module-level hook the serving stack calls: no-op unless armed."""
    injector = _injector
    if injector is None:
        return False
    return injector.fire(point)
