"""Unit tests for validation helpers."""

import numpy as np
import pytest

from repro.util.validation import (
    normalize_counts,
    require,
    require_in_unit_interval,
    require_non_empty,
    require_positive,
    require_probability_vector,
    require_type,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")


class TestRequireType:
    def test_passes(self):
        assert require_type(5, int, "x") == 5

    def test_raises(self):
        with pytest.raises(TypeError, match="x must be int"):
            require_type("5", int, "x")


class TestRequirePositive:
    def test_strict(self):
        assert require_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            require_positive(0, "x")

    def test_non_strict(self):
        assert require_positive(0, "x", strict=False) == 0
        with pytest.raises(ValueError):
            require_positive(-1, "x", strict=False)


class TestUnitInterval:
    def test_bounds_inclusive(self):
        assert require_in_unit_interval(0.0, "x") == 0.0
        assert require_in_unit_interval(1.0, "x") == 1.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            require_in_unit_interval(1.5, "x")


class TestNonEmpty:
    def test_passes(self):
        require_non_empty([1], "x")

    def test_raises(self):
        with pytest.raises(ValueError):
            require_non_empty([], "x")


class TestProbabilityVector:
    def test_valid(self):
        out = require_probability_vector([0.25, 0.75], "p")
        assert isinstance(out, np.ndarray)

    def test_not_summing_to_one(self):
        with pytest.raises(ValueError):
            require_probability_vector([0.5, 0.2], "p")

    def test_negative_entry(self):
        with pytest.raises(ValueError):
            require_probability_vector([-0.5, 1.5], "p")

    def test_empty(self):
        with pytest.raises(ValueError):
            require_probability_vector([], "p")


class TestNormalizeCounts:
    def test_normalizes(self):
        out = normalize_counts([2, 2])
        assert out.tolist() == [0.5, 0.5]

    def test_zero_sum_rejected(self):
        with pytest.raises(ValueError):
            normalize_counts([0, 0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize_counts([-1, 2])
