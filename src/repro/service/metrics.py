"""Prometheus-style metrics for the query service (``GET /v1/metrics``).

A small, dependency-free instrumentation layer: the engine, the result
cache, the worker pool, and the HTTP front-end all record into one
:class:`MetricsRegistry`, and the server renders it in the `Prometheus
text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ on
every scrape.

Three instrument kinds cover the serving stack:

* :class:`Counter` — monotonically increasing event counts, optionally
  split by label (``nc_cache_events_total{event="hit"}``). Increments
  take one tiny per-series lock; **reads are lock-free** (a scrape
  never blocks the serving path — it reads each series' current value
  in one atomic attribute load).
* :class:`Histogram` — fixed-bucket latency distributions
  (``nc_request_latency_seconds_bucket{route="search",le="0.05"}``).
  Buckets are chosen at registration time and never reallocated, so
  ``observe`` is one bisect + one integer increment under the series
  lock; rendering reads a consistent snapshot.
* :class:`Gauge` — point-in-time values either set explicitly or
  collected at scrape time from a callback (``nc_engine_inflight``,
  ``nc_breaker_state``); callbacks let the registry report live engine
  state without the engine pushing on every change.

The registry renders series in registration order with stable label
ordering, so two scrapes of an idle service are byte-identical — which
is what makes the exposition easily testable
(:mod:`tests.test_service_metrics`) and CI-checkable
(:func:`validate_exposition`).

Instrumented series are documented for operators in
``docs/OPERATIONS.md`` ("Metrics reference").
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left

#: Default latency buckets (seconds): 250µs .. 30s in roughly 2.5x
#: steps, covering cached hits (sub-ms) through cold computations.
DEFAULT_LATENCY_BUCKETS = (
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format grammar."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(labels: "tuple[tuple[str, str], ...]") -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + rendered + "}"


class _Instrument:
    """Shared bookkeeping: name/help/label validation and series storage."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: "tuple[str, ...]") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label) or label == "le":
                raise ValueError(f"invalid label name {label!r} for metric {name!r}")
        self.name = name
        self.help = help_text.replace("\n", " ")
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        #: label-value tuple -> series object; insertion-ordered so the
        #: exposition is stable scrape to scrape.
        self._series: dict = {}

    def _key(self, labels: "dict[str, str]") -> "tuple[str, ...]":
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _get_series(self, labels: "dict[str, str]"):
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.get(key)
                if series is None:
                    series = self._make_series()
                    self._series[key] = series
        return series

    def _make_series(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _label_pairs(self, key: "tuple[str, ...]") -> "tuple[tuple[str, str], ...]":
        return tuple(zip(self.labelnames, key))

    def render(self) -> "list[str]":
        """The exposition lines for this instrument (HELP/TYPE + samples)."""
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        # dict iteration over a snapshot of items: concurrent inserts may
        # be missed this scrape (they appear on the next), never corrupt.
        for key, series in list(self._series.items()):
            lines.extend(self._render_series(self._label_pairs(key), series))
        return lines

    def _render_series(self, labels, series) -> "list[str]":  # pragma: no cover
        raise NotImplementedError


class _CounterSeries:
    __slots__ = ("lock", "value")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.value = 0.0


class Counter(_Instrument):
    """A monotonically increasing counter, optionally labeled.

    >>> c = Counter("nc_demo_total", "demo", ("event",))
    >>> c.inc(event="hit"); c.inc(2, event="hit")
    >>> c.value(event="hit")
    3.0
    """

    kind = "counter"

    def _make_series(self) -> _CounterSeries:
        return _CounterSeries()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (default 1) to the labeled series."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        series = self._get_series(labels)
        with series.lock:
            series.value += amount

    def value(self, **labels: str) -> float:
        """The labeled series' current value (0.0 if never incremented)."""
        series = self._series.get(self._key(labels))
        return series.value if series is not None else 0.0

    def _render_series(self, labels, series) -> "list[str]":
        return [f"{self.name}{_format_labels(labels)} {_format_value(series.value)}"]


class _HistogramSeries:
    __slots__ = ("lock", "bucket_counts", "total", "count", "exemplars")

    def __init__(self, buckets: int) -> None:
        self.lock = threading.Lock()
        self.bucket_counts = [0] * (buckets + 1)  # + the +Inf bucket
        self.total = 0.0
        self.count = 0
        #: bucket index -> (label dict, observed value); latest wins.
        self.exemplars: "dict[int, tuple[dict, float]]" = {}


class Histogram(_Instrument):
    """A fixed-bucket histogram with cumulative Prometheus rendering.

    ``buckets`` are the upper bounds (``le``) of each bucket, strictly
    increasing; an implicit ``+Inf`` bucket is always appended.
    Observations are binned with one bisect; bucket counts are stored
    *non*-cumulative and accumulated at render time, so ``observe``
    touches exactly one integer.

    When :attr:`emit_exemplars` is enabled, ``observe(..., exemplar=...)``
    attaches the exemplar labels (e.g. ``{"trace_id": ...}``) to the
    bucket the observation fell into — latest observation wins — and the
    renderer appends an OpenMetrics-style `` # {labels} value`` clause to
    that ``_bucket`` line, linking the aggregate to one concrete trace in
    ``/v1/debug/traces``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: "tuple[str, ...]" = (),
        *,
        buckets: "tuple[float, ...]" = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        if bounds[-1] == math.inf:
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds
        self.emit_exemplars = False

    def _make_series(self) -> _HistogramSeries:
        return _HistogramSeries(len(self.buckets))

    def observe(
        self, value: float, *, exemplar: "dict[str, str] | None" = None, **labels: str
    ) -> None:
        """Record one observation into the labeled series.

        ``exemplar`` (e.g. ``{"trace_id": ...}``) is kept only while the
        histogram has :attr:`emit_exemplars` enabled.
        """
        index = bisect_left(self.buckets, value)
        series = self._get_series(labels)
        with series.lock:
            series.bucket_counts[index] += 1
            series.total += value
            series.count += 1
            if exemplar is not None and self.emit_exemplars:
                series.exemplars[index] = (dict(exemplar), value)

    def snapshot(self, **labels: str) -> "dict":
        """``{"count", "sum", "buckets": {le: cumulative}}`` for tests/UI."""
        series = self._series.get(self._key(labels))
        if series is None:
            return {"count": 0, "sum": 0.0, "buckets": {}}
        with series.lock:
            counts = list(series.bucket_counts)
            total = series.total
            count = series.count
        cumulative: "dict[float, int]" = {}
        running = 0
        for bound, bucket_count in zip((*self.buckets, math.inf), counts):
            running += bucket_count
            cumulative[bound] = running
        return {"count": count, "sum": total, "buckets": cumulative}

    def _render_series(self, labels, series) -> "list[str]":
        with series.lock:
            counts = list(series.bucket_counts)
            total = series.total
            count = series.count
            exemplars = dict(series.exemplars) if self.emit_exemplars else {}
        lines = []
        running = 0
        for index, (bound, bucket_count) in enumerate(
            zip((*self.buckets, math.inf), counts)
        ):
            running += bucket_count
            bucket_labels = (*labels, ("le", _format_value(bound)))
            line = f"{self.name}_bucket{_format_labels(bucket_labels)} {running}"
            exemplar = exemplars.get(index)
            if exemplar is not None:
                exemplar_labels = tuple(sorted(exemplar[0].items()))
                line += (
                    f" # {_format_labels(exemplar_labels)}"
                    f" {_format_value(exemplar[1])}"
                )
            lines.append(line)
        lines.append(
            f"{self.name}_sum{_format_labels(labels)} {_format_value(total)}"
        )
        lines.append(f"{self.name}_count{_format_labels(labels)} {count}")
        return lines


class _GaugeSeries:
    __slots__ = ("lock", "value", "callback")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.value = 0.0
        self.callback = None


class Gauge(_Instrument):
    """A point-in-time value: set explicitly or collected at scrape time.

    ``set_function`` registers a zero-argument callback evaluated on
    every render — the natural fit for values the engine already tracks
    (in-flight requests, pinned version, uptime) without a push on each
    change. A callback that raises is rendered as ``NaN`` rather than
    failing the whole scrape.
    """

    kind = "gauge"

    def _make_series(self) -> _GaugeSeries:
        return _GaugeSeries()

    def set(self, value: float, **labels: str) -> None:
        """Set the labeled series to ``value``."""
        series = self._get_series(labels)
        with series.lock:
            series.value = float(value)
            series.callback = None

    def set_function(self, callback, **labels: str) -> None:
        """Collect the labeled series from ``callback()`` at scrape time."""
        series = self._get_series(labels)
        with series.lock:
            series.callback = callback

    def value(self, **labels: str) -> float:
        """The labeled series' current value (callback evaluated now)."""
        series = self._series.get(self._key(labels))
        if series is None:
            return 0.0
        callback = series.callback
        if callback is not None:
            try:
                return float(callback())
            except Exception:
                return math.nan
        return series.value

    def _render_series(self, labels, series) -> "list[str]":
        callback = series.callback
        if callback is not None:
            try:
                value = float(callback())
            except Exception:
                value = math.nan
        else:
            value = series.value
        if math.isnan(value):
            rendered = "NaN"
        else:
            rendered = _format_value(value)
        return [f"{self.name}{_format_labels(labels)} {rendered}"]


class MetricsRegistry:
    """An ordered collection of instruments with one text renderer.

    Registration is idempotent by name *and* signature: asking for an
    already-registered instrument returns the existing one (so layered
    components — engine, cache hook, server — can share series without
    threading instrument objects through every constructor), while a
    conflicting re-registration (different kind or labels) raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "dict[str, _Instrument]" = {}

    def counter(
        self, name: str, help_text: str, labelnames: "tuple[str, ...]" = ()
    ) -> Counter:
        """Get or register a :class:`Counter`."""
        return self._register(Counter, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: "tuple[str, ...]" = (),
        *,
        buckets: "tuple[float, ...]" = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or register a :class:`Histogram`."""
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                self._check_compatible(existing, Histogram, labelnames)
                if existing.buckets != tuple(float(b) for b in buckets if b != math.inf):
                    raise ValueError(
                        f"metric {name!r} is already registered with different "
                        f"buckets"
                    )
                return existing
            instrument = Histogram(name, help_text, labelnames, buckets=buckets)
            self._instruments[name] = instrument
            return instrument

    def gauge(
        self, name: str, help_text: str, labelnames: "tuple[str, ...]" = ()
    ) -> Gauge:
        """Get or register a :class:`Gauge`."""
        return self._register(Gauge, name, help_text, labelnames)

    def _register(self, cls, name: str, help_text: str, labelnames) -> "_Instrument":
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                self._check_compatible(existing, cls, labelnames)
                return existing
            instrument = cls(name, help_text, labelnames)
            self._instruments[name] = instrument
            return instrument

    @staticmethod
    def _check_compatible(existing: _Instrument, cls, labelnames) -> None:
        if type(existing) is not cls or existing.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {existing.name!r} is already registered as "
                f"{existing.kind} with labels {existing.labelnames}"
            )

    def get(self, name: str) -> "_Instrument | None":
        """The registered instrument named ``name``, or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    def render(self) -> str:
        """The full Prometheus text exposition (content type
        ``text/plain; version=0.0.4``)."""
        with self._lock:
            instruments = list(self._instruments.values())
        lines: "list[str]" = []
        for instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"


#: Exposition content type served by ``GET /v1/metrics``.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)"
    r"( (?P<timestamp>-?[0-9]+))?"
    r"( # (?P<exemplar_labels>\{[^{}]*\}) (?P<exemplar_value>[^ ]+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"$'
)


def validate_exposition(text: str) -> "dict[str, str]":
    """Parse Prometheus text exposition; raise ``ValueError`` if malformed.

    A deliberately strict checker for tests and the CI scrape smoke: it
    enforces the line grammar (HELP/TYPE comments, sample lines, label
    syntax, parseable values), that every sample belongs to a ``# TYPE``d
    metric family declared *before* it, that histogram families expose
    ``_bucket``/``_sum``/``_count`` with a ``+Inf`` bucket, and that
    cumulative bucket counts never decrease. OpenMetrics-style exemplars
    (`` # {trace_id="..."} 0.064``) are accepted — but only on histogram
    ``_bucket`` lines, and their label pairs and value must themselves be
    well-formed. Returns the ``{family: type}`` mapping for further
    assertions.
    """
    families: "dict[str, str]" = {}
    bucket_state: "dict[tuple, float]" = {}
    seen_inf: "set[str]" = set()
    for line_number, line in enumerate(text.split("\n"), start=1):
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {line_number}: malformed comment {line!r}")
            if parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(
                        f"line {line_number}: unknown metric type {parts[3]!r}"
                    )
                if parts[2] in families:
                    raise ValueError(
                        f"line {line_number}: duplicate TYPE for {parts[2]!r}"
                    )
                families[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample {line!r}")
        name = match.group("name")
        label_blob = match.group("labels")
        labels: "dict[str, str]" = {}
        if label_blob:
            for pair in _split_label_pairs(label_blob[1:-1], line_number):
                if not _LABEL_PAIR_RE.match(pair):
                    raise ValueError(
                        f"line {line_number}: malformed label pair {pair!r}"
                    )
                key, _, value = pair.partition("=")
                if key in labels:
                    raise ValueError(
                        f"line {line_number}: duplicate label {key!r}"
                    )
                labels[key] = value[1:-1]
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError as error:
            raise ValueError(
                f"line {line_number}: unparseable value {raw_value!r}"
            ) from error
        family = _family_name(name)
        if family not in families:
            raise ValueError(
                f"line {line_number}: sample {name!r} has no preceding # TYPE"
            )
        exemplar_blob = match.group("exemplar_labels")
        if exemplar_blob is not None:
            if families[family] != "histogram" or not name.endswith("_bucket"):
                raise ValueError(
                    f"line {line_number}: exemplar on non-bucket sample {name!r}"
                )
            for pair in _split_label_pairs(exemplar_blob[1:-1], line_number):
                if not _LABEL_PAIR_RE.match(pair):
                    raise ValueError(
                        f"line {line_number}: malformed exemplar label {pair!r}"
                    )
            raw_exemplar = match.group("exemplar_value")
            try:
                float(raw_exemplar)
            except ValueError as error:
                raise ValueError(
                    f"line {line_number}: unparseable exemplar value "
                    f"{raw_exemplar!r}"
                ) from error
        if families[family] == "histogram" and name.endswith("_bucket"):
            if "le" not in labels:
                raise ValueError(f"line {line_number}: bucket without le label")
            series_key = (
                family,
                tuple(sorted((k, v) for k, v in labels.items() if k != "le")),
            )
            if labels["le"] == "+Inf":
                seen_inf.add(family)
            previous = bucket_state.get(series_key, -math.inf)
            if value < previous:
                raise ValueError(
                    f"line {line_number}: cumulative bucket count decreased"
                )
            bucket_state[series_key] = value
    histogram_families = {f for f, kind in families.items() if kind == "histogram"}
    missing_inf = {
        family
        for family in histogram_families
        if any(key[0] == family for key in bucket_state) and family not in seen_inf
    }
    if missing_inf:
        raise ValueError(f"histograms missing a +Inf bucket: {sorted(missing_inf)}")
    return families


def _split_label_pairs(blob: str, line_number: int) -> "list[str]":
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    pairs: "list[str]" = []
    current: "list[str]" = []
    in_quotes = False
    escaped = False
    for char in blob:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if in_quotes:
        raise ValueError(f"line {line_number}: unterminated label value")
    if current:
        pairs.append("".join(current))
    return [pair for pair in pairs if pair]


def _family_name(sample_name: str) -> str:
    """Map a sample name onto its metric family (histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            family = sample_name[: -len(suffix)]
            if family:
                return family
    return sample_name


class ServiceMetrics:
    """The pre-registered instrument bundle for one engine + HTTP front-end.

    Owned by :class:`~repro.service.engine.NCEngine` (``engine.metrics``)
    and shared with the HTTP server, which renders
    :attr:`registry` on ``GET /v1/metrics`` and records per-route
    counters/latency through :attr:`http_requests` /
    :attr:`http_latency`. The cache and the worker pool stay decoupled
    from this module — they accept plain ``on_event`` callbacks, and
    :meth:`cache_event` / :meth:`worker_event` are the engine-provided
    implementations that translate those events into counter series.

    Every exported series is documented for operators in
    ``docs/OPERATIONS.md`` ("Metrics reference").
    """

    def __init__(
        self,
        registry: "MetricsRegistry | None" = None,
        *,
        exemplars: bool = False,
    ) -> None:
        reg = registry if registry is not None else MetricsRegistry()
        self.registry = reg
        self.http_requests = reg.counter(
            "nc_http_requests_total",
            "HTTP requests served, by canonical route, method and status code.",
            ("route", "method", "status"),
        )
        self.http_latency = reg.histogram(
            "nc_http_request_latency_seconds",
            "Wall-clock HTTP request latency, by canonical route.",
            ("route",),
        )
        self.engine_requests = reg.counter(
            "nc_engine_requests_total",
            "Requests admitted into NCEngine.submit, by executor backend.",
            ("executor",),
        )
        self.cache_events = reg.counter(
            "nc_cache_events_total",
            "Result-cache events (hit, miss, eviction, purged).",
            ("event",),
        )
        self.coalesced = reg.counter(
            "nc_engine_coalesced_total",
            "Requests that joined an identical in-flight computation "
            "(single-flight coalescing).",
        )
        self.computed = reg.counter(
            "nc_engine_computed_total",
            "Distinct computations completed, by executor backend.",
            ("backend",),
        )
        self.compute_latency = reg.histogram(
            "nc_compute_latency_seconds",
            "Latency of distinct (non-cached, non-coalesced) computations, "
            "by executor backend.",
            ("backend",),
        )
        self.timeouts = reg.counter(
            "nc_engine_timeouts_total",
            "Requests whose deadline expired (served as HTTP 504).",
        )
        self.shed = reg.counter(
            "nc_engine_shed_total",
            "Requests shed by admission control (served as HTTP 503).",
        )
        self.fallbacks = reg.counter(
            "nc_engine_fallbacks_total",
            "Computations served by the degraded thread-local fallback.",
        )
        self.backend_retries = reg.counter(
            "nc_engine_backend_retries_total",
            "Worker-backend dispatches retried after a crash or a stale "
            "segment.",
        )
        self.repins = reg.counter(
            "nc_engine_repins_total",
            "Snapshot re-pins (graph mutations and hot swaps).",
        )
        self.swaps = reg.counter(
            "nc_engine_swaps_total",
            "Completed snapshot hot swaps.",
        )
        self.drains = reg.counter(
            "nc_engine_drained_versions_total",
            "Superseded snapshot versions fully drained and retired.",
        )
        self.worker_events = reg.counter(
            "nc_worker_events_total",
            "Worker-pool lifecycle events (dispatch, complete, stale, crash, "
            "deadline_abandon, respawn, respawn_suppressed, batch_dispatch).",
            ("event",),
        )
        self.worker_batch_size = reg.histogram(
            "nc_worker_batch_size",
            "Members per dispatched worker micro-batch (only populated when "
            "the pool runs with max_batch > 1).",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
        )
        self.ingest_batches = reg.counter(
            "nc_ingest_batches_total",
            "Live-ingest batches accepted via POST /v1/admin/ingest, by "
            "outcome (accepted, noop, rejected, failed).",
            ("status",),
        )
        self.ingest_triples = reg.counter(
            "nc_ingest_triples_total",
            "Canonical statements recorded by live ingest, by op (add, "
            "remove).",
            ("op",),
        )
        self.ingest_lag = reg.histogram(
            "nc_ingest_lag_seconds",
            "Wall-clock from a delta run's durable append to the merged "
            "version being adopted by the serving engine.",
        )
        self.delta_depth = reg.gauge(
            "nc_delta_depth",
            "Delta runs appended against the active chain base that the "
            "serving snapshot has not folded in yet (0 when fully merged).",
        )
        self.kernel_active = reg.gauge(
            "nc_kernel_active",
            "The compute kernel in use (REPRO_KERNEL seam): 1 for the active "
            "kernel series, 0 for the others.",
            ("kernel",),
        )
        # Latency histograms carry trace-id exemplars only when the
        # operator opts in (--metrics-exemplars): classic Prometheus
        # scrapers tolerate the clause, but the default stays 0.0.4-pure.
        self.http_latency.emit_exemplars = exemplars
        self.compute_latency.emit_exemplars = exemplars
        self._sync_kernel_gauge()

    def _sync_kernel_gauge(self) -> None:
        """Publish the resolved REPRO_KERNEL selection as a one-hot gauge."""
        from repro.walk import kernels

        active = kernels.active_kernel()
        for name in kernels.KNOWN_KERNELS:
            self.kernel_active.set(1.0 if name == active else 0.0, kernel=name)

    def cache_event(self, event: str, count: int = 1) -> None:
        """:class:`~repro.service.cache.ResultCache`'s ``on_event`` hook."""
        self.cache_events.inc(count, event=event)

    def worker_event(self, event: str, count: int = 1) -> None:
        """:class:`~repro.service.workers.ProcessWorkerPool`'s ``on_event`` hook."""
        self.worker_events.inc(count, event=event)

    def observe_worker_batch(self, size: int) -> None:
        """:class:`~repro.service.workers.ProcessWorkerPool`'s ``on_batch`` hook."""
        self.worker_batch_size.observe(float(size))

    def render(self) -> str:
        """The registry's full Prometheus text exposition."""
        return self.registry.render()
