"""Shared fixtures for the unit/integration test suite."""

from __future__ import annotations

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.datasets.loader import load_dataset
from repro.graph.builder import GraphBuilder


def pytest_addoption(parser: pytest.Parser) -> None:
    """Opt-in switches for the test tiers excluded from tier-1 runs.

    ``slow``/``chaos`` marked cases are subprocess-heavy (worker pools,
    crash storms, HTTP servers); a plain ``pytest -x -q`` skips them to
    keep the tier-1 wall clock bounded, and CI's dedicated steps re-enable
    them explicitly. Options (rather than ``-m`` expressions) survive any
    ``-m`` filter the caller adds.
    """
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run tests marked @pytest.mark.slow",
    )
    parser.addoption(
        "--run-chaos",
        action="store_true",
        default=False,
        help="run tests marked @pytest.mark.chaos",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: "list[pytest.Item]"
) -> None:
    skip_slow = pytest.mark.skip(reason="slow tier: pass --run-slow to enable")
    skip_chaos = pytest.mark.skip(reason="chaos tier: pass --run-chaos to enable")
    run_slow = config.getoption("--run-slow")
    run_chaos = config.getoption("--run-chaos")
    for item in items:
        if not run_slow and "slow" in item.keywords:
            item.add_marker(skip_slow)
        if not run_chaos and "chaos" in item.keywords:
            item.add_marker(skip_chaos)


@pytest.fixture()
def toy_graph():
    """A small hand-built leaders graph used across unit tests."""
    return (
        GraphBuilder("toy")
        .typed("Merkel", "politician")
        .typed("Obama", "politician")
        .typed("Putin", "politician")
        .typed("Pitt", "actor")
        .fact("Merkel", "leaderOf", "Germany")
        .fact("Obama", "leaderOf", "USA")
        .fact("Putin", "leaderOf", "Russia")
        .fact("Merkel", "studied", "Physics")
        .fact("Obama", "studied", "Law")
        .fact("Putin", "studied", "Law")
        .fact("Obama", "hasChild", "Malia")
        .fact("Obama", "hasChild", "Natasha")
        .fact("Putin", "hasChild", "Mariya")
        .fact("Pitt", "actedIn", "Troy")
        .subclass("politician", "person")
        .subclass("actor", "person")
        .build()
    )


@pytest.fixture(scope="session")
def fig1_graph():
    return figure1_graph()


@pytest.fixture(scope="session")
def yago_small():
    """Synthetic YAGO at scale 1 (about 2.2k nodes) — session-shared.

    Tests must treat it as read-only; anything mutating builds its own
    graph.
    """
    return load_dataset("yago", scale=1.0)


@pytest.fixture(scope="session")
def linkedmdb_small():
    return load_dataset("linkedmdb", scale=1.0)
