"""Render and aggregate traces captured by the query service.

Two modes over the JSON shape served by ``GET /v1/debug/traces/<id>``
(and stored by anything that saves those responses to disk):

* **one trace** (a file path or an ``http(s)://`` trace URL): print the
  span tree as an indented phase-timing listing, so "where did this
  request's time go" is answered by eye — gather window vs worker PPR
  vs sweep vs discrimination;
* **a directory of traces** (``*.json``): aggregate every span across
  every trace into a per-phase ``count / p50 / p99 / max`` table — the
  slow-query triage view over a batch of retained slow traces.

Usage (from the repo root)::

    curl -s http://127.0.0.1:8099/v1/debug/traces/<id> > slow/one.json
    python tools/trace_report.py slow/one.json
    python tools/trace_report.py slow/
    python tools/trace_report.py http://127.0.0.1:8099/v1/debug/traces/<id>

Zero dependencies beyond the repo itself (the tree nesting comes from
:func:`repro.service.tracing.trace_tree`).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.tracing import trace_tree  # noqa: E402


def load_trace(target: str) -> dict:
    """One trace dict from a file path or an ``http(s)://`` URL."""
    if target.startswith(("http://", "https://")):
        with urllib.request.urlopen(target, timeout=30.0) as response:
            payload = json.loads(response.read().decode("utf-8"))
    else:
        payload = json.loads(Path(target).read_text())
    if not isinstance(payload, dict) or "spans" not in payload:
        raise ValueError(f"{target}: not a trace (no 'spans' field)")
    return payload


def _format_attrs(attributes: dict) -> str:
    if not attributes:
        return ""
    inner = " ".join(f"{key}={value}" for key, value in attributes.items())
    return f"  [{inner}]"


def render_tree(trace: dict, *, out=None) -> None:
    """Print one trace as an indented phase-timing tree."""
    out = out if out is not None else sys.stdout
    retained = trace.get("retained", "?")
    print(
        f"trace {trace.get('trace_id', '?')}  "
        f"({trace.get('duration_ms', '?')} ms, retained: {retained}"
        f"{', ERROR' if trace.get('error') else ''})",
        file=out,
    )

    def walk(node: dict, depth: int) -> None:
        print(
            f"{'  ' * depth}{node['name']:<24} "
            f"{node['duration_ms']:>10.3f} ms"
            f"{_format_attrs(node.get('attributes', {}))}",
            file=out,
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in trace_tree(trace):
        walk(root, 0)


def percentile(ordered: "list[float]", q: float) -> float:
    """Nearest-rank quantile of an already-sorted list."""
    if not ordered:
        return math.nan
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def aggregate(traces: "list[dict]") -> "list[dict]":
    """Per-phase duration stats across ``traces``, slowest p99 first."""
    by_name: "dict[str, list[float]]" = {}
    for trace in traces:
        for span in trace["spans"]:
            by_name.setdefault(span["name"], []).append(span["duration_ms"])
    rows = []
    for name, durations in by_name.items():
        durations.sort()
        rows.append(
            {
                "phase": name,
                "count": len(durations),
                "p50_ms": percentile(durations, 0.50),
                "p99_ms": percentile(durations, 0.99),
                "max_ms": durations[-1],
            }
        )
    rows.sort(key=lambda row: row["p99_ms"], reverse=True)
    return rows


def render_table(rows: "list[dict]", *, traces: int, out=None) -> None:
    """Print the per-phase aggregate as an aligned text table."""
    out = out if out is not None else sys.stdout
    print(f"{len(rows)} phases across {traces} traces", file=out)
    print(
        f"{'phase':<24} {'count':>6} {'p50_ms':>10} {'p99_ms':>10} "
        f"{'max_ms':>10}",
        file=out,
    )
    for row in rows:
        print(
            f"{row['phase']:<24} {row['count']:>6} {row['p50_ms']:>10.3f} "
            f"{row['p99_ms']:>10.3f} {row['max_ms']:>10.3f}",
            file=out,
        )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="pretty-print one captured trace, or aggregate a "
        "directory of them into a per-phase latency table"
    )
    parser.add_argument(
        "target",
        help="a trace JSON file, a directory of *.json traces, or an "
        "http(s) URL of GET /v1/debug/traces/<id>",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the aggregate/tree as JSON instead of text",
    )
    args = parser.parse_args(argv)

    path = Path(args.target)
    if not args.target.startswith(("http://", "https://")) and path.is_dir():
        files = sorted(path.glob("*.json"))
        if not files:
            print(f"{path}: no *.json traces found")
            return 1
        traces = []
        for file in files:
            try:
                traces.append(load_trace(str(file)))
            except (ValueError, json.JSONDecodeError) as error:
                print(f"skipping {file}: {error}", file=sys.stderr)
        if not traces:
            print(f"{path}: no readable traces")
            return 1
        rows = aggregate(traces)
        if args.json:
            print(json.dumps(rows, indent=2, sort_keys=True))
        else:
            render_table(rows, traces=len(traces))
        return 0

    try:
        trace = load_trace(args.target)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"{args.target}: {error}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(trace_tree(trace), indent=2, sort_keys=True))
    else:
        render_tree(trace)
    return 0


if __name__ == "__main__":
    sys.exit(main())
