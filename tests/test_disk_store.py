"""The disk snapshot store: byte-exact round-trips, format guards, mmap reads."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.store import (
    FORMAT_VERSION,
    MAGIC,
    DiskSnapshotHeader,
    SnapshotFormatError,
    open_snapshot,
    open_snapshot_view,
    save_graph_snapshot,
    save_snapshot,
)
from repro.graph.builder import GraphBuilder
from repro.graph.compiled import ARRAY_FIELDS
from repro.graph.matrix import transition_from_snapshot
from repro.graph.model import KnowledgeGraph

node_names = st.sampled_from([f"n{i}" for i in range(6)] + ["Ünïcode_Nödé"])
label_names = st.sampled_from(["r", "s", "t"])
fact_lists = st.lists(
    st.tuples(node_names, label_names, node_names), min_size=1, max_size=25
)


def build_graph(facts) -> KnowledgeGraph:
    graph = KnowledgeGraph("prop-graph")
    for s, label, o in facts:
        graph.add_edge(s, label, o)
    return graph


def sample_graph() -> KnowledgeGraph:
    return (
        GraphBuilder("sample")
        .typed("Angela_Merkel", "politician")
        .typed("Barack_Obama", "politician")
        .fact("Angela_Merkel", "leaderOf", "Germany")
        .fact("Barack_Obama", "leaderOf", "USA")
        .attribute("Angela_Merkel", "born", 1954)
        .build()
    )


class TestRoundTrip:
    @given(fact_lists)
    @settings(max_examples=40, deadline=None)
    def test_all_eight_arrays_byte_identical(self, tmp_path_factory, facts):
        graph = build_graph(facts)
        compiled = graph.compiled()
        path = tmp_path_factory.mktemp("snap") / "g.snap"
        save_graph_snapshot(graph, path)
        with open_snapshot(path) as snap:
            for name, dtype in ARRAY_FIELDS:
                expected = getattr(compiled, name)
                actual = getattr(snap.compiled, name)
                assert actual.dtype == dtype
                assert expected.tobytes() == actual.tobytes(), name
            assert snap.compiled.version == compiled.version
            assert snap.compiled.node_count == compiled.node_count
            assert snap.compiled.label_count == compiled.label_count

    @given(fact_lists)
    @settings(max_examples=20, deadline=None)
    def test_name_tables_round_trip(self, tmp_path_factory, facts):
        graph = build_graph(facts)
        path = tmp_path_factory.mktemp("snap") / "g.snap"
        save_graph_snapshot(graph, path)
        with open_snapshot(path) as snap:
            assert list(snap.node_names) == graph._node_names_list()
            assert list(snap.label_table) == list(graph._label_table())

    def test_header_scalars(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "g.snap"
        nbytes = save_graph_snapshot(graph, path)
        assert nbytes == os.path.getsize(path)
        with open_snapshot(path) as snap:
            header = snap.header
            assert header.graph_name == "sample"
            assert header.version == graph.version
            assert header.node_count == graph.node_count
            assert header.label_count == len(graph._label_table())
            assert header.segment.startswith("file://")

    def test_transition_round_trips(self, tmp_path):
        graph = sample_graph()
        expected = transition_from_snapshot(graph.compiled())
        path = tmp_path / "g.snap"
        save_graph_snapshot(graph, path)
        with open_snapshot(path) as snap:
            stored = snap.transition()
            assert stored is not None
            assert stored.shape == expected.shape
            assert (stored != expected).nnz == 0
            assert snap.transition() is stored  # memoized

    def test_transition_optional(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "g.snap"
        save_graph_snapshot(graph, path, include_transition=False)
        with open_snapshot(path) as snap:
            assert snap.transition() is None

    def test_arrays_are_read_only(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "g.snap"
        save_graph_snapshot(graph, path)
        with open_snapshot(path) as snap:
            with pytest.raises(ValueError):
                snap.compiled.targets[0] = 99

    def test_empty_graph(self, tmp_path):
        graph = KnowledgeGraph("empty")
        graph.add_node("lonely")
        path = tmp_path / "empty.snap"
        save_graph_snapshot(graph, path)
        with open_snapshot(path) as snap:
            assert snap.compiled.node_count == 1
            assert snap.compiled.edge_count == 0
            assert list(snap.node_names) == ["lonely"]


class TestViewSurface:
    def test_view_resolves_like_the_graph(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "g.snap"
        save_graph_snapshot(graph, path)
        view = open_snapshot_view(path)
        assert view.frozen
        assert view.node_count == graph.node_count
        assert view.edge_count == graph.edge_count
        assert list(view.nodes()) == list(graph.nodes())
        for node_id in graph.nodes():
            name = graph.node_name(node_id)
            assert view.node_name(node_id) == name
            assert view.node_id(name) == node_id
            assert view.has_node(name)
        assert not view.has_node("Nobody_Here")

    def test_view_version_is_pinned(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "g.snap"
        save_graph_snapshot(graph, path)
        view = open_snapshot_view(path)
        assert view.version == graph.version
        assert view.compiled() is view._compiled()


class TestFormatGuards:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.snap"
        path.write_bytes(b"NOTASNAP" + b"\x00" * 64)
        with pytest.raises(SnapshotFormatError, match="bad magic"):
            open_snapshot(path)

    def test_short_file_rejected(self, tmp_path):
        path = tmp_path / "short.snap"
        path.write_bytes(MAGIC[:4])
        with pytest.raises(SnapshotFormatError, match="too short"):
            open_snapshot(path)

    def test_future_format_version_rejected(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "g.snap"
        save_graph_snapshot(graph, path)
        raw = bytearray(path.read_bytes())
        raw[8] = FORMAT_VERSION + 1  # little-endian u32 at offset 8
        path.write_bytes(bytes(raw))
        with pytest.raises(SnapshotFormatError, match="format version"):
            open_snapshot(path)

    def test_truncated_file_rejected(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "g.snap"
        save_graph_snapshot(graph, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 16])
        with pytest.raises(SnapshotFormatError, match="truncated"):
            open_snapshot(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_snapshot(tmp_path / "ghost.snap")

    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "g.snap"
        save_graph_snapshot(graph, path)
        assert [p.name for p in tmp_path.iterdir()] == ["g.snap"]

    def test_name_count_validation(self, tmp_path):
        graph = sample_graph()
        compiled = graph.compiled()
        with pytest.raises(ValueError, match="node names"):
            save_snapshot(compiled, ["only-one"], ["a"] * 99, tmp_path / "x.snap")


class TestHeaderPickling:
    def test_header_is_picklable(self, tmp_path):
        import pickle

        graph = sample_graph()
        path = tmp_path / "g.snap"
        save_graph_snapshot(graph, path)
        with open_snapshot(path) as snap:
            header = snap.header
        clone = pickle.loads(pickle.dumps(header))
        assert clone == header
        assert isinstance(clone, DiskSnapshotHeader)

    def test_publication_is_a_noop_unlink(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "g.snap"
        save_graph_snapshot(graph, path)
        with open_snapshot(path) as snap:
            publication = snap.publication()
            publication.unlink()
            publication.close()
        assert path.exists()  # retirement never deletes data
        assert publication.version == graph.version
        assert publication.segment == snap.header.segment


class TestShmLayoutParity:
    def test_disk_and_shm_serve_identical_bytes(self, tmp_path):
        """The two transports publish the same block contents."""
        from repro.parallel.shm import attach_snapshot, publish_graph

        graph = sample_graph()
        path = tmp_path / "g.snap"
        save_graph_snapshot(graph, path, include_transition=False)
        shared = publish_graph(graph)
        try:
            attached = attach_snapshot(shared.header)
            try:
                with open_snapshot(path) as snap:
                    for name, _ in ARRAY_FIELDS:
                        assert (
                            getattr(snap.compiled, name).tobytes()
                            == getattr(attached.compiled, name).tobytes()
                        ), name
                    assert list(snap.node_names) == list(attached.node_names)
            finally:
                attached.close()
        finally:
            shared.unlink()
