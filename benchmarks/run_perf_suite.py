"""Run the performance suite and emit a machine-readable BENCH_PR<N>.json.

Times the FindNC hot-path kernels — the discrimination-phase distribution
build (per-label reference vs single-sweep batch), batched vs per-node
Personalized PageRank, argpartition vs full-sort top-k — plus the Figure-5
end-to-end context-selection bench, and writes the results as JSON so
future PRs have a perf trajectory to compare against.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_perf_suite.py [--out BENCH_PR1.json]
                                                       [--skip-fig5] [--repeat 5]
                                                       [--quick]

``--quick`` is the CI smoke mode: tiny scale, one repetition, smallest
context sizes, no Figure-5 run — seconds instead of minutes, enough to
catch perf-suite bitrot on every PR (numbers are NOT comparable to the
committed BENCH_PR*.json files).

The same-machine, same-run reference/batch pairs in the output are the
speedup evidence: both paths live in the repo (``build_distributions`` is
the pre-batching implementation, kept as the parity oracle), so the
comparison needs no git archaeology.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core.distributions import (  # noqa: E402
    build_all_distributions,
    build_distributions,
)
from repro.core.findnc import FindNC  # noqa: E402
from repro.datasets.loader import load_dataset  # noqa: E402
from repro.datasets.seeds import ACTORS_DOMAIN  # noqa: E402
from repro.eval.experiments import ExperimentSetting, time_vs_query_size  # noqa: E402
from repro.graph.search import EntityIndex  # noqa: E402
from repro.walk.pagerank import PersonalizedPageRank  # noqa: E402

#: Matches benchmarks/conftest.py's BENCH_SETTING (synthetic YAGO, ~4k nodes).
SCALE = 2.0


def best_of(repeat: int, func, *args, **kwargs) -> float:
    """Best wall-clock seconds over ``repeat`` runs (min filters jitter)."""
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        func(*args, **kwargs)
        best = min(best, time.perf_counter() - started)
    return best


def bench_discrimination(
    graph, query, repeat: int, context_sizes: tuple = (100, 500, 1000)
) -> dict:
    """Per-label reference vs single-sweep batch, per context size."""
    ppr = PersonalizedPageRank(graph)
    finder = FindNC(graph)
    out = {}
    for context_size in context_sizes:
        context = [n for n, _ in ppr.top_k(query, context_size)]
        labels = finder.candidate_labels(list(query) + context)
        graph._compiled()  # noqa: SLF001 - warm the snapshot cache

        def reference():
            return [
                build_distributions(graph, query, context, label)
                for label in labels
            ]

        def batch():
            return build_all_distributions(graph, query, context, labels)

        reference_s = best_of(repeat, reference)
        batch_s = best_of(repeat, batch)
        out[f"context_{context_size}"] = {
            "candidate_labels": len(labels),
            "members": len(query) + len(context),
            "reference_s": reference_s,
            "batch_s": batch_s,
            "speedup": reference_s / batch_s if batch_s > 0 else float("inf"),
        }
    return out


def bench_ppr(graph, query, repeat: int, sizes: tuple = (1, 3, 5)) -> dict:
    """Batched multi-column scores_per_node vs the per-node loop."""
    ppr = PersonalizedPageRank(graph, iterations=10)
    ppr.transition()  # warm the transition-matrix cache
    out = {}
    for size in sizes:
        nodes = list(query[:size])

        def per_node():
            total = np.zeros(graph.node_count)
            for node in nodes:
                total += ppr.scores([node])
            return total

        def batched():
            return ppr.scores_per_node(nodes)

        per_node_s = best_of(repeat, per_node)
        batched_s = best_of(repeat, batched)
        out[f"q_{size}"] = {
            "per_node_s": per_node_s,
            "batched_s": batched_s,
            "speedup": per_node_s / batched_s if batched_s > 0 else float("inf"),
        }
    return out


def bench_top_k(graph, query, repeat: int, k: int = 100) -> dict:
    """The ordering kernel alone: argpartition prefilter vs full argsort.

    Scores are computed once outside the timing so the comparison isolates
    what changed — the old path sorted the entire score vector; the new
    one partitions first and sorts only the candidate set.
    """
    from repro.walk.pagerank import _top_order

    ppr = PersonalizedPageRank(graph)
    scores = ppr.scores_per_node(query)
    excluded = set(query)

    def select(order):
        out = []
        for node in order:
            node = int(node)
            if node in excluded:
                continue
            if scores[node] <= 0:
                break
            out.append((node, float(scores[node])))
            if len(out) == k:
                break
        return out

    def full_sort():
        return select(np.argsort(-scores, kind="stable"))

    def partitioned():
        return select(_top_order(scores, k + len(excluded)))

    full_s = best_of(repeat, full_sort)
    part_s = best_of(repeat, partitioned)
    assert partitioned() == full_sort(), "top-k parity violated"
    return {
        "k": k,
        "nodes": graph.node_count,
        "full_sort_s": full_s,
        "argpartition_s": part_s,
        "speedup": full_s / part_s if part_s > 0 else float("inf"),
    }


def bench_fig5() -> list[dict]:
    """The Figure-5 end-to-end bench (context selection time vs |Q|)."""
    table = time_vs_query_size(ExperimentSetting(scale=SCALE))
    return [
        {"algorithm": algorithm, "query_size": size, "seconds": seconds}
        for algorithm, size, seconds in table.rows
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output JSON path (default: repo-root BENCH_PR1.json; with "
        "--quick, a temp file so smoke numbers never overwrite the "
        "committed record)",
    )
    parser.add_argument(
        "--repeat", type=int, default=5, help="runs per timing (best-of)"
    )
    parser.add_argument(
        "--skip-fig5",
        action="store_true",
        help="skip the minutes-long Figure-5 end-to-end bench",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: tiny scale, repeat=1, no fig5 (~seconds)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        scale, repeat = 0.5, 1
        context_sizes, ppr_sizes = (50, 100), (1, 3)
    else:
        scale, repeat = SCALE, args.repeat
        context_sizes, ppr_sizes = (100, 500, 1000), (1, 3, 5)
    if args.out is None:
        # Quick numbers are NOT comparable to the committed record — never
        # let them land on the repo-root BENCH file by default.
        args.out = (
            Path(tempfile.gettempdir()) / "bench_quick.json"
            if args.quick
            else REPO_ROOT / "BENCH_PR1.json"
        )

    graph = load_dataset("yago", scale=scale, seed=7)
    index = EntityIndex(graph)
    query = tuple(index.resolve(name) for name in ACTORS_DOMAIN.entities[:5])

    print(f"graph: {graph.summary()}", flush=True)
    report = {
        "suite": "run_perf_suite",
        "pr": 1,
        "created_unix": int(time.time()),
        "quick": args.quick,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "processor": platform.processor() or platform.machine(),
        },
        "graph": {
            "dataset": "yago",
            "scale": scale,
            "nodes": graph.node_count,
            "edges": graph.edge_count,
        },
        "repeat": repeat,
    }

    print("timing discrimination phase (reference vs batch)...", flush=True)
    report["discrimination"] = bench_discrimination(
        graph, query, repeat, context_sizes
    )
    print("timing scores_per_node (per-node loop vs batched)...", flush=True)
    report["ppr_scores_per_node"] = bench_ppr(graph, query, repeat, ppr_sizes)
    print("timing top_k (full sort vs argpartition)...", flush=True)
    report["top_k"] = bench_top_k(graph, query, repeat)
    if not args.skip_fig5 and not args.quick:
        print("running fig5 end-to-end bench (this takes a while)...", flush=True)
        report["fig5"] = bench_fig5()

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    for name, entry in report["discrimination"].items():
        print(
            f"discrimination {name}: {entry['reference_s'] * 1e3:.2f}ms -> "
            f"{entry['batch_s'] * 1e3:.2f}ms ({entry['speedup']:.1f}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
