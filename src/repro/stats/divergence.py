"""Kullback-Leibler and Jensen-Shannon divergences.

The paper rejects KL for the main method because the query distribution is
sparse ("this leads to many zero values in the query-distribution" and KL
is undefined when the reference has zeros the sample does not). For the
metrics-comparison experiment (Section 4.2) KL is still evaluated as a
baseline; additive smoothing makes it total, as any practical use must.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StatisticsError
from repro.util.validation import normalize_counts


def _prepare(p, q, smoothing: float) -> tuple[np.ndarray, np.ndarray]:
    p_arr = np.asarray(p, dtype=np.float64)
    q_arr = np.asarray(q, dtype=np.float64)
    if p_arr.shape != q_arr.shape or p_arr.ndim != 1:
        raise StatisticsError("p and q must be 1-D vectors of equal length")
    if p_arr.size == 0:
        raise StatisticsError("empty support")
    if np.any(p_arr < 0) or np.any(q_arr < 0):
        raise StatisticsError("probabilities/counts must be non-negative")
    if smoothing < 0:
        raise StatisticsError("smoothing must be non-negative")
    if smoothing > 0:
        p_arr = p_arr + smoothing
        q_arr = q_arr + smoothing
    return (
        normalize_counts(p_arr, "p"),
        normalize_counts(q_arr, "q"),
    )


def kl_divergence(
    p: "np.ndarray | list[float]",
    q: "np.ndarray | list[float]",
    *,
    smoothing: float = 1e-9,
) -> float:
    """``KL(P || Q)`` in nats, with additive smoothing (default tiny).

    Raises when ``smoothing == 0`` and ``Q`` has a zero where ``P`` does
    not (the divergence is infinite) — exactly the failure mode the paper
    cites for sparse query distributions.
    """
    p_arr, q_arr = _prepare(p, q, smoothing)
    mask = p_arr > 0
    if np.any(q_arr[mask] == 0):
        raise StatisticsError(
            "KL divergence undefined: q has zero mass where p is positive "
            "(use smoothing > 0)"
        )
    return float(np.sum(p_arr[mask] * np.log(p_arr[mask] / q_arr[mask])))


def js_divergence(
    p: "np.ndarray | list[float]",
    q: "np.ndarray | list[float]",
    *,
    smoothing: float = 0.0,
) -> float:
    """Jensen-Shannon divergence (symmetric, bounded by ``log 2``)."""
    p_arr, q_arr = _prepare(p, q, smoothing)
    mixture = 0.5 * (p_arr + q_arr)

    def _kl(a: np.ndarray, b: np.ndarray) -> float:
        mask = a > 0
        return float(np.sum(a[mask] * np.log(a[mask] / b[mask])))

    return 0.5 * _kl(p_arr, mixture) + 0.5 * _kl(q_arr, mixture)
