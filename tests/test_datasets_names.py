"""Unit tests for the name pools."""

import pytest

from repro.datasets import names


class TestPools:
    def test_pools_non_trivial(self):
        assert len(names.FIRST_NAMES) >= 100
        assert len(names.LAST_NAMES) >= 100
        assert len(names.COUNTRIES) >= 20
        assert len(names.CITIES) >= 40

    def test_pools_unique(self):
        for pool in (
            names.FIRST_NAMES,
            names.LAST_NAMES,
            names.COUNTRIES,
            names.CITIES,
            names.PRIZES,
        ):
            assert len(pool) == len(set(pool))

    def test_profession_prize_pools_subset_of_prizes(self):
        for pool in (
            names.FILM_PRIZES,
            names.MUSIC_PRIZES,
            names.LITERATURE_PRIZES,
            names.SCIENCE_PRIZES,
            names.POLITICS_PRIZES,
            names.SPORTS_PRIZES,
        ):
            assert set(pool) <= set(names.PRIZES)

    def test_no_whitespace_in_entity_names(self):
        for pool in (names.COUNTRIES, names.CITIES, names.PRIZES, names.PARTIES):
            for name in pool:
                assert " " not in name, name


class TestNamePool:
    def test_draws_unique(self):
        pool = names.NamePool(("a", "b"), rng=1)
        drawn = {pool.draw() for _ in range(10)}
        assert len(drawn) == 10  # falls back to suffixed names

    def test_reserved_names_skipped(self):
        pool = names.NamePool(("a", "b"), rng=1)
        pool.reserve("a")
        pool.reserve("b")
        drawn = pool.draw()
        assert drawn not in ("a", "b")

    def test_empty_base_rejected(self):
        with pytest.raises(ValueError):
            names.NamePool((), rng=1)

    def test_draw_many(self):
        pool = names.NamePool(tuple("abcdef"), rng=1)
        assert len(pool.draw_many(4)) == 4


class TestPersonNamePool:
    def test_unique_and_well_formed(self):
        pool = names.PersonNamePool(rng=3)
        drawn = pool.draw_many(500)
        assert len(set(drawn)) == 500
        for name in drawn[:20]:
            assert "_" in name

    def test_reserve(self):
        pool = names.PersonNamePool(rng=3)
        pool.reserve("Aaron_Abel")
        assert "Aaron_Abel" not in pool.draw_many(2000)


class TestCompoundName:
    def test_from_pools(self):
        import random

        name = names.compound_name(random.Random(1), ("A",), ("B",))
        assert name == "A_B"
