"""Unit tests for the future-work extensions (composite patterns,
attribute correlations)."""

import pytest

from repro.core.extensions import (
    CompositeCharacteristicFinder,
    CompositeLabel,
    CorrelationFinder,
    build_composite_distributions,
    composite_cardinality_counts,
    composite_instance_counts,
    existence_cells,
)
from repro.core.distributions import NONE_INSTANCE
from repro.graph.builder import GraphBuilder


@pytest.fixture()
def graph():
    builder = GraphBuilder()
    # 10 scientists who graduated from universities located in two countries;
    # the two query scientists both studied in Ruritania (rare).
    for i in range(10):
        name = f"sci{i}"
        builder.typed(name, "scientist")
        uni = f"uni{i % 5}"
        builder.fact(name, "graduatedFrom", uni)
        builder.fact(uni, "isLocatedIn", "Freedonia")
        builder.fact(name, "hasWonPrize", "Medal")
        if i % 2 == 0:
            builder.fact(name, "owns", f"lab{i}")
    for name in ("alpha", "beta"):
        builder.typed(name, "scientist")
        builder.fact(name, "graduatedFrom", "uni_r")
        builder.fact("uni_r", "isLocatedIn", "Ruritania")
        builder.fact(name, "hasWonPrize", "Medal")
        builder.fact(name, "owns", f"lab_{name}")
    return builder.build()


class TestCompositeCounts:
    def test_two_hop_instances(self, graph):
        pattern = CompositeLabel("graduatedFrom", "isLocatedIn")
        counts = composite_instance_counts(graph, [graph.node_id("alpha")], pattern)
        assert counts == {"Ruritania": 1}

    def test_none_bucket(self, graph):
        pattern = CompositeLabel("owns", "isLocatedIn")
        counts = composite_instance_counts(graph, [graph.node_id("alpha")], pattern)
        assert counts == {NONE_INSTANCE: 1}

    def test_cardinalities_count_paths(self, graph):
        pattern = CompositeLabel("graduatedFrom", "isLocatedIn")
        counts = composite_cardinality_counts(
            graph, [graph.node_id("alpha"), graph.node_id("sci0")], pattern
        )
        assert counts == {1: 2}

    def test_build_distributions_aligned(self, graph):
        pattern = CompositeLabel("graduatedFrom", "isLocatedIn")
        dists = build_composite_distributions(
            graph,
            [graph.node_id("alpha"), graph.node_id("beta")],
            [graph.node_id(f"sci{i}") for i in range(10)],
            pattern,
        )
        assert dists.label == "graduatedFrom->isLocatedIn"
        assert len(dists.inst_query) == len(dists.inst_context)
        assert dists.query_size == 2


class TestCompositeFinder:
    def test_candidate_patterns_exclude_bounce_back(self, graph):
        finder = CompositeCharacteristicFinder(graph, rng=1)
        patterns = finder.candidate_patterns(
            [graph.node_id("alpha"), graph.node_id("beta")]
        )
        assert patterns
        for pattern in patterns:
            assert pattern.second != f"{pattern.first}_inv"

    def test_max_patterns_cap(self, graph):
        finder = CompositeCharacteristicFinder(graph, max_patterns=2, rng=1)
        assert len(finder.candidate_patterns([graph.node_id("alpha")])) <= 2

    def test_finds_foreign_university_country(self, graph):
        finder = CompositeCharacteristicFinder(graph, rng=1)
        query = [graph.node_id("alpha"), graph.node_id("beta")]
        context = [graph.node_id(f"sci{i}") for i in range(10)]
        results = finder.run(query, context)
        by_label = {r.label: r for r in results}
        grad_country = by_label["graduatedFrom->isLocatedIn"]
        assert grad_country.notable, grad_country
        assert results == sorted(results, key=lambda r: (-r.score, r.label))


class TestExistenceCells:
    def test_cells_sum_to_population(self, graph):
        cells = existence_cells(
            graph,
            [graph.node_id(f"sci{i}") for i in range(10)],
            "hasWonPrize",
            "owns",
        )
        assert sum(cells) == 10
        both, only_first, only_second, neither = cells
        assert both == 5  # even-indexed scientists own labs, all win medals
        assert only_first == 5
        assert only_second == 0 and neither == 0


class TestCorrelationFinder:
    def test_pairs_exclude_inverses(self, graph):
        finder = CorrelationFinder(graph, rng=1)
        pairs = finder.candidate_pairs([graph.node_id("alpha")])
        for first, second in pairs:
            assert not first.endswith("_inv")
            assert not second.endswith("_inv")

    def test_correlated_query_flagged(self, graph):
        # Query: both members win AND own (joint rate 1.0) vs context 0.5.
        finder = CorrelationFinder(graph, rng=1)
        query = [graph.node_id("alpha"), graph.node_id("beta")]
        context = [graph.node_id(f"sci{i}") for i in range(10)]
        result = finder.test_pair(query, context, "hasWonPrize", "owns")
        assert result.query_joint_rate() == 1.0
        assert result.context_joint_rate() == pytest.approx(0.5)
        assert 0.0 <= result.p_value <= 1.0

    def test_run_sorted_by_p(self, graph):
        finder = CorrelationFinder(graph, rng=1)
        query = [graph.node_id("alpha"), graph.node_id("beta")]
        context = [graph.node_id(f"sci{i}") for i in range(10)]
        results = finder.run(query, context)
        ps = [r.p_value for r in results]
        assert ps == sorted(ps)

    def test_alpha_validation(self, graph):
        with pytest.raises(ValueError):
            CorrelationFinder(graph, alpha=0.0)

    def test_labels_render(self, graph):
        finder = CorrelationFinder(graph, rng=1)
        result = finder.test_pair(
            [graph.node_id("alpha")],
            [graph.node_id("sci0")],
            "hasWonPrize",
            "owns",
        )
        assert result.label == "hasWonPrize & owns"
