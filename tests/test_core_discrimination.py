"""Unit tests for the discrimination functions delta."""

import numpy as np
import pytest

from repro.core.discrimination import (
    ChiSquareDiscriminator,
    EMDDiscriminator,
    KLDiscriminator,
    MultinomialDiscriminator,
)
from repro.core.distributions import CharacteristicDistributions


def make_dists(
    label="attr",
    inst_q=(1, 0),
    inst_c=(5, 5),
    support=("v1", "v2"),
    card_q=(1, 1),
    card_c=(5, 5),
):
    card_support = tuple(range(len(card_q)))
    return CharacteristicDistributions(
        label=label,
        instance_support=tuple(support),
        inst_query=np.array(inst_q),
        inst_context=np.array(inst_c),
        cardinality_support=card_support,
        card_query=np.array(card_q),
        card_context=np.array(card_c),
    )


class TestMultinomialDiscriminator:
    def test_similar_distributions_not_notable(self):
        dists = make_dists(inst_q=(2, 2), inst_c=(50, 50), card_q=(2, 2), card_c=(50, 50))
        result = MultinomialDiscriminator(rng=1).score(dists)
        assert not result.notable
        assert result.score == 0.0

    def test_deviating_instance_notable(self):
        dists = make_dists(
            inst_q=(6, 0), inst_c=(5, 95), card_q=(3, 3), card_c=(50, 50)
        )
        result = MultinomialDiscriminator(rng=1).score(dists)
        assert result.notable
        assert result.channel == "instance"
        assert result.inst_p_value <= 0.05

    def test_deviating_cardinality_notable(self):
        dists = make_dists(
            inst_q=(3, 3), inst_c=(50, 50), card_q=(6, 0), card_c=(5, 95)
        )
        result = MultinomialDiscriminator(rng=1).score(dists)
        assert result.notable
        assert result.channel == "cardinality"

    def test_score_is_max_of_channels(self):
        dists = make_dists(
            inst_q=(6, 0), inst_c=(5, 95), card_q=(6, 0), card_c=(5, 95)
        )
        result = MultinomialDiscriminator(rng=1).score(dists)
        assert result.score == pytest.approx(
            max(result.inst_score, result.card_score)
        )

    def test_min_p_value(self):
        dists = make_dists()
        result = MultinomialDiscriminator(rng=1).score(dists)
        assert result.min_p_value == min(result.inst_p_value, result.card_p_value)

    def test_uninformative_context_skipped(self):
        # All context instance values are singletons: the query having its
        # own values is expected (the authors test case of the paper).
        dists = make_dists(
            support=("q1", "q2", "c1", "c2", "c3"),
            inst_q=(1, 1, 0, 0, 0),
            inst_c=(0, 0, 1, 1, 1),
            card_q=(0, 2),
            card_c=(0, 30),
        )
        result = MultinomialDiscriminator(rng=1).score(dists)
        assert result.inst_p_value == 1.0
        assert not result.notable

    def test_unseen_value_smoothing_avoids_p_zero(self):
        dists = make_dists(
            support=("None", "context_co", "query_only"),
            inst_q=(4, 0, 1),
            inst_c=(94, 6, 0),
            card_q=(4, 1),
            card_c=(94, 6),
        )
        result = MultinomialDiscriminator(rng=1).score(dists)
        assert result.inst_p_value > 0.0

    def test_zero_pseudocount_restores_hard_zero(self):
        dists = make_dists(
            support=("None", "query_only"),
            inst_q=(4, 1),
            inst_c=(100, 0),
            card_q=(4, 1),
            card_c=(94, 6),
        )
        result = MultinomialDiscriminator(rng=1, unseen_pseudocount=0.0).score(dists)
        assert result.inst_p_value == 0.0

    def test_empty_context_channel_degenerate(self):
        dists = make_dists(inst_q=(1, 1), inst_c=(0, 0))
        result = MultinomialDiscriminator(rng=1).score(dists)
        assert result.inst_p_value == 0.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            MultinomialDiscriminator(alpha=0.0)
        with pytest.raises(ValueError):
            MultinomialDiscriminator(alpha=1.0)
        with pytest.raises(ValueError):
            MultinomialDiscriminator(unseen_pseudocount=-1)


class TestKLDiscriminator:
    def test_zero_for_identical(self):
        dists = make_dists(inst_q=(5, 5), inst_c=(50, 50), card_q=(5, 5), card_c=(50, 50))
        result = KLDiscriminator(threshold=0.0).score(dists)
        assert result.score == pytest.approx(0.0, abs=1e-6)

    def test_positive_for_different(self):
        dists = make_dists(inst_q=(6, 0), inst_c=(5, 95))
        result = KLDiscriminator().score(dists)
        assert result.score > 0

    def test_threshold_zeroes_small_scores(self):
        dists = make_dists(inst_q=(5, 5), inst_c=(49, 51), card_q=(5, 5), card_c=(49, 51))
        result = KLDiscriminator(threshold=10.0).score(dists)
        assert result.score == 0.0
        assert not result.notable

    def test_requires_smoothing(self):
        with pytest.raises(ValueError):
            KLDiscriminator(smoothing=0.0)


class TestEMDDiscriminator:
    def test_zero_for_identical(self):
        dists = make_dists(inst_q=(5, 5), inst_c=(50, 50), card_q=(5, 5), card_c=(50, 50))
        assert EMDDiscriminator().score(dists).score == pytest.approx(0.0)

    def test_cardinality_uses_positions(self):
        near = make_dists(card_q=(0, 10, 0), card_c=(10, 0, 0), inst_q=(1, 1), inst_c=(1, 1))
        far = make_dists(card_q=(0, 0, 10), card_c=(10, 0, 0), inst_q=(1, 1), inst_c=(1, 1))
        assert EMDDiscriminator().score(far).card_score > EMDDiscriminator().score(
            near
        ).card_score

    def test_empty_channels_zero(self):
        dists = make_dists(inst_q=(0, 0), inst_c=(0, 0), card_q=(0, 0), card_c=(0, 0))
        assert EMDDiscriminator().score(dists).score == 0.0


class TestChiSquareDiscriminator:
    def test_similar_not_notable(self):
        dists = make_dists(
            inst_q=(20, 20), inst_c=(50, 50), card_q=(20, 20), card_c=(50, 50)
        )
        assert not ChiSquareDiscriminator().score(dists).notable

    def test_gross_difference_notable(self):
        dists = make_dists(
            inst_q=(100, 0), inst_c=(50, 50), card_q=(1, 1), card_c=(50, 50)
        )
        assert ChiSquareDiscriminator().score(dists).notable

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            ChiSquareDiscriminator(alpha=2.0)
