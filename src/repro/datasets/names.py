"""Name pools for the synthetic knowledge-graph generators.

The generators draw person, place and work names from these pools; pools
are large enough that the default dataset scales never exhaust them (the
generator falls back to numbered suffixes if they do). Real-world country,
city, prize and genre names are used so generated graphs read naturally in
examples and reports.
"""

from __future__ import annotations

from repro.util.rng import RandomSource, ensure_rng

FIRST_NAMES: tuple[str, ...] = (
    "Aaron", "Ada", "Adrian", "Agnes", "Alan", "Albert", "Alice", "Amara",
    "Amelia", "Andre", "Anita", "Anton", "Ariel", "Arthur", "Astrid", "Aurora",
    "Beatrice", "Benjamin", "Bianca", "Boris", "Bruno", "Camille", "Carl",
    "Carmen", "Cecilia", "Cedric", "Chloe", "Clara", "Claude", "Clemens",
    "Dalia", "Damian", "Daniela", "Dario", "Dexter", "Diana", "Dimitri",
    "Dora", "Edgar", "Edith", "Eduardo", "Elena", "Elias", "Elisa", "Emil",
    "Emma", "Enzo", "Erik", "Esther", "Eva", "Fabian", "Felicia", "Felix",
    "Fiona", "Florian", "Frances", "Frida", "Gabriel", "Gemma", "Georg",
    "Gina", "Giulia", "Greta", "Gustav", "Hanna", "Harold", "Hazel", "Hector",
    "Helena", "Henrik", "Hugo", "Ida", "Igor", "Ines", "Ingrid", "Irene",
    "Isaac", "Isabella", "Ivan", "Jasmine", "Jonas", "Jorge", "Josef",
    "Julia", "Kai", "Karin", "Kasper", "Katarina", "Klara", "Lars", "Laura",
    "Leander", "Leonie", "Lea", "Liam", "Lila", "Linus", "Lorenzo", "Lucia",
    "Ludwig", "Magda", "Marcel", "Margot", "Marius", "Marta", "Matthias",
    "Maya", "Mikhail", "Milan", "Mira", "Moritz", "Nadia", "Nathan", "Nico",
    "Nina", "Noah", "Nora", "Oskar", "Otto", "Paula", "Pavel", "Petra",
    "Philipp", "Quentin", "Rafael", "Rebecca", "Renata", "Ricardo", "Rita",
    "Robert", "Rosa", "Ruben", "Ruth", "Sabine", "Samuel", "Sandra", "Sara",
    "Sebastian", "Selma", "Sergei", "Silas", "Simone", "Sofia", "Stefan",
    "Stella", "Sven", "Tamara", "Teresa", "Theo", "Tobias", "Tristan", "Ulrik",
    "Uma", "Valentin", "Vera", "Viktor", "Viola", "Walter", "Wanda", "Wilhelm",
    "Xenia", "Yara", "Yuri", "Zelda", "Zoran",
)

LAST_NAMES: tuple[str, ...] = (
    "Abel", "Acker", "Adler", "Albrecht", "Almeida", "Andersen", "Arnold",
    "Baker", "Baranov", "Barnes", "Bauer", "Becker", "Bellini", "Berger",
    "Bianchi", "Bishop", "Blanc", "Bloom", "Bonnet", "Borg", "Brandt",
    "Bridges", "Castellano", "Chevalier", "Clarke", "Conti", "Costa", "Craft",
    "Cruz", "Dahl", "Dalton", "Davenport", "Delacroix", "Dietrich", "Draper",
    "Dubois", "Duran", "Eberhart", "Egorov", "Ellison", "Engel", "Falk",
    "Farrell", "Feld", "Ferrari", "Fischer", "Fleming", "Fontaine", "Forster",
    "Frank", "Frost", "Gallo", "Garnier", "Gerber", "Giordano", "Glass",
    "Graf", "Greco", "Grimm", "Gruber", "Haas", "Hale", "Hansen", "Hartman",
    "Hayes", "Heller", "Hoffman", "Holm", "Horvat", "Hunter", "Ivanov",
    "Jansen", "Jensen", "Kaiser", "Kane", "Keller", "Kessler", "Klein",
    "Koch", "Kovacs", "Krause", "Kron", "Lang", "Larsen", "Laurent",
    "Lehmann", "Lindgren", "Lombardi", "Lorenz", "Lund", "Maier", "Marchetti",
    "Marin", "Martel", "Mercer", "Meyer", "Moreau", "Moretti", "Nagel",
    "Navarro", "Nielsen", "Novak", "Nowak", "Olsen", "Orlov", "Pape",
    "Pereira", "Petrov", "Pfeiffer", "Poole", "Popov", "Porter", "Quinn",
    "Rader", "Ramos", "Rask", "Reed", "Reinhardt", "Ricci", "Richter",
    "Rivera", "Romano", "Rossi", "Roth", "Russo", "Sanders", "Santoro",
    "Sauer", "Schmidt", "Schneider", "Schreiber", "Schultz", "Seidel",
    "Serrano", "Silva", "Simons", "Sokolov", "Sorensen", "Stein", "Stern",
    "Strand", "Sturm", "Tanaka", "Thaler", "Thorne", "Torres", "Unger",
    "Vance", "Varga", "Vasquez", "Vidal", "Vogel", "Volkov", "Wagner",
    "Weber", "Weiss", "Wells", "Werner", "West", "Winter", "Wolf", "Wright",
    "Zeller", "Ziegler", "Zimmermann", "Zuniga",
)

COUNTRIES: tuple[str, ...] = (
    "Germany", "United_States", "Russia", "United_Kingdom", "France", "China",
    "Italy", "Spain", "Brazil", "Canada", "Australia", "Japan", "India",
    "Mexico", "Sweden", "Norway", "Denmark", "Poland", "Austria",
    "Switzerland", "Netherlands", "Belgium", "Portugal", "Greece", "Turkey",
    "Argentina", "South_Africa", "Egypt", "South_Korea", "Ireland",
)

CITIES: tuple[str, ...] = (
    "Berlin", "Hamburg", "Munich", "Washington", "Honolulu", "Chicago",
    "New_York", "Los_Angeles", "Moscow", "Saint_Petersburg", "London",
    "Manchester", "Paris", "Rouen", "Lyon", "Beijing", "Shanghai", "Rome",
    "Milan", "Madrid", "Barcelona", "Rio_de_Janeiro", "Toronto", "Sydney",
    "Tokyo", "Mumbai", "Mexico_City", "Stockholm", "Oslo", "Copenhagen",
    "Warsaw", "Vienna", "Zurich", "Amsterdam", "Brussels", "Lisbon",
    "Athens", "Istanbul", "Buenos_Aires", "Cape_Town", "Cairo", "Seoul",
    "Dublin", "Springfield", "Shawnee", "Edinburgh", "Naples", "Turin",
    "Frankfurt", "Leipzig", "Dresden", "Marseille", "Bordeaux", "Valencia",
    "Porto", "Krakow", "Geneva", "Rotterdam", "Antwerp", "Gothenburg",
)

PARTIES: tuple[str, ...] = (
    "Civic_Union", "Progress_Party", "Liberty_Alliance", "Green_Front",
    "Social_Forum", "National_Assembly_Party", "Workers_League",
    "Reform_Movement", "Heritage_Party", "Unity_Coalition",
)

UNIVERSITIES: tuple[str, ...] = (
    "University_of_Leipzig", "Harvard_University", "Columbia_University",
    "Leningrad_State_University", "Oxford_University", "Tsinghua_University",
    "Sorbonne", "Humboldt_University", "University_of_Bologna", "ETH_Zurich",
    "University_of_Vienna", "Uppsala_University", "Jagiellonian_University",
    "University_of_Copenhagen", "Trinity_College_Dublin", "Kyoto_University",
)

FIELDS_OF_STUDY: tuple[str, ...] = (
    "Law", "Physics", "Political_Science", "Economics", "History",
    "Philosophy", "Chemical_Engineering", "Drama", "Literature", "Medicine",
    "Mathematics", "Sociology", "Film_Studies", "Music_Theory",
    "Computer_Science", "Biology",
)

PRIZES: tuple[str, ...] = (
    "Academy_Award", "Golden_Globe", "BAFTA_Award", "Screen_Actors_Guild_Award",
    "Palme_dOr", "Nobel_Peace_Prize", "Charlemagne_Prize", "Grammy_Award",
    "Emmy_Award", "Hugo_Award", "Nebula_Award", "Booker_Prize",
    "Cesar_Award", "Goya_Award", "Saturn_Award", "Critics_Choice_Award",
    "Ballon_dOr", "Olympic_Gold_Medal", "Nobel_Prize_in_Physics",
    "Fields_Medal", "Turing_Award",
)

#: Prizes plausible per profession — people win domain prizes, which keeps
#: the query's prize values inside the context's support (Figure 8 relies
#: on query and context sharing the film-award vocabulary).
FILM_PRIZES: tuple[str, ...] = (
    "Academy_Award", "Golden_Globe", "BAFTA_Award",
    "Screen_Actors_Guild_Award", "Palme_dOr", "Cesar_Award", "Goya_Award",
    "Saturn_Award", "Critics_Choice_Award",
)
MUSIC_PRIZES: tuple[str, ...] = ("Grammy_Award", "Emmy_Award", "Critics_Choice_Award")
LITERATURE_PRIZES: tuple[str, ...] = ("Hugo_Award", "Nebula_Award", "Booker_Prize")
SCIENCE_PRIZES: tuple[str, ...] = (
    "Nobel_Prize_in_Physics", "Fields_Medal", "Turing_Award",
)
POLITICS_PRIZES: tuple[str, ...] = ("Nobel_Peace_Prize", "Charlemagne_Prize")
SPORTS_PRIZES: tuple[str, ...] = ("Ballon_dOr", "Olympic_Gold_Medal")

MOVIE_GENRES: tuple[str, ...] = (
    "Drama", "Comedy", "Thriller", "Action", "Romance", "Science_Fiction",
    "Crime", "Horror", "Documentary", "Animation", "Western", "Fantasy",
    "Mystery", "Adventure", "Biography", "Musical",
)

MOVIE_TITLE_HEADS: tuple[str, ...] = (
    "Midnight", "Silent", "Broken", "Golden", "Crimson", "Hidden", "Last",
    "Distant", "Burning", "Frozen", "Electric", "Silver", "Savage", "Gentle",
    "Hollow", "Endless", "Falling", "Rising", "Forgotten", "Restless",
    "Velvet", "Scarlet", "Paper", "Iron", "Glass", "Neon", "Wild", "Quiet",
)

MOVIE_TITLE_TAILS: tuple[str, ...] = (
    "Horizon", "River", "Empire", "Letters", "Harvest", "Station", "Garden",
    "Symphony", "Protocol", "Summer", "Winter", "Crossing", "Voyage",
    "Shadows", "Lights", "Streets", "Promise", "Reckoning", "Kingdom",
    "Monument", "Passage", "Mirage", "Carnival", "Frontier", "Harbor",
    "Orchard", "Labyrinth", "Meridian",
)

BOOK_TITLE_HEADS: tuple[str, ...] = (
    "The_Atlas_of", "A_History_of", "The_Book_of", "Chronicles_of",
    "The_Garden_of", "Letters_from", "The_Silence_of", "Tales_of",
    "The_Weight_of", "Songs_of", "The_Colour_of", "Maps_of", "The_Theory_of",
    "Shadows_over", "The_Library_of", "Notes_on",
)

BOOK_TITLE_TAILS: tuple[str, ...] = (
    "Yesterday", "the_North", "Small_Things", "Glass_Cities", "the_Deep",
    "Lost_Rivers", "the_Moon", "Forgotten_Roads", "Amber", "the_Harbor",
    "Winter_Light", "the_Machine", "Falling_Stars", "the_Old_World",
    "Paper_Birds", "Distant_Shores",
)

BAND_AND_ALBUM_WORDS: tuple[str, ...] = (
    "Echo", "Aurora", "Monolith", "Cascade", "Ember", "Mosaic", "Drift",
    "Pulse", "Lantern", "Meridian", "Solstice", "Tides", "Prism", "Quartz",
    "Nomad", "Vega", "Harbor", "Atlas", "Cinder", "Willow",
)

COMPANY_SUFFIXES: tuple[str, ...] = (
    "Entertainment", "Pictures", "Productions", "Studios", "Films", "Media",
    "Works", "Collective",
)

SPORTS_TEAMS: tuple[str, ...] = (
    "Harbor_City_FC", "Northern_Wolves", "Riverside_United", "Iron_Eagles",
    "Coastal_Storm", "Mountain_Lions", "Capital_Rangers", "Valley_Hawks",
    "Old_Town_Athletic", "Southern_Comets", "Lakeside_Rovers", "Union_Bears",
)


class NamePool:
    """Draws unique names from a base pool, suffixing when exhausted.

    >>> pool = NamePool(("A", "B"), rng=0)
    >>> drawn = {pool.draw(), pool.draw(), pool.draw()}
    >>> len(drawn)
    3
    """

    def __init__(self, base: tuple[str, ...], rng: RandomSource = None) -> None:
        if not base:
            raise ValueError("base pool must not be empty")
        self._rng = ensure_rng(rng)
        self._remaining = list(base)
        self._rng.shuffle(self._remaining)
        self._base = base
        self._suffix = 1
        self._used: set[str] = set()

    def draw(self) -> str:
        while True:
            if self._remaining:
                candidate = self._remaining.pop()
            else:
                candidate = (
                    f"{self._base[self._rng.randrange(len(self._base))]}"
                    f"_{self._suffix}"
                )
                self._suffix += 1
            if candidate not in self._used:
                self._used.add(candidate)
                return candidate

    def reserve(self, name: str) -> None:
        """Mark ``name`` as used (seed entities claim their names)."""
        self._used.add(name)

    def draw_many(self, count: int) -> list[str]:
        return [self.draw() for _ in range(count)]


class PersonNamePool:
    """Generates unique ``First_Last`` person names."""

    def __init__(self, rng: RandomSource = None) -> None:
        self._rng = ensure_rng(rng)
        self._used: set[str] = set()

    def draw(self) -> str:
        while True:
            first = FIRST_NAMES[self._rng.randrange(len(FIRST_NAMES))]
            last = LAST_NAMES[self._rng.randrange(len(LAST_NAMES))]
            candidate = f"{first}_{last}"
            if candidate in self._used:
                candidate = f"{candidate}_{self._rng.randrange(10, 99)}"
                if candidate in self._used:
                    continue
            self._used.add(candidate)
            return candidate

    def reserve(self, name: str) -> None:
        self._used.add(name)

    def draw_many(self, count: int) -> list[str]:
        return [self.draw() for _ in range(count)]


def compound_name(rng, heads: tuple[str, ...], tails: tuple[str, ...]) -> str:
    """Draw a two-part name such as ``Midnight_Horizon``."""
    return f"{heads[rng.randrange(len(heads))]}_{tails[rng.randrange(len(tails))]}"
