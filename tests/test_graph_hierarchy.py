"""Unit tests for the type hierarchy."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.hierarchy import TypeHierarchy


@pytest.fixture()
def graph():
    return (
        GraphBuilder()
        .subclass("politician", "person")
        .subclass("actor", "person")
        .subclass("person", "entity")
        .subclass("country", "location")
        .subclass("location", "entity")
        .typed("merkel", "politician")
        .typed("pitt", "actor")
        .typed("someone", "person")
        .typed("germany", "country")
        .build()
    )


@pytest.fixture()
def hierarchy(graph):
    return TypeHierarchy(graph)


class TestStructure:
    def test_supertypes_direct(self, hierarchy):
        assert hierarchy.supertypes("politician") == {"person"}

    def test_subtypes_direct(self, hierarchy):
        assert hierarchy.subtypes("person") == {"politician", "actor"}

    def test_ancestors_transitive(self, hierarchy):
        assert hierarchy.ancestors("politician") == {"person", "entity"}

    def test_descendants_transitive(self, hierarchy):
        assert hierarchy.descendants("entity") == {
            "person",
            "politician",
            "actor",
            "location",
            "country",
        }

    def test_is_subtype(self, hierarchy):
        assert hierarchy.is_subtype("politician", "person")
        assert hierarchy.is_subtype("politician", "entity")
        assert hierarchy.is_subtype("person", "person")
        assert not hierarchy.is_subtype("person", "politician")
        assert not hierarchy.is_subtype("country", "person")

    def test_cycle_safety(self):
        graph = (
            GraphBuilder()
            .subclass("a", "b")
            .subclass("b", "a")  # a cycle must not hang the closure
            .build()
        )
        hierarchy = TypeHierarchy(graph)
        assert "b" in hierarchy.ancestors("a")
        assert "a" in hierarchy.ancestors("b")


class TestInstances:
    def test_instances_direct(self, graph, hierarchy):
        instances = hierarchy.instances("politician", transitive=False)
        assert {graph.node_name(i) for i in instances} == {"merkel"}

    def test_instances_transitive(self, graph, hierarchy):
        instances = hierarchy.instances("person", transitive=True)
        assert {graph.node_name(i) for i in instances} == {
            "merkel",
            "pitt",
            "someone",
        }

    def test_types_of_with_supertypes(self, hierarchy):
        assert hierarchy.types_of("merkel", transitive=True) == {
            "politician",
            "person",
            "entity",
        }

    def test_shared_types(self, graph, hierarchy):
        shared = hierarchy.shared_types(["merkel", "pitt"])
        assert shared == {"person", "entity"}

    def test_shared_types_empty_on_disjoint(self, graph, hierarchy):
        assert hierarchy.shared_types(["merkel", "germany"]) == {"entity"}

    def test_cache_invalidation_on_mutation(self, graph):
        hierarchy = TypeHierarchy(graph)
        assert hierarchy.ancestors("politician") == {"person", "entity"}
        graph.add_edge("entity", "subclassOf", "thing")
        assert "thing" in hierarchy.ancestors("politician")
