"""Synthetic YAGO — the stand-in for the YAGO 2.5 core-facts dump.

The real evaluation graph (3.3M nodes / 27M edges) is not available
offline; this generator produces a structurally faithful, laptop-scale
graph:

* the same relation vocabulary fragment (``actedIn``, ``created``,
  ``hasWonPrize``, ``hasChild``, ``studied``, ``owns``, ``influences``,
  ...) with a type hierarchy;
* a heterogeneous person population across seven professions, each with
  distinct attribute distributions (:mod:`repro.datasets.schema`);
* the curated Table-1 entities with their real-world facts
  (:mod:`repro.datasets.seeds`), so the paper's test cases reproduce;
* hub structure: popular movies / cities / prizes attract many edges,
  mimicking YAGO's degree skew.

Determinism: a given ``(scale, seed)`` always yields the identical graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import names as pools
from repro.datasets import schema as s
from repro.datasets.seeds import (
    SEED_ALBUMS,
    SEED_BOOKS,
    SEED_COMPANIES,
    SEED_MOVIES,
    SEED_PEOPLE,
    SeedPerson,
)
from repro.graph.builder import GraphBuilder
from repro.graph.model import KnowledgeGraph
from repro.util.rng import derive_rng, ensure_rng


def _weighted_prize_sample(rng, prize_pool: tuple[str, ...], count: int) -> list[str]:
    """Sample ``count`` distinct prizes, rank-weighted toward the pool front.

    Prize pools list the famous awards first (Academy Award before Saturn
    Award); real people overwhelmingly win the famous ones, and Figure 8's
    "not notable" verdict relies on query and context sharing that skew.
    """
    weights = [1.0 / (rank + 1) ** 1.2 for rank in range(len(prize_pool))]
    chosen: list[str] = []
    candidates = list(prize_pool)
    current = list(weights)
    for _ in range(min(count, len(candidates))):
        pick = rng.choices(range(len(candidates)), weights=current, k=1)[0]
        chosen.append(candidates.pop(pick))
        current.pop(pick)
    return chosen


@dataclass(frozen=True)
class YagoConfig:
    """Size knobs of the synthetic YAGO (all scaled by ``scale``)."""

    scale: float = 1.0
    people: int = 450
    movies: int = 90
    seed: int = 7
    include_seed_entities: bool = True

    def scaled(self, base: int) -> int:
        return max(1, int(base * self.scale))


class SyntheticYago:
    """Builder for the synthetic YAGO knowledge graph."""

    def __init__(
        self,
        *,
        scale: float = 1.0,
        seed: int = 7,
        include_seed_entities: bool = True,
    ) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.config = YagoConfig(
            scale=scale, seed=seed, include_seed_entities=include_seed_entities
        )
        self._rng = ensure_rng(seed)
        self._seen_titles: set[str] = set()

    # -- public entry -------------------------------------------------------

    def build(self) -> KnowledgeGraph:
        builder = GraphBuilder(f"synthetic-yago(scale={self.config.scale})")
        rng = self._rng

        self._build_hierarchy(builder)
        city_country = self._build_places(builder)
        self._build_values(builder)
        movies = self._build_movies(builder, derive_rng(rng, "movies"))

        person_pool = pools.PersonNamePool(derive_rng(rng, "person-names"))
        company_pool = pools.NamePool(
            pools.BAND_AND_ALBUM_WORDS, derive_rng(rng, "companies")
        )
        title_rng = derive_rng(rng, "titles")

        for person in SEED_PEOPLE if self.config.include_seed_entities else ():
            person_pool.reserve(person.name)

        people_by_profession = self._build_population(
            builder,
            derive_rng(rng, "population"),
            person_pool,
            company_pool,
            title_rng,
            movies,
            city_country,
        )

        if self.config.include_seed_entities:
            self._apply_seed_people(builder, city_country)

        self._assign_country_leaders(
            builder, people_by_profession.get(s.POLITICIAN, []), derive_rng(rng, "leaders")
        )
        return builder.build()

    # -- schema -------------------------------------------------------------

    def _build_hierarchy(self, builder: GraphBuilder) -> None:
        for child, parent in s.TYPE_HIERARCHY.items():
            builder.subclass(child, parent)

    def _build_places(self, builder: GraphBuilder) -> dict[str, str]:
        """Create countries and cities; return ``{city: country}``."""
        for country in pools.COUNTRIES:
            builder.typed(country, s.COUNTRY)
        city_country: dict[str, str] = {}
        for index, city in enumerate(pools.CITIES):
            country = pools.COUNTRIES[index % len(pools.COUNTRIES)]
            builder.typed(city, s.CITY)
            builder.fact(city, s.IS_LOCATED_IN, country)
            city_country[city] = country
        return city_country

    def _build_values(self, builder: GraphBuilder) -> None:
        for gender in (s.MALE, s.FEMALE):
            builder.typed(gender, s.GENDER_VALUE)
        for field in pools.FIELDS_OF_STUDY:
            builder.typed(field, s.ACADEMIC_FIELD)
        for prize in pools.PRIZES:
            builder.typed(prize, s.AWARD)
        for party in pools.PARTIES:
            builder.typed(party, s.PARTY)
        for university in pools.UNIVERSITIES:
            builder.typed(university, s.UNIVERSITY)
        for team in pools.SPORTS_TEAMS:
            builder.typed(team, s.SPORTS_TEAM)
        for genre in pools.MOVIE_GENRES:
            builder.typed(genre, "movie_genre")
        builder.typed("Doctorate", "academic_degree")
        for year in range(1950, 2021, 5):
            builder.typed(str(year), s.YEAR)

    def _build_movies(self, builder: GraphBuilder, rng) -> list[str]:
        """Create the movie pool (seed movies first: they become the hubs)."""
        movies: list[str] = []
        if self.config.include_seed_entities:
            movies.extend(SEED_MOVIES)
        pool = pools.NamePool(
            tuple(
                f"{head}_{tail}"
                for head in pools.MOVIE_TITLE_HEADS
                for tail in pools.MOVIE_TITLE_TAILS
            ),
            rng,
        )
        for name in movies:
            pool.reserve(name)
        target = self.config.scaled(self.config.movies)
        while len(movies) < target + len(SEED_MOVIES):
            movies.append(pool.draw())
        years = [str(year) for year in range(1950, 2021, 5)]
        for movie in movies:
            builder.typed(movie, s.MOVIE)
            builder.fact(movie, s.HAS_GENRE, rng.choice(pools.MOVIE_GENRES))
            if rng.random() < 0.3:
                builder.fact(movie, s.HAS_GENRE, rng.choice(pools.MOVIE_GENRES))
            builder.fact(movie, s.RELEASED_IN, rng.choice(years))
        return movies

    # -- population -----------------------------------------------------------

    def _pick_movie(self, rng, movies: list[str], fame: float = 0.5) -> str:
        """Rank-skewed movie choice: early (seed) movies are the popular hubs.

        The skew exponent grows with the person's fame — famous people
        appear in the blockbuster hubs, obscure people in the long tail.
        """
        exponent = 1.5 + 2.5 * fame
        index = int(len(movies) * rng.random() ** exponent)
        return movies[min(index, len(movies) - 1)]

    def _build_population(
        self,
        builder: GraphBuilder,
        rng,
        person_pool: pools.PersonNamePool,
        company_pool: pools.NamePool,
        title_rng,
        movies: list[str],
        city_country: dict[str, str],
    ) -> dict[str, list[str]]:
        total_people = self.config.scaled(self.config.people)
        by_profession: dict[str, list[str]] = {p: [] for p in s.PROFESSIONS}
        writers_so_far: list[str] = []

        for profession in s.PROFESSIONS:
            profile = s.PROFESSION_PROFILES[profession]
            count = max(2, int(total_people * profile.share))
            for _ in range(count):
                name = person_pool.draw()
                by_profession[profession].append(name)
                self._emit_person(
                    builder,
                    rng,
                    name,
                    profile,
                    person_pool,
                    company_pool,
                    title_rng,
                    movies,
                    city_country,
                    writers_so_far,
                )
                if profession == s.WRITER:
                    writers_so_far.append(name)
        return by_profession

    def _emit_person(
        self,
        builder: GraphBuilder,
        rng,
        name: str,
        profile: s.ProfessionProfile,
        person_pool: pools.PersonNamePool,
        company_pool: pools.NamePool,
        title_rng,
        movies: list[str],
        city_country: dict[str, str],
        writers_so_far: list[str],
    ) -> None:
        builder.typed(name, profile.type_name)
        # Fame: a right-skewed popularity in (0, 1]; famous people carry
        # more relation edges (more films, more prizes) and concentrate on
        # the hub movies — mirroring YAGO's degree skew, and giving the
        # crowd simulator a meaningful popularity signal.
        fame = rng.random() ** 2
        gender = s.FEMALE if rng.random() < profile.female_rate else s.MALE
        builder.fact(name, s.GENDER, gender)

        city = rng.choice(pools.CITIES)
        builder.fact(name, s.BORN_IN, city)
        country = (
            city_country[city] if rng.random() < 0.8 else rng.choice(pools.COUNTRIES)
        )
        builder.fact(name, s.IS_CITIZEN_OF, country)
        if rng.random() < 0.35:
            builder.fact(name, s.LIVES_IN, rng.choice(pools.CITIES))

        if rng.random() < profile.married_rate:
            spouse = person_pool.draw()
            builder.typed(spouse, s.PERSON)
            builder.fact(
                spouse, s.GENDER, s.MALE if gender == s.FEMALE else s.FEMALE
            )
            builder.fact(name, s.IS_MARRIED_TO, spouse)

        if rng.random() >= profile.childless_rate:
            low, high = profile.children_range
            for _ in range(rng.randint(low, high)):
                child = person_pool.draw()
                builder.typed(child, s.PERSON)
                builder.fact(name, s.HAS_CHILD, child)

        if rng.random() < profile.studied_rate:
            fields, weights = zip(*profile.study_fields)
            field = rng.choices(fields, weights=weights, k=1)[0]
            builder.fact(name, s.STUDIED, field)
            if rng.random() < 0.8:
                builder.fact(name, s.GRADUATED_FROM, rng.choice(pools.UNIVERSITIES))
        if rng.random() < profile.degree_rate:
            builder.fact(name, s.HAS_ACADEMIC_DEGREE, "Doctorate")

        if rng.random() < profile.prize_rate * (0.6 + 0.8 * fame):
            low, high = profile.prize_count_range
            count = min(high, max(low, round(low + (high - low) * fame)))
            prize_pool = profile.prize_pool or pools.PRIZES
            count = min(count, len(prize_pool))
            for prize in _weighted_prize_sample(rng, prize_pool, count):
                builder.fact(name, s.HAS_WON_PRIZE, prize)

        # Profession-specific relations (famous people get more of them
        # and concentrate on the front — hub — movies).
        def movie_count(bounds: tuple[int, int]) -> int:
            low, high = bounds
            return min(high, max(low, 1, round(low + (high - low) * fame)))

        low, high = profile.acted_in_range
        if high > 0:
            for _ in range(movie_count((low, high))):
                builder.fact(name, s.ACTED_IN, self._pick_movie(rng, movies, fame))
        low, high = profile.directed_range
        if high > 0:
            for _ in range(movie_count((low, high))):
                builder.fact(name, s.DIRECTED, self._pick_movie(rng, movies, fame))
        if rng.random() < profile.produced_rate:
            builder.fact(name, s.PRODUCED, self._pick_movie(rng, movies))
        if rng.random() < profile.created_company_rate:
            company = self._fresh_company(rng, company_pool)
            builder.typed(company, s.COMPANY)
            builder.fact(name, s.CREATED, company)
            if rng.random() < profile.owns_company_rate / max(
                profile.created_company_rate, 1e-9
            ):
                builder.fact(name, s.OWNS, company)
        low, high = profile.created_books_range
        if high > 0:
            for _ in range(rng.randint(max(low, 1), high)):
                book = self._fresh_title(
                    title_rng, pools.BOOK_TITLE_HEADS, pools.BOOK_TITLE_TAILS
                )
                builder.typed(book, s.BOOK)
                builder.fact(name, s.CREATED, book)
        low, high = profile.created_albums_range
        if high > 0:
            for _ in range(rng.randint(max(low, 1), high)):
                album = self._fresh_title(
                    title_rng,
                    pools.BAND_AND_ALBUM_WORDS,
                    pools.BAND_AND_ALBUM_WORDS,
                )
                builder.typed(album, s.ALBUM)
                builder.fact(name, s.CREATED, album)
        if rng.random() < profile.wrote_music_rate:
            builder.fact(name, s.WROTE_MUSIC_FOR, self._pick_movie(rng, movies))
        if profile.influences_rate > 0 and writers_so_far:
            if rng.random() < profile.influences_rate:
                builder.fact(name, s.INFLUENCES, rng.choice(writers_so_far))
        if rng.random() < profile.party_rate:
            builder.fact(name, s.MEMBER_OF_PARTY, rng.choice(pools.PARTIES))
        if rng.random() < profile.plays_for_rate:
            builder.fact(name, s.PLAYS_FOR, rng.choice(pools.SPORTS_TEAMS))

    def _fresh_company(self, rng, company_pool: pools.NamePool) -> str:
        word = company_pool.draw()
        suffix = rng.choice(pools.COMPANY_SUFFIXES)
        return f"{word}_{suffix}"

    def _fresh_title(self, rng, heads, tails) -> str:
        base = pools.compound_name(rng, heads, tails)
        candidate = base
        attempt = 2
        while candidate in self._seen_titles:
            candidate = f"{base}_{attempt}"
            attempt += 1
        self._seen_titles.add(candidate)
        return candidate

    # -- seeds ----------------------------------------------------------------

    def _apply_seed_people(
        self, builder: GraphBuilder, city_country: dict[str, str]
    ) -> None:
        for book in SEED_BOOKS:
            builder.typed(book, s.BOOK)
        for company in SEED_COMPANIES:
            builder.typed(company, s.COMPANY)
        for album in SEED_ALBUMS:
            builder.typed(album, s.ALBUM)
        for person in SEED_PEOPLE:
            self._emit_seed_person(builder, person, city_country)

    def _emit_seed_person(
        self, builder: GraphBuilder, person: SeedPerson, city_country: dict[str, str]
    ) -> None:
        builder.typed(person.name, person.profession)
        for extra in person.extra_types:
            builder.typed(person.name, extra)
        builder.fact(person.name, s.GENDER, person.gender)
        if person.born_in:
            builder.typed(person.born_in, s.CITY)
            builder.fact(person.name, s.BORN_IN, person.born_in)
        if person.citizen_of:
            builder.fact(person.name, s.IS_CITIZEN_OF, person.citizen_of)
        if person.studied:
            builder.fact(person.name, s.STUDIED, person.studied)
        if person.graduated_from:
            builder.fact(person.name, s.GRADUATED_FROM, person.graduated_from)
        if person.academic_degree:
            builder.fact(person.name, s.HAS_ACADEMIC_DEGREE, person.academic_degree)
        if person.spouse:
            builder.typed(person.spouse, s.PERSON)
            builder.fact(person.name, s.IS_MARRIED_TO, person.spouse)
        for child in person.children:
            builder.typed(child, s.PERSON)
            builder.fact(person.name, s.HAS_CHILD, child)
        if person.leads:
            builder.fact(person.name, s.IS_LEADER_OF, person.leads)
        if person.party:
            builder.fact(person.name, s.MEMBER_OF_PARTY, person.party)
        for prize in person.prizes:
            builder.fact(person.name, s.HAS_WON_PRIZE, prize)
        for movie in person.acted_in:
            builder.typed(movie, s.MOVIE)
            builder.fact(person.name, s.ACTED_IN, movie)
        for movie in person.directed:
            builder.typed(movie, s.MOVIE)
            builder.fact(person.name, s.DIRECTED, movie)
        for movie in person.produced:
            builder.typed(movie, s.MOVIE)
            builder.fact(person.name, s.PRODUCED, movie)
        for work in person.created:
            builder.fact(person.name, s.CREATED, work)
        for company in person.owns:
            builder.typed(company, s.COMPANY)
            builder.fact(person.name, s.OWNS, company)
        for movie in person.wrote_music_for:
            builder.typed(movie, s.MOVIE)
            builder.fact(person.name, s.WROTE_MUSIC_FOR, movie)
        for influenced in person.influences:
            builder.typed(influenced, s.WRITER)
            builder.fact(person.name, s.INFLUENCES, influenced)

    # -- post-pass ---------------------------------------------------------------

    def _assign_country_leaders(
        self, builder: GraphBuilder, politicians: list[str], rng
    ) -> None:
        """Give leaderless countries a leader from the generated politicians.

        Seed politicians claimed their real countries during seeding; the
        remaining countries draw from the synthetic population so that
        ``isLeaderOf`` behaves like the real relation (at most one holder
        per country, most politicians *not* leaders).
        """
        graph = builder.build()
        led = {
            graph.node_name(edge.target)
            for edge in graph.edges(s.IS_LEADER_OF)
        }
        available = [c for c in pools.COUNTRIES if c not in led]
        candidates = [p for p in politicians if rng.random() < 0.6]
        rng.shuffle(candidates)
        for country, politician in zip(available, candidates):
            builder.fact(politician, s.IS_LEADER_OF, country)


def synthetic_yago(
    *, scale: float = 1.0, seed: int = 7, include_seed_entities: bool = True
) -> KnowledgeGraph:
    """Build a synthetic YAGO graph (see :class:`SyntheticYago`)."""
    generator = SyntheticYago(
        scale=scale, seed=seed, include_seed_entities=include_seed_entities
    )
    return generator.build()
