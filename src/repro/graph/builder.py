"""Fluent construction of knowledge graphs, and store <-> graph bridges."""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.labels import SUBCLASS_OF_LABEL, TYPE_LABEL
from repro.graph.model import KnowledgeGraph
from repro.store.terms import IRI, Literal
from repro.store.triples import Triple
from repro.store.triplestore import TripleStore


class GraphBuilder:
    """Accumulates facts and produces a :class:`KnowledgeGraph`.

    The builder speaks entity *names*; nodes are created on first mention.

    >>> g = (GraphBuilder()
    ...      .fact("Angela_Merkel", "leaderOf", "Germany")
    ...      .typed("Angela_Merkel", "politician")
    ...      .build())
    >>> sorted(g.types_of("Angela_Merkel"))
    ['politician']
    """

    def __init__(self, name: str = "knowledge-graph", *, add_inverse: bool = True) -> None:
        self._graph = KnowledgeGraph(name)
        self._add_inverse = add_inverse

    def node(self, name: str) -> "GraphBuilder":
        """Ensure a node exists (useful for isolated nodes)."""
        self._graph.add_node(name)
        return self

    def fact(self, subject: str, label: str, obj: str) -> "GraphBuilder":
        """Add ``subject -label-> obj`` (plus inverse unless disabled)."""
        self._graph.add_edge(subject, label, obj, add_inverse=self._add_inverse)
        return self

    def facts(self, triples: Iterable[tuple[str, str, str]]) -> "GraphBuilder":
        """Add many ``(subject, label, object)`` statements; returns self."""
        for subject, label, obj in triples:
            self.fact(subject, label, obj)
        return self

    def typed(self, subject: str, type_name: str) -> "GraphBuilder":
        """Declare ``subject`` an instance of ``type_name``."""
        return self.fact(subject, TYPE_LABEL, type_name)

    def subclass(self, child_type: str, parent_type: str) -> "GraphBuilder":
        """Declare ``child_type`` a subclass of ``parent_type``."""
        return self.fact(child_type, SUBCLASS_OF_LABEL, parent_type)

    def attribute(self, subject: str, label: str, value: object) -> "GraphBuilder":
        """Add an attribute, modelling the value as a node (Section 2)."""
        return self.fact(subject, label, str(value))

    def build(self) -> KnowledgeGraph:
        """The accumulated graph (the builder's backing object, not a copy)."""
        return self._graph


def graph_from_triples(
    triples: Iterable[tuple[str, str, str]],
    *,
    name: str = "knowledge-graph",
    add_inverse: bool = True,
) -> KnowledgeGraph:
    """Build a graph from ``(subject, label, object)`` string triples."""
    builder = GraphBuilder(name, add_inverse=add_inverse)
    builder.facts(triples)
    return builder.build()


def graph_from_store(
    store: TripleStore, *, name: str = "knowledge-graph", add_inverse: bool = True
) -> KnowledgeGraph:
    """Materialize a :class:`KnowledgeGraph` from a triple store.

    IRIs and literals both become named nodes (Definition 1 treats attribute
    values as nodes); the predicate's string form becomes the edge label.
    """
    graph = KnowledgeGraph(name)
    for triple in store:
        graph.add_edge(
            str(triple.subject),
            str(triple.predicate),
            str(triple.object),
            add_inverse=add_inverse,
        )
    return graph


def store_from_graph(
    graph: KnowledgeGraph, *, include_inverse: bool = False
) -> TripleStore:
    """Serialize a graph back into a triple store.

    Reverse edges are redundant under the closure assumption and skipped by
    default; pass ``include_inverse=True`` to keep them.
    """
    from repro.graph.labels import is_inverse_label

    store = TripleStore()
    for edge in graph.edges():
        if not include_inverse and is_inverse_label(edge.label):
            continue
        store.add(
            Triple(
                IRI(graph.node_name(edge.source)),
                IRI(edge.label),
                _object_term(graph.node_name(edge.target)),
            )
        )
    return store


def _object_term(name: str) -> "IRI | Literal":
    """Heuristic: values that are not valid IRIs become literals."""
    try:
        return IRI(name)
    except Exception:
        return Literal(name)
