"""Personalized PageRank (Equation 2) via sparse power iteration.

``p = c * A~ * p + (1 - c) * v`` with ``A~`` the column-stochastic matrix of
:func:`repro.graph.matrix.transition_matrix` and ``v`` the personalization
vector. The experiments of the paper run power iteration ("instead of the
matrix multiplication we used the more scalable power iteration method",
10 iterations); we support both a fixed iteration count and a convergence
tolerance.

On the damping factor: Section 3.1 states 0.8 while Section 4 states 0.2.
With this equation's convention (``c`` multiplies the *walk* term), 0.8 is
the standard reading, so 0.8 is the default; the parameter is exposed for
ablation.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.graph.matrix import personalization_vector, transition_matrix, weighted_adjacency
from repro.graph.model import KnowledgeGraph


def power_iteration(
    transition: sparse.csr_matrix,
    personalization: np.ndarray,
    *,
    damping: float = 0.8,
    iterations: int = 10,
    tolerance: float | None = None,
) -> np.ndarray:
    """Iterate ``p <- c*T*p + (1-c)*v`` from ``p = v``.

    Mass lost through dangling nodes (zero columns of ``T``) is re-injected
    through ``v``, the standard correction keeping ``p`` a distribution.
    When ``tolerance`` is given, iteration stops early once the L1 change
    falls below it.
    """
    if not 0.0 <= damping <= 1.0:
        raise ValueError(f"damping must be in [0, 1], got {damping}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    v = np.asarray(personalization, dtype=np.float64)
    if v.ndim != 1 or v.shape[0] != transition.shape[0]:
        raise ValueError("personalization vector shape mismatch")
    total = v.sum()
    if total <= 0:
        raise ValueError("personalization vector must have positive mass")
    v = v / total
    p = v.copy()
    for _ in range(iterations):
        walked = transition @ p
        lost = 1.0 - walked.sum()  # dangling leak
        new_p = damping * (walked + lost * v) + (1.0 - damping) * v
        if tolerance is not None and np.abs(new_p - p).sum() < tolerance:
            p = new_p
            break
        p = new_p
    return p


def personalized_pagerank(
    graph: KnowledgeGraph,
    nodes: "list[int] | tuple[int, ...]",
    *,
    damping: float = 0.8,
    iterations: int = 10,
    tolerance: float | None = None,
) -> np.ndarray:
    """One-shot PPR personalized on ``nodes`` (uniform restart over them)."""
    transition = transition_matrix(graph)
    v = personalization_vector(graph, nodes)
    return power_iteration(
        transition, v, damping=damping, iterations=iterations, tolerance=tolerance
    )


def power_iteration_python(
    graph: KnowledgeGraph,
    personalization: np.ndarray,
    *,
    damping: float = 0.8,
    iterations: int = 10,
    statistics=None,
) -> np.ndarray:
    """Pure-Python power iteration sweeping the adjacency lists directly.

    Functionally equivalent to :func:`power_iteration` (same fixed point up
    to float noise) but with the cost profile of the paper's Java/Jena
    implementation: every iteration touches every edge with interpreted
    code, no vectorization. The Figure-5 runtime comparison uses this
    backend so that both algorithms pay interpreter-level costs (see
    DESIGN.md / EXPERIMENTS.md); library users get the scipy backend by
    default.
    """
    from repro.graph.statistics import GraphStatistics

    if not 0.0 <= damping <= 1.0:
        raise ValueError(f"damping must be in [0, 1], got {damping}")
    stats = statistics or GraphStatistics(graph)
    weights = stats.label_weights()
    n = graph.node_count
    v = np.asarray(personalization, dtype=np.float64)
    if v.shape != (n,):
        raise ValueError("personalization vector shape mismatch")
    total = v.sum()
    if total <= 0:
        raise ValueError("personalization vector must have positive mass")
    v = v / total
    label_names = graph._label_table().name  # noqa: SLF001 - internal fast path
    adjacency = graph._out_adjacency()  # noqa: SLF001 - internal fast path
    # Pre-resolve per-node out-weight normalizers.
    out_weight = [0.0] * n
    weight_of_label_id: dict[int, float] = {}
    for node in range(n):
        acc = 0.0
        for label_id, targets in adjacency[node].items():
            w = weight_of_label_id.get(label_id)
            if w is None:
                w = weights[label_names(label_id)]
                weight_of_label_id[label_id] = w
            acc += w * len(targets)
        out_weight[node] = acc
    p = v.copy()
    for _ in range(iterations):
        new_p = np.zeros(n, dtype=np.float64)
        for node in range(n):
            mass = p[node]
            if mass <= 0.0:
                continue
            denom = out_weight[node]
            if denom <= 0.0:
                continue  # dangling: handled by leak re-injection below
            scale = mass / denom
            for label_id, targets in adjacency[node].items():
                w = weight_of_label_id[label_id] * scale
                for target in targets:
                    new_p[target] += w
        lost = 1.0 - new_p.sum()
        p = damping * (new_p + lost * v) + (1.0 - damping) * v
    return p


class PersonalizedPageRank:
    """Reusable PPR runner caching the transition matrix per graph version.

    The RandomWalk baseline of the paper runs one PPR per query node; this
    class amortizes the (dominant) matrix construction across those runs.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        *,
        damping: float = 0.8,
        iterations: int = 10,
        tolerance: float | None = None,
        backend: str = "scipy",
    ) -> None:
        if backend not in ("scipy", "python"):
            raise ValueError(f"backend must be 'scipy' or 'python', got {backend!r}")
        self._graph = graph
        self.damping = damping
        self.iterations = iterations
        self.tolerance = tolerance
        self.backend = backend
        self._transition: sparse.csr_matrix | None = None
        self._version = -1

    @property
    def graph(self) -> KnowledgeGraph:
        return self._graph

    def transition(self) -> sparse.csr_matrix:
        if self._transition is None or self._graph.version != self._version:
            adjacency = weighted_adjacency(self._graph)
            self._transition = transition_matrix(self._graph, adjacency=adjacency)
            self._version = self._graph.version
        return self._transition

    def scores(self, nodes: "list[int] | tuple[int, ...]") -> np.ndarray:
        """PPR vector personalized on ``nodes`` jointly."""
        v = personalization_vector(self._graph, list(nodes))
        if self.backend == "python":
            return power_iteration_python(
                self._graph, v, damping=self.damping, iterations=self.iterations
            )
        return power_iteration(
            self.transition(),
            v,
            damping=self.damping,
            iterations=self.iterations,
            tolerance=self.tolerance,
        )

    def scores_per_node(self, nodes: "list[int] | tuple[int, ...]") -> np.ndarray:
        """Sum of per-query-node PPR vectors (the paper's protocol).

        "We compute the PageRank starting from each node in the query ...
        by setting v_n = 1 for each n in Q, individually." The per-node
        vectors are summed into one ranking (the combination rule is left
        unspecified in the paper; summation is order-invariant and reduces
        to the single-node case for |Q| = 1).
        """
        if len(nodes) == 0:
            raise ValueError("need at least one personalization node")
        total = np.zeros(self._graph.node_count, dtype=np.float64)
        for node in nodes:
            total += self.scores([node])
        return total

    def top_k(
        self,
        nodes: "list[int] | tuple[int, ...]",
        k: int,
        *,
        exclude: "set[int] | frozenset[int] | None" = None,
        per_node: bool = True,
    ) -> list[tuple[int, float]]:
        """The ``k`` highest-scoring nodes, excluding ``exclude`` (usually Q)."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if k == 0:
            return []
        scores = self.scores_per_node(nodes) if per_node else self.scores(nodes)
        excluded = exclude if exclude is not None else set(nodes)
        order = np.argsort(-scores, kind="stable")
        out: list[tuple[int, float]] = []
        for node in order:
            node = int(node)
            if node in excluded:
                continue
            if scores[node] <= 0:
                break
            out.append((node, float(scores[node])))
            if len(out) == k:
                break
        return out
