"""Tests for the HTTP JSON front-end (and the `repro serve` wiring)."""

import contextlib
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.service import faults
from repro.service.engine import NCEngine
from repro.service.server import create_server, outcome_to_json


@pytest.fixture(scope="module")
def service():
    """A live server on an ephemeral port, shared across this module."""
    graph = figure1_graph()
    engine = NCEngine(graph, context_size=3, max_workers=2, seed=5)
    server = create_server(engine, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, engine, graph
    server.shutdown()
    server.server_close()
    engine.close()


def _get(server, path):
    port = server.server_address[1]
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, service):
        server, _, graph = service
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["nodes"] == graph.node_count
        assert body["graph_version"] == graph.version

    def test_search_get_end_to_end(self, service):
        server, _, _ = service
        status, body = _get(
            server, "/search?query=Angela_Merkel,Barack_Obama&context_size=3"
        )
        assert status == 200
        assert sorted(body["query"]) == ["Angela_Merkel", "Barack_Obama"]
        assert body["context"]["size"] <= 3
        assert body["candidates_evaluated"] > 0
        assert isinstance(body["notable"], list)
        assert body["elapsed"]["request_s"] > 0

    def test_search_repeated_query_params(self, service):
        server, _, _ = service
        status, body = _get(
            server, "/search?query=Angela_Merkel&query=Barack_Obama"
        )
        assert status == 200
        assert len(body["query"]) == 2

    def test_search_post_hits_cache_of_get(self, service):
        server, _, _ = service
        _get(server, "/search?query=Vladimir_Putin&context_size=3")
        status, body = _post(
            server, "/search", {"query": ["Vladimir_Putin"], "context_size": 3}
        )
        assert status == 200
        assert body["cached"] is True

    def test_stats(self, service):
        server, engine, _ = service
        status, body = _get(server, "/stats")
        assert status == 200
        assert body["requests"] == engine.stats().requests
        assert "cache" in body


class TestErrors:
    def test_unknown_path_404(self, service):
        server, _, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404

    def test_missing_query_400(self, service):
        server, _, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/search")
        assert excinfo.value.code == 400

    def test_unresolvable_entity_400(self, service):
        server, _, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/search?query=Completely_Unknown_Entity_42")
        error = excinfo.value
        assert error.code == 400
        assert "error" in json.loads(error.read())

    def test_invalid_json_body_400(self, service):
        server, _, _ = service
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/search", data=b"not json"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_post_wrong_path_404(self, service):
        server, _, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/healthz", {})
        assert excinfo.value.code == 404


class TestSerialization:
    def test_outcome_to_json_shape(self, service):
        _, engine, graph = service
        outcome = engine.request(["Angela_Merkel"])
        payload = outcome_to_json(outcome, graph)
        assert payload["query"] == ["Angela_Merkel"]
        assert set(payload["elapsed"]) == {
            "context_s",
            "discrimination_s",
            "request_s",
        }
        for item in payload["notable"]:
            assert set(item) == {
                "label",
                "score",
                "channel",
                "p_value",
                "explanation",
            }
        json.dumps(payload)  # must be JSON-serializable end to end


class TestServeCommand:
    pytestmark = pytest.mark.slow

    def test_serve_subprocess_answers_search(self, tmp_path):
        """`repro serve` end-to-end: spawn the CLI, hit /search over HTTP."""
        import os
        import subprocess
        import sys
        import time as time_mod

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--dataset",
                "figure1",
                "--context-size",
                "3",
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            # the CLI prints "listening on http://host:port (...)" once ready
            port = None
            deadline = time_mod.monotonic() + 60
            while time_mod.monotonic() < deadline:
                line = process.stdout.readline()
                if "listening on" in line:
                    port = int(line.split("http://", 1)[1].split("(")[0].strip().rsplit(":", 1)[1])
                    break
            assert port, "server did not report its port"
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/search?query=Angela_Merkel,Barack_Obama",
                timeout=30,
            ) as response:
                body = json.loads(response.read())
            assert sorted(body["query"]) == ["Angela_Merkel", "Barack_Obama"]
            assert body["candidates_evaluated"] > 0
        finally:
            process.terminate()
            process.wait(timeout=10)


@contextlib.contextmanager
def _serving(engine):
    """A live server over ``engine`` on an ephemeral port."""
    server = create_server(engine, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        engine.close()


class TestResilienceSurface:
    @pytest.fixture(autouse=True)
    def _disarmed(self):
        faults.reset()
        yield
        faults.reset()

    def test_error_bodies_carry_stable_codes(self, service):
        server, _, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/search")
        assert json.loads(excinfo.value.read())["code"] == "bad_request"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/nope")
        assert json.loads(excinfo.value.read())["code"] == "not_found"

    @pytest.mark.parametrize("value", ["0", "-50", "soon"])
    def test_invalid_timeout_ms_400(self, service, value):
        server, _, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, f"/search?query=Angela_Merkel&timeout_ms={value}")
        error = excinfo.value
        assert error.code == 400
        assert json.loads(error.read())["code"] == "invalid_timeout"

    def test_stats_expose_resilience_counters(self, service):
        server, _, _ = service
        _, body = _get(server, "/stats")
        for field in ("timeouts", "retries", "shed", "fallbacks"):
            assert field in body

    def test_deadline_expiry_is_504(self):
        engine = NCEngine(figure1_graph(), context_size=3, max_workers=1, seed=5)
        with _serving(engine) as server:
            faults.set_injector(
                faults.FaultInjector(
                    [faults.FaultRule("engine.slow", delay_s=0.8, limit=1)]
                )
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(
                    server,
                    "/search?query=Angela_Merkel,Barack_Obama&timeout_ms=150",
                )
            error = excinfo.value
            assert error.code == 504
            assert json.loads(error.read())["code"] == "deadline_exceeded"

    def test_saturated_engine_sheds_503_with_retry_after(self):
        engine = NCEngine(
            figure1_graph(), context_size=3, max_workers=1, seed=5, max_pending=1
        )
        with _serving(engine) as server:
            faults.set_injector(
                faults.FaultInjector(
                    [faults.FaultRule("engine.slow", delay_s=0.8, limit=1)]
                )
            )
            blocker, *_ = engine.submit(["Angela_Merkel", "Barack_Obama"])
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, "/search?query=Vladimir_Putin")
            error = excinfo.value
            assert error.code == 503
            assert error.headers["Retry-After"] == "1"
            assert json.loads(error.read())["code"] == "saturated"
            blocker.result(timeout=5.0)

    def test_degraded_breaker_reported_by_healthz(self):
        # A tripped worker-pool breaker must surface on /healthz (still
        # HTTP 200: the engine keeps answering from the fallback, so
        # load balancers should keep routing).
        engine = NCEngine(
            figure1_graph(),
            context_size=3,
            max_workers=1,
            executor="process",
            seed=5,
            breaker_threshold=1,
        )
        engine.breaker.record_failure("simulated crash storm")
        with _serving(engine) as server:
            status, body = _get(server, "/healthz")
            assert status == 200
            assert body["status"] == "degraded"
            assert "circuit breaker is open" in body["reason"]
            _, stats = _get(server, "/stats")
            assert stats["breaker"]["state"] == "open"


class TestGracefulShutdown:
    pytestmark = pytest.mark.slow

    def test_sigterm_drains_and_exits_cleanly(self):
        """SIGTERM to `repro serve`: drain, close, exit 0."""
        import os
        import signal
        import subprocess
        import sys
        import time as time_mod

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--dataset",
                "figure1",
                "--context-size",
                "3",
                "--port",
                "0",
                "--drain-timeout",
                "5",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            port = None
            deadline = time_mod.monotonic() + 60
            while time_mod.monotonic() < deadline:
                line = process.stdout.readline()
                if "listening on" in line:
                    port = int(
                        line.split("http://", 1)[1]
                        .split("(")[0]
                        .strip()
                        .rsplit(":", 1)[1]
                    )
                    break
            assert port, "server did not report its port"
            # One request proves the server is live before the signal.
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=30
            ) as response:
                assert response.status == 200
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=30)
        except BaseException:
            process.kill()
            raise
        assert process.returncode == 0
        assert "draining and shutting down" in output
        assert "shut down cleanly" in output


class TestNonStringQueryItems:
    def test_float_query_id_is_400_not_dropped_connection(self, service):
        server, _, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "/search", {"query": [1.5]})
        error = excinfo.value
        assert error.code == 400
        assert "error" in json.loads(error.read())

    def test_get_integer_node_id_resolves(self, service):
        server, _, graph = service
        node_id = graph.node_id("Angela_Merkel")
        status, body = _get(server, f"/search?query={node_id}")
        assert status == 200
        assert body["query"] == ["Angela_Merkel"]


def _raw(server, path, *, method="GET", payload=None):
    """(status, headers, raw body bytes) — for parity/header assertions."""
    port = server.server_address[1]
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


class TestV1Api:
    """The versioned surface: /v1 canonical, unprefixed deprecated aliases."""

    def test_v1_routes_answer(self, service):
        server, _, graph = service
        status, body = _get(server, "/v1/healthz")
        assert status == 200
        assert body["nodes"] == graph.node_count
        status, body = _get(server, "/v1/stats")
        assert status == 200
        assert "requests" in body
        status, body = _get(server, "/v1/search?query=Angela_Merkel,Barack_Obama")
        assert status == 200
        assert len(body["query"]) == 2

    def test_healthz_serving_metadata(self, service):
        server, engine, graph = service
        _, body = _get(server, "/v1/healthz")
        assert body["version_id"] == graph.version
        assert body["uptime_s"] > 0
        assert body["snapshot_source"] == "live-graph"
        assert body["uptime_s"] == pytest.approx(engine.uptime_s, abs=5.0)

    def test_alias_parity_error_bodies_byte_identical(self, service):
        server, _, _ = service
        status_alias, _, body_alias = _raw(server, "/search")
        status_v1, _, body_v1 = _raw(server, "/v1/search")
        assert status_alias == status_v1 == 400
        assert body_alias == body_v1

    def test_alias_parity_healthz(self, service):
        server, _, _ = service
        _, _, alias_bytes = _raw(server, "/healthz")
        _, _, v1_bytes = _raw(server, "/v1/healthz")
        alias_body = json.loads(alias_bytes)
        v1_body = json.loads(v1_bytes)
        # uptime_s advances between the two calls; all else must match
        alias_body.pop("uptime_s")
        v1_body.pop("uptime_s")
        assert alias_body == v1_body

    def test_alias_parity_search_payload(self, service):
        server, _, _ = service
        payload = {"query": ["Angela_Merkel", "Barack_Obama"], "context_size": 3}
        _, _, v1_bytes = _raw(server, "/v1/search", method="POST", payload=payload)
        _, _, alias_bytes = _raw(server, "/search", method="POST", payload=payload)
        v1_body = json.loads(v1_bytes)
        alias_body = json.loads(alias_bytes)
        # per-request timing differs; the result payload must not
        v1_body.pop("elapsed")
        alias_body.pop("elapsed")
        v1_body.pop("cached")
        alias_body.pop("cached")
        assert v1_body == alias_body

    def test_deprecation_header_only_on_aliases(self, service):
        server, _, _ = service
        for alias, canonical in (
            ("/healthz", "/v1/healthz"),
            ("/stats", "/v1/stats"),
            ("/metrics", "/v1/metrics"),
        ):
            _, alias_headers, _ = _raw(server, alias)
            _, v1_headers, _ = _raw(server, canonical)
            assert alias_headers.get("Deprecation") == "true", alias
            assert "Deprecation" not in v1_headers, canonical

    def test_deprecation_header_on_error_responses_too(self, service):
        server, _, _ = service
        _, headers, _ = _raw(server, "/search")  # 400: missing query
        assert headers.get("Deprecation") == "true"

    def test_metrics_route_serves_prometheus_text(self, service):
        from repro.service.metrics import CONTENT_TYPE, validate_exposition

        server, _, _ = service
        status, headers, body = _raw(server, "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        families = validate_exposition(body.decode("utf-8"))
        assert "nc_http_requests_total" in families

    def test_unknown_v1_path_is_404(self, service):
        server, _, _ = service
        status, _, body = _raw(server, "/v1/nope")
        assert status == 404
        assert json.loads(body)["code"] == "not_found"

    def test_route_table_aliases_are_complete(self):
        from repro.service.server import ROUTES

        for spec in ROUTES:
            assert spec.path.startswith("/v1/")
            if spec.alias is not None:
                assert spec.alias == spec.path[len("/v1") :]
