"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------

``search``
    Run notable-characteristics search for a query on a built-in dataset::

        repro search --dataset yago --query Angela_Merkel Barack_Obama

``experiment``
    Regenerate one of the paper's tables/figures::

        repro experiment fig9
        repro experiment table2 --scale 1.5

``datasets``
    List the registered datasets with their statistics.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.findnc import FindNC, rw_mult
from repro.datasets.loader import dataset_names, load_dataset
from repro.eval.experiments import ExperimentSetting
from repro.eval.report import experiment_ids, get_experiment
from repro.graph.statistics import GraphStatistics


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Notable Characteristics Search through Knowledge Graphs "
        "(EDBT 2018) - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser("search", help="run FindNC for a query")
    search.add_argument("--dataset", default="yago", choices=dataset_names())
    search.add_argument("--scale", type=float, default=2.0)
    search.add_argument("--context-size", type=int, default=100)
    search.add_argument("--seed", type=int, default=11)
    search.add_argument(
        "--baseline", action="store_true", help="use RWMult instead of FindNC"
    )
    search.add_argument("--query", nargs="+", required=True, metavar="ENTITY")

    experiment = sub.add_parser("experiment", help="regenerate a table/figure")
    experiment.add_argument("experiment_id", choices=experiment_ids())
    experiment.add_argument("--dataset", default="yago", choices=dataset_names())
    experiment.add_argument("--scale", type=float, default=2.0)
    experiment.add_argument("--markdown", action="store_true")

    sub.add_parser("datasets", help="list datasets with statistics")
    return parser


def _cmd_search(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    if args.baseline:
        finder = rw_mult(graph, context_size=args.context_size, rng=args.seed)
    else:
        finder = FindNC(graph, context_size=args.context_size, rng=args.seed)
    result = finder.run(args.query)
    print(result.summary(graph))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    spec = get_experiment(args.experiment_id)
    setting = ExperimentSetting(dataset=args.dataset, scale=args.scale)
    table = spec.runner(setting)
    print(table.render(markdown=args.markdown))
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    for name in dataset_names():
        graph = load_dataset(name)
        stats = GraphStatistics(graph)
        print(f"{name}: {stats.describe()}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "search": _cmd_search,
        "experiment": _cmd_experiment,
        "datasets": _cmd_datasets,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
