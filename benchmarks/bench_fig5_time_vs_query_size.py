"""Figure 5 — context-selection time vs |Q| (log scale in the paper).

The paper reports RandomWalk up to two orders of magnitude slower. That
*magnitude* is a function of graph size: per-query-node PageRank costs
O(|Q| * |E| * iterations) while PathMining costs O(samples * walk length),
so on the paper's 27M-edge YAGO the baseline drowns, while on our 30k-edge
synthetic graph the constants meet in the middle (see EXPERIMENTS.md).

What is scale-independent — and asserted here — is the *shape*:
* RandomWalk time grows linearly with |Q| (one PageRank per query node);
* ContextRW time does not grow with |Q| (if anything it shrinks: walks
  terminate sooner when the target set is larger).
"""

from conftest import run_once

from repro.eval.experiments import time_vs_query_size


def test_fig5_time_vs_query_size(benchmark, setting):
    table = run_once(benchmark, time_vs_query_size, setting)
    print()
    print(table.render())

    seconds = {(algo, q): t for algo, q, t in table.rows}
    assert seconds[("RandomWalk", 5)] >= 2.0 * seconds[("RandomWalk", 1)], (
        "the baseline's cost must grow with the query size "
        f"(got {seconds[('RandomWalk', 1)]:.3f}s -> {seconds[('RandomWalk', 5)]:.3f}s)"
    )
    crw_growth = seconds[("ContextRW", 5)] / max(seconds[("ContextRW", 1)], 1e-9)
    rw_growth = seconds[("RandomWalk", 5)] / max(seconds[("RandomWalk", 1)], 1e-9)
    assert crw_growth < rw_growth, (
        "ContextRW must scale better in |Q| than the baseline "
        f"(growth {crw_growth:.2f}x vs {rw_growth:.2f}x)"
    )
    assert seconds[("ContextRW", 5)] <= 1.25 * seconds[("ContextRW", 1)], (
        "ContextRW does not get slower with more query nodes"
    )
    # Interactive regime: every run finishes well under the paper's 20s.
    assert max(table.column("seconds")) < 20.0
