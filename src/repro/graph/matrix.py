"""Weighted adjacency and transition matrices (Equations 1 and 2).

Equation 1 defines the weighted adjacency ``A`` as::

    A_ij = 1 - |E_l| / |E|    if (i, j) in E with label l, else 0

The matrix is |V| x |V|; for parallel edges with different labels between
the same pair we *sum* the weights (documented design choice — the paper
leaves multi-edges unspecified; summing preserves "more relations => more
flow" and keeps A non-negative).

Equation 2 normalizes columns of the transpose::

    A~_ij = A_ji / sum_k A_jk

so ``A~`` is column-stochastic over nodes with out-edges. Columns of
dangling nodes (no out-edges) stay zero; the PageRank iteration compensates
via the (1 - c) teleport term and renormalization.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.graph.model import KnowledgeGraph
from repro.graph.statistics import GraphStatistics


def weighted_adjacency(
    graph: KnowledgeGraph, *, statistics: GraphStatistics | None = None
) -> sparse.csr_matrix:
    """Build Equation 1's weighted adjacency matrix ``A`` (CSR, float64)."""
    stats = statistics or GraphStatistics(graph)
    weights_by_label = stats.label_weights()
    n = graph.node_count
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for edge in graph.edges():
        rows.append(edge.source)
        cols.append(edge.target)
        data.append(weights_by_label[edge.label])
    matrix = sparse.coo_matrix(
        (data, (rows, cols)), shape=(n, n), dtype=np.float64
    )
    # Duplicate (i, j) entries from parallel edges are summed by conversion.
    return matrix.tocsr()


def transition_matrix(
    graph: KnowledgeGraph,
    *,
    adjacency: sparse.csr_matrix | None = None,
) -> sparse.csr_matrix:
    """Build Equation 2's column-stochastic matrix ``A~``.

    ``A~[i, j] = A[j, i] / sum_k A[j, k]`` — the probability of stepping
    from node ``j`` to node ``i``.
    """
    a = adjacency if adjacency is not None else weighted_adjacency(graph)
    out_weight = np.asarray(a.sum(axis=1)).ravel()  # row sums of A = out-weights
    with np.errstate(divide="ignore"):
        inverse = np.where(out_weight > 0, 1.0 / out_weight, 0.0)
    # Scale row j of A by 1/out_weight[j], then transpose: columns sum to 1.
    scaled = sparse.diags(inverse) @ a
    return scaled.transpose().tocsr()


def dangling_nodes(graph: KnowledgeGraph) -> np.ndarray:
    """Boolean mask of nodes without out-edges (zero columns of ``A~``)."""
    mask = np.zeros(graph.node_count, dtype=bool)
    for node in graph.nodes():
        if graph.out_degree(node) == 0:
            mask[node] = True
    return mask


def personalization_vector(
    graph: KnowledgeGraph, nodes: "list[int] | tuple[int, ...]"
) -> np.ndarray:
    """Uniform personalization vector ``v`` over ``nodes`` (Equation 2).

    The paper sets ``v_n = 1`` for each query node individually; for a
    multi-node restart we normalize to a distribution.
    """
    if not nodes:
        raise ValueError("personalization needs at least one node")
    v = np.zeros(graph.node_count, dtype=np.float64)
    for node in nodes:
        if not 0 <= node < graph.node_count:
            raise ValueError(f"node id out of range: {node}")
        v[node] += 1.0
    return v / v.sum()
