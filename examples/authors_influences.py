"""The second Section-4.2 test case: Douglas Adams and Terry Pratchett.

Both authors influenced Neil Gaiman — an author influenced by only a
handful of people in total — so ``influences`` is notable. ``created`` is
*not* notable: every author in the context created their own works too, so
the query having its own books is exactly the expected behaviour.

Run:  python examples/authors_influences.py
"""

from __future__ import annotations

from repro import ContextRW, FindNC
from repro.datasets import AUTHORS_QUERY, load_dataset


def main() -> None:
    graph = load_dataset("yago", scale=2.0)
    # The two-writer query is weakly connected; give PathMining a larger
    # walk budget so writer-anchored metapath counts are reliable.
    selector = ContextRW(graph, rng=5, samples=300_000)
    finder = FindNC(graph, context_selector=selector, context_size=30, rng=5)
    result = finder.run(list(AUTHORS_QUERY))

    print(f"Query:   {list(AUTHORS_QUERY)}")
    print(f"Context: {result.context.names(graph, 10)} ...\n")

    influences = result.result_for("influences")
    created = result.result_for("created")

    print(f"influences: p = {influences.min_p_value:.4f} "
          f"-> {'NOTABLE' if influences.notable else 'not notable'}")
    for notable in result.notable:
        if notable.label == "influences":
            print(f"  {notable.explanation(graph)}")
    gaiman_influencers = list(
        graph.neighbors("Neil_Gaiman", "influences", direction="in")
    )
    print(f"  (Neil Gaiman is influenced by {len(gaiman_influencers)} people "
          f"in the whole graph: "
          f"{sorted(graph.node_name(n) for n in gaiman_influencers)})\n")

    print(f"created:    p = {created.min_p_value:.4f} "
          f"-> {'NOTABLE' if created.notable else 'not notable'}")
    print("  every context author created their own works as well - "
          "the query doing the same is expected, not notable.\n")

    print("All notable characteristics:")
    for notable in result.notable:
        print(f"  * {notable.label} (p = {notable.p_value:.4f})")


if __name__ == "__main__":
    main()
