"""The actors scenario of Section 4.2 on the synthetic YAGO graph.

Query: {Brad Pitt, George Clooney, Leonardo DiCaprio, Scarlett Johansson,
Johnny Depp}, context size 100. The script shows:

* the ContextRW context (famous actors),
* the instance distribution of ``created`` (Figure 7) — notable: four of
  the five founded their own production company, one did not, while 40+%
  of the context created nothing;
* the cardinality distribution of ``hasWonPrize`` (Figure 8) — *not*
  notable: the query wins film prizes just like its context;
* the FindNC-vs-RWMult comparison (Figure 9) — the baseline's mixed
  context makes ``actedIn`` look falsely notable.

Run:  python examples/actors_comparison.py
"""

from __future__ import annotations

from repro import FindNC, rw_mult
from repro.core import build_distributions
from repro.datasets import ACTORS_DOMAIN, load_dataset

QUERY = list(ACTORS_DOMAIN.entities[:5])
CONTEXT_SIZE = 100


def bar(probability: float, width: int = 40) -> str:
    return "#" * max(0, round(probability * width))


def show_distribution(graph, dists, channel: str) -> None:
    if channel == "instance":
        rows = dists.instance_rows()
    else:
        rows = dists.cardinality_rows()
    total_q = sum(q for _, q, _ in rows) or 1
    total_c = sum(c for _, _, c in rows) or 1
    for value, q, c in rows[:12]:
        print(
            f"    {str(value)[:28]:<28} query {bar(q / total_q):<20.20} "
            f"context {bar(c / total_c)}"
        )
    if len(rows) > 12:
        print(f"    ... ({len(rows) - 12} more values)")


def main() -> None:
    graph = load_dataset("yago", scale=2.0)
    finder = FindNC(graph, context_size=CONTEXT_SIZE, rng=11)
    result = finder.run(QUERY)

    print(f"Query:  {QUERY}")
    print(f"Context (top 10 of {len(result.context)}): "
          f"{result.context.names(graph, 10)}\n")

    print("Figure 7 - instance distribution of 'created':")
    created = build_distributions(graph, result.query, result.context.nodes, "created")
    show_distribution(graph, created, "instance")
    verdict = result.result_for("created")
    print(f"  -> p = {verdict.inst_p_value:.4f}: "
          f"{'NOTABLE' if verdict.notable else 'not notable'}\n")

    print("Figure 8 - cardinality distribution of 'hasWonPrize':")
    prizes = build_distributions(graph, result.query, result.context.nodes, "hasWonPrize")
    show_distribution(graph, prizes, "cardinality")
    verdict = result.result_for("hasWonPrize")
    print(f"  -> p = {verdict.min_p_value:.4f}: "
          f"{'NOTABLE' if verdict.notable else 'not notable'}\n")

    print("Figure 9 - FindNC vs RWMult significance probabilities:")
    baseline = rw_mult(graph, context_size=CONTEXT_SIZE, damping=0.2, rng=11).run(QUERY)
    find_p = result.significance_probabilities()
    base_p = baseline.significance_probabilities()
    print(f"    {'label':<18} {'FindNC':>8} {'RWMult':>8}")
    for label in sorted(set(find_p) | set(base_p)):
        fp = find_p.get(label, 1.0)
        bp = base_p.get(label, 1.0)
        flag = ""
        if bp <= 0.05 < fp:
            flag = "  <- false positive of the baseline"
        print(f"    {label:<18} {fp:8.4f} {bp:8.4f}{flag}")


if __name__ == "__main__":
    main()
