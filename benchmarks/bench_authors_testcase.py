"""Section 4.2, second test case — {Douglas Adams, Terry Pratchett}, |C|=30.

Paper claims asserted:
* ``influences`` is notable: both authors influenced the same writer, who
  has only a handful of influencers in the whole graph ("this result is
  definitely unexpected");
* ``created`` is *not* notable: "the query nodes also only created their
  own works ... this is an expected result and thus not notable".
"""

from conftest import run_once

from repro.eval.experiments import authors_testcase


def test_authors_testcase(benchmark, setting):
    table = run_once(benchmark, authors_testcase, setting)
    print()
    print(table.render())

    rows = {label: (p, notable) for label, p, notable in table.rows}

    influences_p, influences_notable = rows["influences"]
    assert influences_notable and influences_p <= 0.05, (
        f"influences must be notable (p={influences_p:.4f})"
    )

    created_p, created_notable = rows["created"]
    assert not created_notable and created_p > 0.05, (
        f"created must not be notable (p={created_p:.4f})"
    )
