"""YAGO-style TSV fact IO.

YAGO 2.5 "core facts" ship as tab-separated ``subject predicate object``
lines (sometimes with a leading fact id). This module reads and writes that
shape; values wrapped in double quotes become literals, everything else an
IRI.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import ParseError
from repro.store.terms import IRI, Literal, Term
from repro.store.triples import Triple


def _parse_term(token: str) -> Term:
    token = token.strip()
    if token.startswith("<") and token.endswith(">"):
        token = token[1:-1]
        return IRI(token)
    if len(token) >= 2 and token.startswith('"') and token.endswith('"'):
        return Literal(token[1:-1])
    return IRI(token)


def parse_tsv_line(line: str, line_number: int | None = None) -> Triple | None:
    """Parse one TSV fact line; ``None`` for blank lines and comments.

    A ``#``-initial line is a comment only when it contains no tabs —
    YAGO dumps use ``#``-prefixed fact identifiers in the first column of
    four-column lines.
    """
    stripped = line.rstrip("\n")
    if not stripped.strip():
        return None
    if stripped.lstrip().startswith("#") and "\t" not in stripped:
        return None
    fields = stripped.split("\t")
    if len(fields) == 4:
        # YAGO dumps carry a fact identifier in the first column.
        fields = fields[1:]
    if len(fields) != 3:
        raise ParseError(
            f"expected 3 (or 4) tab-separated fields, got {len(fields)}", line_number
        )
    subject = _parse_term(fields[0])
    predicate = _parse_term(fields[1])
    obj = _parse_term(fields[2])
    if not isinstance(subject, IRI) or not isinstance(predicate, IRI):
        raise ParseError("subject and predicate must not be literals", line_number)
    return Triple(subject, predicate, obj)


def parse_tsv_facts(text: "str | Iterable[str]") -> Iterator[Triple]:
    """Parse YAGO-style TSV facts from a string or iterable of lines."""
    lines = text.splitlines() if isinstance(text, str) else text
    for number, line in enumerate(lines, start=1):
        triple = parse_tsv_line(line, number)
        if triple is not None:
            yield triple


def serialize_tsv_facts(triples: Iterable[Triple]) -> str:
    """Serialize triples as TSV (literals double-quoted)."""

    def term_token(term: Term) -> str:
        if isinstance(term, Literal):
            return f'"{term.value}"'
        return str(term)

    return "\n".join(
        "\t".join((term_token(t.subject), term_token(t.predicate), term_token(t.object)))
        for t in triples
    )


def load_tsv_file(path: str) -> Iterator[Triple]:
    """Stream-parse a TSV fact file from disk."""
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            triple = parse_tsv_line(line, number)
            if triple is not None:
                yield triple
