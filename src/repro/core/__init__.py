"""The paper's primary contribution: notable characteristics search.

Pipeline (Problem 1): a query set ``Q`` is expanded into a context set
``C`` by a similarity function sigma (:mod:`repro.core.context`), then every
edge label touching ``Q ∪ C`` is scored by a discrimination function delta
(:mod:`repro.core.discrimination`) over its instance and cardinality
distributions (:mod:`repro.core.distributions`). The reference pipeline —
``ContextRW`` + multinomial test — is **FindNC**; the baseline — PPR context
+ multinomial test — is **RWMult** (:mod:`repro.core.findnc`).
"""

from repro.core.context import (
    ContextResult,
    ContextRW,
    ContextSelector,
    RandomWalkContext,
)
from repro.core.discrimination import (
    ChiSquareDiscriminator,
    DiscriminationResult,
    Discriminator,
    EMDDiscriminator,
    KLDiscriminator,
    MultinomialDiscriminator,
)
from repro.core.distributions import (
    NONE_INSTANCE,
    CharacteristicDistributions,
    build_all_distributions,
    build_distributions,
    cardinality_counts,
    instance_counts,
)
from repro.core.extensions import (
    CompositeCharacteristicFinder,
    CompositeLabel,
    CorrelationFinder,
    CorrelationResult,
    build_composite_distributions,
)
from repro.core.findnc import FindNC, FindNCResult, NotableCharacteristic, rw_mult
from repro.core.similarity import jaccard_neighbors, shared_neighbor_count

__all__ = [
    "ChiSquareDiscriminator",
    "CharacteristicDistributions",
    "CompositeCharacteristicFinder",
    "CompositeLabel",
    "ContextResult",
    "ContextRW",
    "ContextSelector",
    "CorrelationFinder",
    "CorrelationResult",
    "DiscriminationResult",
    "Discriminator",
    "EMDDiscriminator",
    "FindNC",
    "FindNCResult",
    "KLDiscriminator",
    "MultinomialDiscriminator",
    "NONE_INSTANCE",
    "NotableCharacteristic",
    "RandomWalkContext",
    "build_all_distributions",
    "build_composite_distributions",
    "build_distributions",
    "cardinality_counts",
    "instance_counts",
    "jaccard_neighbors",
    "rw_mult",
    "shared_neighbor_count",
]
