"""Property-based tests (hypothesis) for the knowledge-graph model.

Invariants: inverse closure symmetry, degree bookkeeping, Equation 1
weights in (0, 1), PageRank vectors are distributions, Kendall distance is
a metric.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import kendall_switches
from repro.graph.labels import inverse_label
from repro.graph.model import KnowledgeGraph
from repro.walk.pagerank import personalized_pagerank

node_names = st.sampled_from([f"n{i}" for i in range(6)])
label_names = st.sampled_from(["r", "s", "t"])
fact_lists = st.lists(
    st.tuples(node_names, label_names, node_names), min_size=1, max_size=25
)


@given(fact_lists)
@settings(max_examples=60, deadline=None)
def test_inverse_closure_symmetry(facts):
    graph = KnowledgeGraph()
    for s, l, o in facts:
        graph.add_edge(s, l, o)
    for edge in graph.edges():
        assert graph.has_edge(edge.target, inverse_label(edge.label), edge.source)


@given(fact_lists)
@settings(max_examples=60, deadline=None)
def test_degree_sums_equal_edge_count(facts):
    graph = KnowledgeGraph()
    for s, l, o in facts:
        graph.add_edge(s, l, o)
    out_total = sum(graph.out_degree(n) for n in graph.nodes())
    in_total = sum(graph.in_degree(n) for n in graph.nodes())
    assert out_total == graph.edge_count
    assert in_total == graph.edge_count


@given(fact_lists)
@settings(max_examples=60, deadline=None)
def test_label_frequencies_partition_unity(facts):
    graph = KnowledgeGraph()
    for s, l, o in facts:
        graph.add_edge(s, l, o)
    total = sum(graph.label_frequency(label) for label in graph.edge_labels)
    assert abs(total - 1.0) < 1e-9
    for label in graph.edge_labels:
        assert 0.0 < graph.label_weight(label) < 1.0 or graph.label_frequency(label) == 1.0


@given(fact_lists)
@settings(max_examples=30, deadline=None)
def test_pagerank_is_distribution(facts):
    graph = KnowledgeGraph()
    for s, l, o in facts:
        graph.add_edge(s, l, o)
    p = personalized_pagerank(graph, [0], iterations=5)
    assert abs(p.sum() - 1.0) < 1e-9
    assert (p >= -1e-12).all()


@given(fact_lists)
@settings(max_examples=40, deadline=None)
def test_edge_removal_restores_counts(facts):
    graph = KnowledgeGraph()
    for s, l, o in facts:
        graph.add_edge(s, l, o)
    before = graph.edge_count
    s, l, o = facts[0]
    existed = graph.has_edge(s, l, o)
    graph.remove_edge(s, l, o)
    graph.add_edge(s, l, o)
    assert graph.edge_count == before if existed else graph.edge_count >= before


permutations = st.permutations(list(range(7)))


@given(permutations, permutations, permutations)
@settings(max_examples=60, deadline=None)
def test_kendall_triangle_inequality(a, b, c):
    ab = kendall_switches(a, b)
    bc = kendall_switches(b, c)
    ac = kendall_switches(a, c)
    assert ac <= ab + bc


@given(permutations, permutations)
@settings(max_examples=60, deadline=None)
def test_kendall_symmetry_and_identity(a, b):
    assert kendall_switches(a, a) == 0
    assert kendall_switches(a, b) == kendall_switches(b, a)
    n = len(a)
    assert kendall_switches(a, b) <= n * (n - 1) // 2
