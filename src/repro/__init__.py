"""repro — Notable Characteristics Search through Knowledge Graphs.

A complete, from-scratch reproduction of Mottin et al., EDBT 2018
(arXiv:1802.04060): given a small set of query entities in a knowledge
graph, find the *notable characteristics* — the properties whose
distribution over the query deviates significantly from the distribution
over similar entities (the *context*).

Quick start::

    from repro import FindNC
    from repro.datasets import figure1_graph

    graph = figure1_graph()
    finder = FindNC(graph, context_size=3, rng=7)
    result = finder.run(["Angela_Merkel", "Barack_Obama"])
    print(result.summary(graph))

Package map:

* :mod:`repro.core` — context selection + FindNC (the contribution)
* :mod:`repro.graph` — knowledge-graph model (Definition 1)
* :mod:`repro.store` — triple-store substrate
* :mod:`repro.walk` — random walks / PPR / metapath mining
* :mod:`repro.stats` — multinomial test and divergences
* :mod:`repro.datasets` — synthetic YAGO & LinkedMDB + ground truth
* :mod:`repro.eval` — metrics and the per-figure experiment harness
* :mod:`repro.service` — concurrent query engine + cache + HTTP API
  (``repro serve``)
* :mod:`repro.disk` — snapshot store, bulk ingest, and the versioned
  :class:`~repro.disk.registry.SnapshotRegistry` behind multi-version
  hot-swap serving (``repro publish`` / ``POST /admin/reload``)
"""

from repro.core.context import ContextResult, ContextRW, ContextSelector, RandomWalkContext
from repro.core.discrimination import (
    DiscriminationResult,
    Discriminator,
    EMDDiscriminator,
    KLDiscriminator,
    MultinomialDiscriminator,
)
from repro.core.distributions import (
    CharacteristicDistributions,
    build_all_distributions,
    build_distributions,
)
from repro.core.findnc import FindNC, FindNCResult, NotableCharacteristic, rw_mult
from repro.errors import ReproError
from repro.graph.builder import GraphBuilder
from repro.graph.model import KnowledgeGraph
from repro.service.engine import NCEngine, SearchOutcome, SwapOutcome

__version__ = "1.9.0"

__all__ = [
    "CharacteristicDistributions",
    "ContextResult",
    "ContextRW",
    "ContextSelector",
    "DiscriminationResult",
    "Discriminator",
    "EMDDiscriminator",
    "FindNC",
    "FindNCResult",
    "GraphBuilder",
    "KLDiscriminator",
    "KnowledgeGraph",
    "MultinomialDiscriminator",
    "NCEngine",
    "NotableCharacteristic",
    "RandomWalkContext",
    "ReproError",
    "SearchOutcome",
    "SwapOutcome",
    "__version__",
    "build_all_distributions",
    "build_distributions",
    "rw_mult",
]
