"""Unit tests for the dataset registry."""

import pytest

from repro.datasets.loader import clear_dataset_cache, dataset_names, load_dataset


class TestLoader:
    def test_dataset_names(self):
        assert set(dataset_names()) == {"yago", "linkedmdb", "figure1"}

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("wikidata")

    def test_memoization(self):
        a = load_dataset("figure1")
        b = load_dataset("figure1")
        assert a is b

    def test_cache_clear(self):
        a = load_dataset("figure1")
        clear_dataset_cache()
        b = load_dataset("figure1")
        assert a is not b

    def test_scale_is_part_of_key(self):
        a = load_dataset("yago", scale=0.3)
        b = load_dataset("yago", scale=0.4)
        assert a is not b
        assert b.node_count > a.node_count

    def test_explicit_seed(self):
        a = load_dataset("yago", scale=0.3, seed=1)
        b = load_dataset("yago", scale=0.3, seed=2)
        assert a is not b


class TestToSnapshot:
    def test_routes_through_ingester_byte_identically(self, tmp_path):
        import numpy as np

        from repro.datasets.loader import to_snapshot
        from repro.disk import open_snapshot
        from repro.graph.compiled import ARRAY_FIELDS

        graph = load_dataset("figure1")
        path = tmp_path / "figure1.snap"
        stats = to_snapshot("figure1", path)
        assert stats.nodes == graph.node_count
        assert stats.edges == graph.edge_count
        compiled = graph.compiled()
        with open_snapshot(path) as snap:
            for name, _ in ARRAY_FIELDS:
                assert np.array_equal(
                    getattr(snap.compiled, name), getattr(compiled, name)
                ), name
            assert list(snap.node_names) == graph._node_names_list()
            assert snap.header.version == graph.version
            assert snap.transition() is not None

    def test_unknown_dataset_raises(self, tmp_path):
        from repro.datasets.loader import to_snapshot

        with pytest.raises(KeyError):
            to_snapshot("wikidata", tmp_path / "x.snap")
