"""Standing CI soak: ``repro loadgen`` against a live server + hot swap.

The scripted smoke steps exercise each serving feature once; this soak
runs them *together* the way production would see them: a registry-backed
server (process executor with micro-batching enabled, the PR-8 default
worth soaking) absorbs a short Zipf open-loop run from the real
``repro loadgen`` CLI while a new snapshot version is published and
hot-swapped in mid-stream, and afterwards ``/v1/metrics`` must still
answer a well-formed Prometheus exposition. It fails on:

* loadgen error rate above ``--max-error-rate`` (default 2%) or zero
  completed requests — requests may never hang or silently drop across
  the swap;
* the mid-run ``POST /v1/admin/reload`` not actually swapping;
* the mid-run ``POST /v1/admin/ingest`` (a small live statement batch,
  ``?wait=1`` so the append → merge → swap pipeline completes inline)
  not being accepted, or ``/v1/healthz``'s ``version_id`` not advancing
  to the merged version — live ingest must land under load with zero
  request failures (the error-rate gate covers the reads);
* a malformed metrics exposition, or the serving/batching metric
  families missing from it;
* no complete request trace after the soak: the server samples every
  request (``trace_sample_rate=1.0`` + exemplars), and at least one
  retained ``http.search`` trace must contain the full cross-process
  span tree — ``http.*`` → ``engine.*`` → ``worker.*`` phases — or the
  pickle-boundary stitching regressed.

This is the remaining headroom ROADMAP item 4 called out: observability
validated under sustained load with a topology change, not just by a
one-shot scrape.

Usage (from the repo root)::

    python tools/ci_soak.py --snapshot .ci-cache/snapshots/yago-s05.snap
    python tools/ci_soak.py --duration 20 --rate 25 --max-error-rate 0.01
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main as repro_main  # noqa: E402
from repro.disk import SnapshotRegistry  # noqa: E402
from repro.service.engine import NCEngine  # noqa: E402
from repro.service.metrics import CONTENT_TYPE, validate_exposition  # noqa: E402
from repro.service.server import create_server  # noqa: E402

#: Metric families the soak asserts are present and correctly typed in
#: the post-soak exposition — the serving path plus the PR-8 batching
#: observability.
REQUIRED_FAMILIES = {
    "nc_http_requests_total": "counter",
    "nc_http_request_latency_seconds": "histogram",
    "nc_engine_swaps_total": "counter",
    "nc_worker_batch_size": "histogram",
    "nc_kernel_active": "gauge",
    "nc_ingest_batches_total": "counter",
    "nc_delta_depth": "gauge",
}

#: The live statement batch POSTed mid-soak: three fresh-subject adds
#: (new vocabulary, so the merged snapshot visibly grows) in the
#: ``+``-prefixed N-Triples delta dialect of ``POST /v1/admin/ingest``.
INGEST_BATCH = (
    b"+ <soak_ingest_a> <soak_rel> <soak_ingest_b> .\n"
    b"+ <soak_ingest_b> <soak_rel> <soak_ingest_c> .\n"
    b"+ <soak_ingest_c> <soak_rel> <soak_ingest_a> .\n"
)


def ensure_snapshot(path: Path, scale: float) -> Path:
    """Reuse an existing compiled snapshot or compile one at ``path``."""
    if not path.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
        code = repro_main(
            ["compile", "yago", str(path), "--scale", str(scale)]
        )
        if code != 0:
            raise SystemExit(f"snapshot compile failed with exit code {code}")
    return path


def run_loadgen(url: str, args: argparse.Namespace) -> dict:
    """Run the real ``repro loadgen`` CLI against ``url``; return its JSON."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "repro", "loadgen",
        "--url", url,
        "--mode", "open",
        "--rate", str(args.rate),
        "--duration", str(args.duration),
        "--dataset", "yago",
        "--scale", str(args.scale),
        "--entities", str(args.entities),
        "--seed", str(args.seed),
        "--timeout", str(args.timeout),
        "--json",
    ]
    run = subprocess.run(
        command, capture_output=True, text=True, env=env,
        timeout=args.duration * 4 + 120,
    )
    sys.stderr.write(run.stderr)
    if run.returncode != 0:
        raise SystemExit(
            f"repro loadgen exited {run.returncode}; stdout:\n{run.stdout}"
        )
    return json.loads(run.stdout)


def main(argv: "list[str] | None" = None) -> int:
    """Boot the server, soak it, swap mid-run, audit the metrics."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        help="compiled snapshot to publish (reused if present, else "
        "compiled here; default: a temp file)",
    )
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--context-size", type=int, default=30)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-batch", type=int, default=4)
    parser.add_argument("--batch-window-ms", type=float, default=5.0)
    parser.add_argument("--rate", type=float, default=15.0)
    parser.add_argument("--duration", type=float, default=8.0)
    parser.add_argument("--entities", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument(
        "--max-error-rate",
        type=float,
        default=0.02,
        help="maximum tolerated fraction of failed loadgen requests",
    )
    args = parser.parse_args(argv)

    snapshot = args.snapshot or Path(tempfile.gettempdir()) / (
        f"repro-soak-{os.getpid()}.snap"
    )
    owns_snapshot = args.snapshot is None
    try:
        ensure_snapshot(snapshot, args.scale)
        registry_dir = tempfile.mkdtemp(prefix="ci-soak-registry-")
        if repro_main(["publish", str(snapshot), registry_dir]) != 0:
            raise SystemExit("publishing snapshot v1 failed")
        registry = SnapshotRegistry(registry_dir, create=False)

        engine = NCEngine(
            registry.open_view(),
            context_size=args.context_size,
            max_workers=args.workers,
            executor="process",
            max_batch=args.max_batch,
            batch_window_ms=args.batch_window_ms,
            seed=11,
            trace_sample_rate=1.0,
            metrics_exemplars=True,
        )
        engine.pin()
        server = create_server(engine, port=0, registry=registry, retain=2)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = f"http://127.0.0.1:{server.server_address[1]}"

        # Mid-run topology change: publish v2 halfway through the soak
        # and hot-swap onto it while loadgen traffic is in flight.
        swap_outcome: dict = {}
        swap_errors: "list[str]" = []

        def swap_mid_run() -> None:
            try:
                if repro_main(["publish", str(snapshot), registry_dir]) != 0:
                    raise RuntimeError("publishing snapshot v2 failed")
                request = urllib.request.Request(
                    f"{url}/v1/admin/reload", data=b"", method="POST"
                )
                with urllib.request.urlopen(request, timeout=30) as response:
                    swap_outcome.update(json.loads(response.read()))
            except Exception as error:  # noqa: BLE001 - reported below
                swap_errors.append(repr(error))

        # Mid-run live ingest: POST a small statement batch three quarters
        # of the way through (after the swap has landed) with ?wait=1 so
        # the append -> merge -> swap pipeline completes inline; the
        # healthz version_id must advance to the merged version.
        ingest_outcome: dict = {}
        ingest_errors: "list[str]" = []

        def ingest_mid_run() -> None:
            try:
                with urllib.request.urlopen(
                    f"{url}/v1/healthz", timeout=30
                ) as response:
                    ingest_outcome["version_before"] = json.loads(
                        response.read()
                    )["version_id"]
                request = urllib.request.Request(
                    f"{url}/v1/admin/ingest?format=nt&wait=1",
                    data=INGEST_BATCH,
                    method="POST",
                )
                with urllib.request.urlopen(request, timeout=60) as response:
                    ingest_outcome.update(json.loads(response.read()))
                with urllib.request.urlopen(
                    f"{url}/v1/healthz", timeout=30
                ) as response:
                    ingest_outcome["version_after"] = json.loads(
                        response.read()
                    )["version_id"]
            except Exception as error:  # noqa: BLE001 - reported below
                ingest_errors.append(repr(error))

        swap_timer = threading.Timer(args.duration / 2, swap_mid_run)
        swap_timer.start()
        ingest_timer = threading.Timer(args.duration * 0.75, ingest_mid_run)
        ingest_timer.start()
        try:
            report = run_loadgen(url, args)
        finally:
            swap_timer.cancel()  # no-op once fired; stops it on loadgen failure
            ingest_timer.cancel()
        swap_timer.join(timeout=60)  # a fired swap may still be publishing
        ingest_timer.join(timeout=120)  # a fired ingest may still be merging

        # -- checks -------------------------------------------------------
        failures: "list[str]" = []
        requests = int(report.get("requests", 0))
        completed = int(report.get("completed", 0))
        error_rate = 1.0 - completed / requests if requests else 1.0
        if completed == 0:
            failures.append("loadgen completed zero requests")
        if error_rate > args.max_error_rate:
            failures.append(
                f"error rate {error_rate:.2%} exceeds "
                f"{args.max_error_rate:.2%} (errors: {report.get('errors')})"
            )
        if swap_errors:
            failures.append(f"mid-run swap failed: {swap_errors[0]}")
        elif not swap_outcome.get("swapped"):
            failures.append(f"mid-run reload did not swap: {swap_outcome}")
        elif engine.graph.version < swap_outcome.get("new_version"):
            # The mid-run ingest may legitimately advance past the
            # reload's version, so "at least" is the invariant here.
            failures.append(
                f"engine still serving v{engine.graph.version} after "
                f"swapping to v{swap_outcome.get('new_version')}"
            )

        if ingest_errors:
            failures.append(f"mid-run ingest failed: {ingest_errors[0]}")
        elif not ingest_outcome.get("accepted"):
            failures.append(f"mid-run ingest not accepted: {ingest_outcome}")
        else:
            merged = ingest_outcome.get("merged_version")
            before = ingest_outcome.get("version_before")
            after = ingest_outcome.get("version_after")
            if (
                not isinstance(merged, int)
                or after != merged
                or not isinstance(before, int)
                or after <= before
            ):
                failures.append(
                    f"healthz version_id did not advance to the merged "
                    f"ingest version (before={before}, merged={merged}, "
                    f"after={after})"
                )

        with urllib.request.urlopen(f"{url}/v1/metrics", timeout=30) as response:
            content_type = response.headers["Content-Type"]
            body = response.read().decode("utf-8")
        if content_type != CONTENT_TYPE:
            failures.append(f"metrics content type {content_type!r}")
        try:
            families = validate_exposition(body)
        except ValueError as error:
            failures.append(f"malformed metrics exposition: {error}")
            families = {}
        for family, kind in REQUIRED_FAMILIES.items():
            if families.get(family) != kind:
                failures.append(
                    f"metric family {family} missing or not a {kind} "
                    f"(got {families.get(family)!r})"
                )
        if families and " # {" not in body:
            failures.append(
                "no exemplars in the metrics exposition despite "
                "metrics_exemplars=True and full trace sampling"
            )

        # Every request was sampled; at least one retained search trace
        # must carry the complete cross-process span tree (cache hits
        # legitimately have no worker spans, so scan until one does).
        complete_trace: "str | None" = None
        try:
            with urllib.request.urlopen(
                f"{url}/v1/debug/traces?limit=50", timeout=30
            ) as response:
                listing = json.loads(response.read())
            searches = [
                entry
                for entry in listing.get("traces", [])
                if entry["name"] == "http.search"
            ]
            if not searches:
                failures.append("no retained http.search traces after the soak")
            seen_names: "set[str]" = set()
            for entry in searches:
                with urllib.request.urlopen(
                    f"{url}/v1/debug/traces/{entry['trace_id']}", timeout=30
                ) as response:
                    trace = json.loads(response.read())
                names = {span["name"] for span in trace["spans"]}
                seen_names |= names
                if all(
                    any(name.startswith(prefix) for name in names)
                    for prefix in ("http.", "engine.", "worker.")
                ):
                    complete_trace = entry["trace_id"]
                    break
            if searches and complete_trace is None:
                failures.append(
                    "no search trace with complete http->engine->worker "
                    f"span tree (saw phases: {sorted(seen_names)})"
                )
        except Exception as error:  # noqa: BLE001 - reported as a failure
            failures.append(f"trace fetch failed: {error!r}")

        server.shutdown()
        server.server_close()
        engine.close()

        latency = report.get("latency_s", {})
        print(
            f"soak: {completed}/{requests} requests at "
            f"{report.get('achieved_rps', 0.0):.1f} req/s "
            f"(error rate {error_rate:.2%}), p99 "
            f"{latency.get('p99', 0.0) * 1e3:.1f}ms, swap "
            f"v{swap_outcome.get('old_version')} -> "
            f"v{swap_outcome.get('new_version')}, ingest "
            f"{ingest_outcome.get('run')} -> "
            f"v{ingest_outcome.get('merged_version')} (healthz "
            f"v{ingest_outcome.get('version_before')} -> "
            f"v{ingest_outcome.get('version_after')}), "
            f"{len(families)} well-formed metric families, "
            f"complete trace {complete_trace or 'MISSING'}"
        )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("ci soak: ok")
        return 0
    finally:
        if owns_snapshot and snapshot.exists():
            snapshot.unlink()


if __name__ == "__main__":
    raise SystemExit(main())
