"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from collections.abc import Sequence, Sized
from typing import Any, TypeVar

import numpy as np

T = TypeVar("T")


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_type(value: Any, expected: type[T], name: str) -> T:
    """Raise :class:`TypeError` unless ``value`` is an ``expected`` instance."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value


def require_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that a numeric parameter is positive (or non-negative)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_unit_interval(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def require_non_empty(value: Sized, name: str) -> Any:
    """Validate that a container has at least one element."""
    if len(value) == 0:
        raise ValueError(f"{name} must not be empty")
    return value


def require_probability_vector(
    values: Sequence[float] | np.ndarray, name: str, *, tolerance: float = 1e-9
) -> np.ndarray:
    """Validate and return ``values`` as a probability vector.

    The vector must be non-empty, contain no negative entries and sum to
    one within ``tolerance``.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D vector")
    if np.any(array < 0):
        raise ValueError(f"{name} must not contain negative probabilities")
    total = float(array.sum())
    if abs(total - 1.0) > tolerance:
        raise ValueError(f"{name} must sum to 1 (got {total})")
    return array


def normalize_counts(
    values: Sequence[float] | np.ndarray, name: str = "counts"
) -> np.ndarray:
    """Normalize a non-negative count vector into a probability vector."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D vector")
    if np.any(array < 0):
        raise ValueError(f"{name} must be non-negative")
    total = float(array.sum())
    if total <= 0:
        raise ValueError(f"{name} must have a positive sum")
    return array / total
