"""Shared utilities: seeded RNG helpers, timers, table rendering, validation."""

from repro.util.rng import RandomSource, derive_rng, ensure_rng
from repro.util.tables import Table, format_table
from repro.util.timer import Stopwatch, timed
from repro.util.validation import (
    require,
    require_non_empty,
    require_positive,
    require_probability_vector,
    require_type,
)

__all__ = [
    "RandomSource",
    "Stopwatch",
    "Table",
    "derive_rng",
    "ensure_rng",
    "format_table",
    "require",
    "require_non_empty",
    "require_positive",
    "require_probability_vector",
    "require_type",
    "timed",
]
