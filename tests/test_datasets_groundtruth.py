"""Unit tests for the crowd-study simulator."""

import pytest

from repro.datasets.groundtruth import CrowdConfig, CrowdSimulator
from repro.datasets.seeds import ACTORS_DOMAIN


@pytest.fixture()
def simulator(yago_small):
    return CrowdSimulator(yago_small, rng=3)


@pytest.fixture()
def actors_query(yago_small):
    return [yago_small.node_id(n) for n in ACTORS_DOMAIN.entities[:3]]


class TestCandidatePool:
    def test_pool_is_people_only(self, yago_small, simulator, actors_query):
        pool = simulator.candidate_pool(actors_query)
        for node in pool[:200]:
            types = yago_small.types_of(node)
            assert types, yago_small.node_name(node)

    def test_pool_excludes_query(self, simulator, actors_query):
        pool = simulator.candidate_pool(actors_query)
        assert not set(actors_query) & set(pool)

    def test_fallback_for_custom_graphs(self):
        from repro.graph.builder import GraphBuilder

        graph = (
            GraphBuilder()
            .typed("cam1", "camera")
            .typed("cam2", "camera")
            .typed("cam3", "camera")
            .build()
        )
        sim = CrowdSimulator(graph, rng=1)
        pool = sim.candidate_pool([graph.node_id("cam1")])
        names = {graph.node_name(n) for n in pool}
        assert names == {"cam2", "cam3"}


class TestRelevance:
    def test_same_profession_scores_higher(self, yago_small, simulator, actors_query):
        scores = simulator.relevance_scores(actors_query)
        from repro.graph.hierarchy import TypeHierarchy

        hierarchy = TypeHierarchy(yago_small)
        actors = hierarchy.instances("actor", transitive=False) - set(actors_query)
        politicians = hierarchy.instances("politician", transitive=False)
        actor_scores = [scores.get(a, 0) for a in actors]
        politician_scores = [scores.get(p, 0) for p in politicians]
        assert sum(actor_scores) / len(actor_scores) > sum(politician_scores) / len(
            politician_scores
        )


class TestSimulate:
    def test_ground_truth_size_band(self, simulator, actors_query):
        truth = simulator.simulate(actors_query)
        # The paper's study produced 36-76 entities; the simulator stays in
        # a comparable band.
        assert 20 <= len(truth) <= 140

    def test_min_mentions_enforced(self, simulator, actors_query):
        truth = simulator.simulate(actors_query)
        assert all(count >= 2 for count in truth.mention_counts.values())

    def test_ranked_by_mentions(self, simulator, actors_query):
        truth = simulator.simulate(actors_query)
        counts = [truth.mention_counts[n] for n in truth.ranked]
        assert counts == sorted(counts, reverse=True)

    def test_deterministic_per_seed(self, yago_small, actors_query):
        a = CrowdSimulator(yago_small, rng=9).simulate(actors_query)
        b = CrowdSimulator(yago_small, rng=9).simulate(actors_query)
        assert a.entities == b.entities
        assert a.ranked == b.ranked

    def test_query_not_in_ground_truth(self, simulator, actors_query):
        truth = simulator.simulate(actors_query)
        assert not set(actors_query) & truth.entities

    def test_names_helper(self, yago_small, simulator, actors_query):
        truth = simulator.simulate(actors_query)
        names = truth.names(yago_small)
        assert len(names) == len(truth.ranked)

    def test_custom_config(self, yago_small, actors_query):
        config = CrowdConfig(workers=5, entities_per_worker=5, min_mentions=1)
        truth = CrowdSimulator(yago_small, config=config, rng=1).simulate(actors_query)
        assert truth.workers == 5
        assert len(truth) <= 25

    def test_empty_pool_graph(self):
        from repro.graph.builder import GraphBuilder

        graph = GraphBuilder().node("a").node("b").build()
        sim = CrowdSimulator(graph, rng=1)
        truth = sim.simulate([graph.node_id("a")])
        assert len(truth) == 0
