"""Dictionary encoding of terms to dense integer ids.

Triple stores dictionary-encode terms so indexes operate on integers.
Ids are dense, start at 0 and are stable for the lifetime of the dictionary,
which lets downstream components (the knowledge-graph adjacency matrices)
use them directly as array offsets.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.store.terms import Term


class TermDictionary:
    """Bidirectional mapping ``Term <-> int``.

    >>> from repro.store.terms import IRI
    >>> d = TermDictionary()
    >>> d.encode(IRI("a"))
    0
    >>> d.encode(IRI("b"))
    1
    >>> d.encode(IRI("a"))   # idempotent
    0
    >>> str(d.decode(1))
    'b'
    """

    __slots__ = ("_term_to_id", "_id_to_term")

    def __init__(self) -> None:
        self._term_to_id: dict[Term, int] = {}
        self._id_to_term: list[Term] = []

    def encode(self, term: Term) -> int:
        """Return the id for ``term``, assigning a fresh one if needed."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def encode_many(self, terms: "list[Term] | tuple[Term, ...]") -> list[int]:
        return [self.encode(t) for t in terms]

    def lookup(self, term: Term) -> int | None:
        """Return the id for ``term`` or ``None`` when unseen."""
        return self._term_to_id.get(term)

    def decode(self, term_id: int) -> Term:
        """Return the term for ``term_id`` (raises ``IndexError`` if unknown)."""
        if term_id < 0:
            raise IndexError(f"term id must be non-negative, got {term_id}")
        return self._id_to_term[term_id]

    def __contains__(self, term: object) -> bool:
        return term in self._term_to_id

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __iter__(self) -> Iterator[Term]:
        return iter(self._id_to_term)

    def items(self) -> Iterator[tuple[Term, int]]:
        return iter(self._term_to_id.items())
