"""Figure 7 — instance distribution of ``created`` for the actors query.

Paper claims asserted:
* the context misses the edge in a large fraction of cases (paper: 43%;
  we assert the None bucket carries 30-70% of the context mass);
* the query deviates (most of its members created their own distinct
  company) and the multinomial test marks the characteristic notable.
"""

from conftest import run_once

from repro.core.findnc import FindNC
from repro.eval.experiments import distribution_figure, resolve_domain_queries
from repro.datasets.seeds import ACTORS_DOMAIN


def test_fig7_created_instance_distribution(benchmark, setting):
    table = run_once(benchmark, distribution_figure, setting, label="created")
    print()
    print(table.render())

    by_value = {value: (q, c) for value, q, c in table.rows}
    assert "None" in by_value, "the None bucket must be part of the support"
    none_query, none_context = by_value["None"]
    assert 0.30 <= none_context <= 0.70, (
        f"context None share should be large (paper: 43%), got {none_context:.2f}"
    )
    assert none_query < none_context, "the query creates more than its context"
    # All non-None context values are (near-)singletons: production
    # companies are personal.
    non_none = [c for value, (q, c) in by_value.items() if value != "None" and c > 0]
    assert max(non_none) <= 2.5 / sum(
        1 for _ in non_none
    ), "non-None context values are spread thin"

    # End-to-end verdict: notable.
    graph = setting.graph()
    query = resolve_domain_queries(graph, ACTORS_DOMAIN)[3]
    assert len(query) == 5
    finder = FindNC(graph, context_size=100, rng=setting.algorithm_seed)
    result = finder.run(query)
    created = result.result_for("created")
    assert created.notable, f"'created' must be notable (p={created.min_p_value})"
    assert created.min_p_value <= 0.05
