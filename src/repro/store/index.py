"""Triple indexes over dictionary-encoded ids.

Three orderings (SPO, POS, OSP) cover all eight triple-pattern shapes with
at most one index scan, the classical design of in-memory RDF stores
(Hexastore keeps six orderings; three suffice because each pattern with two
bound positions is served by the index whose prefix matches them).
"""

from __future__ import annotations

from collections.abc import Iterator


class TwoLevelIndex:
    """Nested mapping ``first -> second -> set(third)``.

    Encodes one ordering of the triple components. Look-ups bind a prefix of
    the ordering: no components (full scan), the first, the first two, or all
    three (membership test).
    """

    __slots__ = ("_index", "_size")

    def __init__(self) -> None:
        self._index: dict[int, dict[int, set[int]]] = {}
        self._size = 0

    def add(self, first: int, second: int, third: int) -> bool:
        """Insert; return ``True`` if the entry was new."""
        level2 = self._index.setdefault(first, {})
        level3 = level2.setdefault(second, set())
        before = len(level3)
        level3.add(third)
        added = len(level3) != before
        if added:
            self._size += 1
        return added

    def remove(self, first: int, second: int, third: int) -> bool:
        """Delete; return ``True`` if the entry existed."""
        level2 = self._index.get(first)
        if level2 is None:
            return False
        level3 = level2.get(second)
        if level3 is None or third not in level3:
            return False
        level3.discard(third)
        if not level3:
            del level2[second]
            if not level2:
                del self._index[first]
        self._size -= 1
        return True

    def contains(self, first: int, second: int, third: int) -> bool:
        level2 = self._index.get(first)
        if level2 is None:
            return False
        level3 = level2.get(second)
        return level3 is not None and third in level3

    def scan(
        self, first: int | None = None, second: int | None = None
    ) -> Iterator[tuple[int, int, int]]:
        """Iterate entries matching a bound prefix.

        ``second`` may only be bound when ``first`` is bound — that is the
        contract that makes three orderings sufficient.
        """
        if first is None:
            if second is not None:
                raise ValueError("cannot bind the second component without the first")
            for f, level2 in self._index.items():
                for s, level3 in level2.items():
                    for t in level3:
                        yield (f, s, t)
            return
        level2 = self._index.get(first)
        if level2 is None:
            return
        if second is None:
            for s, level3 in level2.items():
                for t in level3:
                    yield (first, s, t)
            return
        level3 = level2.get(second)
        if level3 is None:
            return
        for t in level3:
            yield (first, second, t)

    def firsts(self) -> Iterator[int]:
        """Iterate the distinct first components."""
        return iter(self._index.keys())

    def seconds(self, first: int) -> Iterator[int]:
        """Iterate the distinct second components under ``first``."""
        return iter(self._index.get(first, {}).keys())

    def count(self, first: int | None = None, second: int | None = None) -> int:
        """Number of entries under the bound prefix (O(prefix fan-out))."""
        if first is None:
            return self._size
        level2 = self._index.get(first)
        if level2 is None:
            return 0
        if second is None:
            return sum(len(level3) for level3 in level2.values())
        return len(level2.get(second, ()))

    def __len__(self) -> int:
        return self._size
