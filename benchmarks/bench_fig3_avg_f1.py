"""Figure 3 — average F1 vs |C|, ContextRW vs RandomWalk.

Paper claims asserted: ContextRW is better on average, "performing up to
four times better for context size |C| = 100"; we assert >= 1.5x at 100
and that ContextRW wins at every cutoff >= 50.
"""

from conftest import run_once

from repro.eval.experiments import average_f1_by_context_size, context_size_sweep


def _figure3(setting):
    return average_f1_by_context_size(context_size_sweep(setting))


def test_fig3_average_f1(benchmark, setting):
    table = run_once(benchmark, _figure3, setting)
    print()
    print(table.render())

    averages = {
        (algorithm, size): value for algorithm, size, value in table.rows
    }
    assert averages[("ContextRW", 100)] >= 1.5 * averages[("RandomWalk", 100)]
    for size in (50, 100, 150, 200):
        assert averages[("ContextRW", size)] >= averages[("RandomWalk", size)], (
            f"ContextRW should win on average at |C|={size}"
        )
