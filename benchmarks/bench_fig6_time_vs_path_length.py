"""Figure 6 — ContextRW time vs maximum metapath length.

Paper claim asserted: "the time increases as the length of the metapaths
increases" — the mean runtime at max length 20 must exceed the mean at 5.
"""

from conftest import run_once

from repro.eval.experiments import time_vs_path_length
from repro.eval.metrics import mean


def test_fig6_time_vs_path_length(benchmark, setting):
    table = run_once(
        benchmark,
        time_vs_path_length,
        setting,
        query_sizes=(2, 4, 6),
    )
    print()
    print(table.render())

    def mean_at(length):
        return mean(t for _q, l, t in table.rows if l == length)

    assert mean_at(20) > mean_at(5), (
        f"longer walks must cost more time "
        f"(got {mean_at(5):.3f}s @5 vs {mean_at(20):.3f}s @20)"
    )
    # Times stay in the interactive regime the paper reports (< 20s/query).
    assert max(table.column("seconds")) < 20.0
