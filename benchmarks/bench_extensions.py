"""Future-work extensions (Section 6) on the actors scenario.

The paper closes with: "we plan to expand the notion of notable
characteristics to incorporate more complex patterns [and] explore
correlations between attributes". This bench exercises both extension
finders end-to-end and sanity-checks their outputs.
"""

from conftest import run_once

from repro.core.context import ContextRW
from repro.core.extensions import CompositeCharacteristicFinder, CorrelationFinder
from repro.datasets.seeds import ACTORS_DOMAIN
from repro.eval.experiments import resolve_domain_queries
from repro.util.tables import Table


def _extensions_table(setting):
    graph = setting.graph()
    query = resolve_domain_queries(graph, ACTORS_DOMAIN)[3]  # |Q| = 5
    context = ContextRW(graph, rng=setting.algorithm_seed).select(query, 100)

    table = Table(["kind", "characteristic", "p_or_score"], float_format=".4f")
    composite = CompositeCharacteristicFinder(
        graph, max_patterns=25, rng=setting.algorithm_seed
    )
    for result in composite.run(query, context.nodes)[:8]:
        p = result.min_p_value if result.min_p_value is not None else 1.0
        table.add_row(["composite", result.label, p])
    correlations = CorrelationFinder(graph, max_pairs=30, rng=setting.algorithm_seed)
    for result in correlations.run(query, context.nodes)[:8]:
        table.add_row(["correlation", result.label, result.p_value])
    return table


def test_extensions(benchmark, setting):
    table = run_once(benchmark, _extensions_table, setting)
    print()
    print(table.render())

    kinds = set(table.column("kind"))
    assert kinds == {"composite", "correlation"}
    assert all(0.0 <= p <= 1.0 for p in table.column("p_or_score"))
    # The 2-hop pattern space must yield real candidates on this graph.
    composites = [r for r in table.rows if r[0] == "composite"]
    assert len(composites) >= 4
