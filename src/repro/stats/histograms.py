"""Support alignment for paired distributions.

``Inst_q`` and ``Inst_c`` "have the same size, so x_i is zero if i appears
only in the context" (Section 3.2). These helpers align two count maps over
the union of their supports with a deterministic ordering, producing the
paired vectors every comparison routine consumes.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from typing import TypeVar

import numpy as np

from repro.errors import StatisticsError

K = TypeVar("K", bound=Hashable)


def align_count_maps(
    query_counts: Mapping[K, int],
    context_counts: Mapping[K, int],
    *,
    order: "Sequence[K] | None" = None,
) -> tuple[list[K], np.ndarray, np.ndarray]:
    """Align two ``{value: count}`` maps over their union support.

    Returns ``(support, x, y)`` where ``x`` holds the query counts and
    ``y`` the context counts, both over the same ``support``. The default
    ordering is by decreasing context count, then decreasing query count,
    then by the string form of the value — deterministic, and it puts the
    context's dominant values first, matching the figures in the paper.
    """
    for name, counts in (("query", query_counts), ("context", context_counts)):
        for value, count in counts.items():
            if not isinstance(count, (int, np.integer)):
                raise StatisticsError(f"{name} count for {value!r} is not an int")
            if count < 0:
                raise StatisticsError(f"{name} count for {value!r} is negative")
    union: set[K] = set(query_counts) | set(context_counts)
    if order is not None:
        missing = union.difference(order)
        if missing:
            raise StatisticsError(f"explicit order misses values: {sorted(map(str, missing))!r}")
        support = [value for value in order if value in union]
    else:
        support = sorted(
            union,
            key=lambda value: (
                -context_counts.get(value, 0),
                -query_counts.get(value, 0),
                str(value),
            ),
        )
    x = np.array([query_counts.get(value, 0) for value in support], dtype=np.int64)
    y = np.array([context_counts.get(value, 0) for value in support], dtype=np.int64)
    return support, x, y


def counts_to_probabilities(counts: np.ndarray) -> np.ndarray:
    """``normalize(y)`` of the paper — counts to a probability vector."""
    arr = np.asarray(counts, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise StatisticsError("counts must be a non-empty 1-D vector")
    if np.any(arr < 0):
        raise StatisticsError("counts must be non-negative")
    total = arr.sum()
    if total <= 0:
        raise StatisticsError("cannot normalize an all-zero count vector")
    return arr / total


def cardinality_histogram(values: "Sequence[int]") -> dict[int, int]:
    """``{cardinality: how many nodes have it}`` from per-node cardinalities."""
    out: dict[int, int] = {}
    for value in values:
        if value < 0:
            raise StatisticsError("cardinalities must be non-negative")
        out[value] = out.get(value, 0) + 1
    return out
