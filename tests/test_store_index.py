"""Unit tests for repro.store.index.TwoLevelIndex."""

import pytest

from repro.store.index import TwoLevelIndex


@pytest.fixture()
def index():
    idx = TwoLevelIndex()
    idx.add(1, 10, 100)
    idx.add(1, 10, 101)
    idx.add(1, 11, 100)
    idx.add(2, 10, 100)
    return idx


class TestAddRemove:
    def test_add_reports_newness(self):
        idx = TwoLevelIndex()
        assert idx.add(1, 2, 3) is True
        assert idx.add(1, 2, 3) is False
        assert len(idx) == 1

    def test_remove_existing(self, index):
        assert index.remove(1, 10, 100) is True
        assert not index.contains(1, 10, 100)
        assert len(index) == 3

    def test_remove_missing(self, index):
        assert index.remove(9, 9, 9) is False
        assert index.remove(1, 10, 999) is False
        assert len(index) == 4

    def test_remove_prunes_empty_levels(self):
        idx = TwoLevelIndex()
        idx.add(1, 2, 3)
        idx.remove(1, 2, 3)
        assert list(idx.firsts()) == []
        assert list(idx.scan()) == []


class TestScan:
    def test_full_scan(self, index):
        assert sorted(index.scan()) == [
            (1, 10, 100),
            (1, 10, 101),
            (1, 11, 100),
            (2, 10, 100),
        ]

    def test_scan_first_bound(self, index):
        assert sorted(index.scan(1)) == [(1, 10, 100), (1, 10, 101), (1, 11, 100)]

    def test_scan_both_bound(self, index):
        assert sorted(index.scan(1, 10)) == [(1, 10, 100), (1, 10, 101)]

    def test_scan_missing_prefix(self, index):
        assert list(index.scan(42)) == []
        assert list(index.scan(1, 42)) == []

    def test_scan_second_without_first_rejected(self, index):
        with pytest.raises(ValueError):
            list(index.scan(None, 10))


class TestCounts:
    def test_total(self, index):
        assert index.count() == 4

    def test_count_first(self, index):
        assert index.count(1) == 3
        assert index.count(2) == 1
        assert index.count(3) == 0

    def test_count_prefix(self, index):
        assert index.count(1, 10) == 2
        assert index.count(1, 11) == 1
        assert index.count(1, 12) == 0

    def test_firsts_seconds(self, index):
        assert sorted(index.firsts()) == [1, 2]
        assert sorted(index.seconds(1)) == [10, 11]
        assert list(index.seconds(99)) == []

    def test_size_tracks_mutations(self):
        idx = TwoLevelIndex()
        for i in range(10):
            idx.add(i % 3, i % 2, i)
        assert len(idx) == 10
        for i in range(10):
            idx.remove(i % 3, i % 2, i)
        assert len(idx) == 0
