"""Tests for the metrics layer: primitives, exposition, engine wiring,
and the scrape-while-loaded acceptance path."""

import math
import threading
import time
import urllib.request

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.service.engine import EngineConfig, NCEngine
from repro.service.metrics import (
    CONTENT_TYPE,
    MetricsRegistry,
    ServiceMetrics,
    validate_exposition,
)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_requests_total", "requests")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_hits_total", "hits", labelnames=("route",))
        counter.inc(route="a")
        counter.inc(5, route="b")
        assert counter.value(route="a") == 1
        assert counter.value(route="b") == 5
        assert counter.value(route="missing") == 0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("t_total", "t")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_concurrent_increments_are_exact(self):
        counter = MetricsRegistry().counter(
            "t_concurrent_total", "t", labelnames=("slot",)
        )
        threads = 8
        per_thread = 2000
        barrier = threading.Barrier(threads)

        def hammer(slot):
            barrier.wait()
            for _ in range(per_thread):
                counter.inc(slot=str(slot % 2))

        pool = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = counter.value(slot="0") + counter.value(slot="1")
        assert total == threads * per_thread


class TestHistogram:
    def test_bucket_math(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "t_latency_seconds", "latency", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)
        # cumulative: le=0.1 -> 1, le=1.0 -> 3, le=10.0 -> 4, +Inf -> 5
        assert snap["buckets"][0.1] == 1
        assert snap["buckets"][1.0] == 3
        assert snap["buckets"][10.0] == 4
        assert snap["buckets"][math.inf] == 5

    def test_boundary_lands_in_its_bucket(self):
        histogram = MetricsRegistry().histogram(
            "t_edge_seconds", "edges", buckets=(1.0, 2.0)
        )
        histogram.observe(1.0)  # le="1.0" is inclusive, Prometheus-style
        assert histogram.snapshot()["buckets"][1.0] == 1

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram(
                "t_bad_seconds", "bad", buckets=(1.0, 1.0)
            )

    def test_concurrent_observations_are_exact(self):
        histogram = MetricsRegistry().histogram(
            "t_par_seconds", "par", buckets=(0.5,)
        )
        threads = 6
        per_thread = 3000
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for i in range(per_thread):
                histogram.observe(0.25 if i % 2 else 0.75)

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        snap = histogram.snapshot()
        assert snap["count"] == threads * per_thread
        assert snap["buckets"][0.5] == threads * per_thread // 2


class TestGauge:
    def test_set_and_callback(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("t_gauge", "g")
        gauge.set(4.0)
        assert "t_gauge 4" in registry.render()
        gauge.set_function(lambda: 7.5)
        assert "t_gauge 7.5" in registry.render()

    def test_raising_callback_renders_nan(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("t_boom", "g")
        gauge.set_function(lambda: 1 / 0)
        assert "t_boom NaN" in registry.render()
        assert validate_exposition(registry.render())


class TestRegistry:
    def test_idempotent_registration_shares_series(self):
        registry = MetricsRegistry()
        first = registry.counter("t_shared_total", "shared")
        second = registry.counter("t_shared_total", "shared")
        assert first is second

    def test_conflicting_registration_raises(self):
        registry = MetricsRegistry()
        registry.counter("t_kind_total", "k")
        with pytest.raises(ValueError):
            registry.histogram("t_kind_total", "k", buckets=(1.0,))
        registry.counter("t_labels_total", "k", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("t_labels_total", "k", labelnames=("b",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("0bad", "starts with a digit")
        with pytest.raises(ValueError):
            registry.counter("t_ok_total", "le is reserved", labelnames=("le",))

    def test_render_passes_strict_validation(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_req_total", "req", labelnames=("route",))
        counter.inc(route='weird "quoted" \\ multi\nline')
        histogram = registry.histogram("t_lat_seconds", "lat", buckets=(0.1,))
        histogram.observe(0.05)
        families = validate_exposition(registry.render())
        assert families["t_req_total"] == "counter"
        assert families["t_lat_seconds"] == "histogram"

    def test_validator_rejects_malformed_text(self):
        with pytest.raises(ValueError):
            validate_exposition("this is { not metrics\n")
        with pytest.raises(ValueError):
            # histogram family without its +Inf bucket
            validate_exposition(
                "# HELP h x\n# TYPE h histogram\n"
                'h_bucket{le="1.0"} 1\nh_sum 1\nh_count 1\n'
            )


class TestEngineConfig:
    def test_validation_messages_preserved(self):
        with pytest.raises(ValueError, match="max_workers must be >= 1"):
            EngineConfig(max_workers=0)
        with pytest.raises(ValueError, match="executor must be"):
            EngineConfig(executor="fiber")
        with pytest.raises(ValueError, match="request_timeout must be > 0"):
            EngineConfig(request_timeout=0)

    def test_config_and_kwargs_are_mutually_exclusive(self):
        graph = figure1_graph()
        with pytest.raises(ValueError, match="not both"):
            NCEngine(graph, config=EngineConfig(), cache_size=4)
        with pytest.raises(TypeError):
            NCEngine(graph, config={"cache_size": 4})

    def test_kwargs_back_compat_builds_config(self):
        graph = figure1_graph()
        with NCEngine(graph, context_size=3, cache_size=7, seed=5) as engine:
            assert engine.config.cache_size == 7
            assert engine.config.context_size == 3
            assert engine.config.as_dict()["executor"] == "thread"

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError):
            NCEngine(figure1_graph(), turbo=True)


@pytest.fixture(scope="module")
def engine():
    graph = figure1_graph()
    with NCEngine(graph, context_size=3, max_workers=2, seed=5) as engine:
        engine.pin()
        yield engine


class TestEngineWiring:
    def test_request_paths_are_counted(self, engine):
        metrics = engine.metrics
        engine.cache.clear()
        before = metrics.computed.value(backend="thread")
        engine.request(["Angela_Merkel", "Barack_Obama"])
        engine.request(["Angela_Merkel", "Barack_Obama"])  # cache hit
        assert metrics.computed.value(backend="thread") == before + 1
        assert metrics.cache_events.value(event="hit") >= 1
        assert metrics.cache_events.value(event="miss") >= 1
        lat = metrics.compute_latency.snapshot(backend="thread")
        assert lat["count"] >= 1

    def test_gauges_render(self, engine):
        text = engine.metrics.render()
        families = validate_exposition(text)
        assert families["nc_engine_inflight"] == "gauge"
        assert "nc_engine_uptime_seconds" in families
        assert "nc_breaker_state" in families
        assert engine.uptime_s > 0
        assert engine.snapshot_source == "live-graph"

    def test_service_metrics_render_is_valid_when_empty(self):
        assert validate_exposition(ServiceMetrics().render()) != {}


class TestScrapeUnderTraffic:
    def test_metrics_endpoint_valid_under_concurrent_load(self):
        """The acceptance bar: /v1/metrics stays well-formed while the
        server is actively serving search traffic."""
        from repro.service.server import create_server

        graph = figure1_graph()
        engine = NCEngine(graph, context_size=3, max_workers=2, seed=5)
        server = create_server(engine, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        base = f"http://127.0.0.1:{port}"
        stop = threading.Event()
        errors = []

        def traffic():
            queries = ("Angela_Merkel,Barack_Obama", "Vladimir_Putin,Angela_Merkel")
            i = 0
            while not stop.is_set():
                i += 1
                try:
                    with urllib.request.urlopen(
                        f"{base}/v1/search?query={queries[i % 2]}&context_size=3"
                    ) as response:
                        response.read()
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)
                    return

        clients = [threading.Thread(target=traffic) for _ in range(3)]
        try:
            for c in clients:
                c.start()
            for _ in range(10):
                with urllib.request.urlopen(f"{base}/v1/metrics") as response:
                    assert response.status == 200
                    assert response.headers["Content-Type"] == CONTENT_TYPE
                    families = validate_exposition(
                        response.read().decode("utf-8")
                    )
                assert "nc_http_requests_total" in families
                assert families["nc_http_request_latency_seconds"] == "histogram"
        finally:
            stop.set()
            for c in clients:
                c.join()
            server.shutdown()
            server.server_close()
            engine.close()
        assert not errors

    def test_http_metrics_label_routes(self):
        from repro.service.server import create_server

        graph = figure1_graph()
        engine = NCEngine(graph, context_size=3, max_workers=2, seed=5)
        server = create_server(engine, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        base = f"http://127.0.0.1:{port}"
        try:
            for path in ("/v1/healthz", "/healthz", "/v1/stats"):
                with urllib.request.urlopen(base + path) as response:
                    response.read()
            requests = engine.metrics.http_requests
            # The handler records its metrics after flushing the response
            # body, so give the server thread a beat to finish its
            # finally-block before asserting.
            deadline = time.monotonic() + 5.0
            while (
                requests.value(route="healthz", method="GET", status="200") < 2
                or requests.value(route="stats", method="GET", status="200") < 1
            ) and time.monotonic() < deadline:
                time.sleep(0.01)
            # canonical and alias spellings both count under one route
            assert requests.value(route="healthz", method="GET", status="200") == 2
            assert requests.value(route="stats", method="GET", status="200") == 1
        finally:
            server.shutdown()
            server.server_close()
            engine.close()
