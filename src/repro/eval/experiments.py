"""Experiment runners — one per table / figure of Section 4.

Every runner returns a :class:`repro.util.tables.Table` whose rows mirror
what the paper plots, so the benchmarks can both print paper-shaped output
and assert the qualitative claims (who wins, which labels are notable).

Common knobs live in :class:`ExperimentSetting`; the defaults are sized
for laptop runs (synthetic YAGO at scale 2 ~= 4k nodes / 30k edges).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, replace

from repro.core.context import ContextRW, ContextSelector, RandomWalkContext
from repro.core.discrimination import (
    EMDDiscriminator,
    KLDiscriminator,
    MultinomialDiscriminator,
)
from repro.core.distributions import build_distributions
from repro.core.findnc import FindNC, rw_mult
from repro.datasets.groundtruth import CrowdSimulator, GroundTruth
from repro.datasets.loader import load_dataset
from repro.datasets.seeds import (
    ACTORS_DOMAIN,
    AUTHORS_QUERY,
    TABLE1_DOMAINS,
    QueryDomain,
    domain_by_name,
)
from repro.errors import ExperimentError
from repro.eval.metrics import best_f1, f1_at, kendall_switches, mean
from repro.graph.model import KnowledgeGraph
from repro.graph.search import EntityIndex
from repro.stats.histograms import counts_to_probabilities
from repro.util.rng import ensure_rng
from repro.util.tables import Table

#: The damping factor the paper's *experiments* use for the RandomWalk
#: baseline ("we set ... the damping factor c = 0.2", Section 4).
BASELINE_DAMPING = 0.2


@dataclass(frozen=True)
class ExperimentSetting:
    """Shared experiment configuration."""

    dataset: str = "yago"
    scale: float = 2.0
    graph_seed: int = 7
    crowd_seed: int = 3
    algorithm_seed: int = 11
    domain: str = "actors"
    pagerank_backend: str = "scipy"

    def graph(self) -> KnowledgeGraph:
        return load_dataset(self.dataset, scale=self.scale, seed=self.graph_seed)

    def domain_spec(self) -> QueryDomain:
        return domain_by_name(self.domain)

    def with_dataset(self, dataset: str) -> "ExperimentSetting":
        return replace(self, dataset=dataset)


# -- shared plumbing -----------------------------------------------------------

_GT_CACHE: dict[tuple, GroundTruth] = {}


def ground_truth_for(
    setting: ExperimentSetting, graph: KnowledgeGraph, query: tuple[int, ...]
) -> GroundTruth:
    """Crowd ground truth for ``query`` (memoized per graph + seed)."""
    key = (id(graph), setting.crowd_seed, query)
    cached = _GT_CACHE.get(key)
    if cached is None:
        simulator = CrowdSimulator(graph, rng=setting.crowd_seed)
        cached = simulator.simulate(query)
        _GT_CACHE[key] = cached
    return cached


def resolve_domain_queries(
    graph: KnowledgeGraph, domain: QueryDomain, *, minimum: int = 2
) -> list[tuple[int, ...]]:
    """The nested query-node sets (|Q| = 2..6) of one Table-1 domain."""
    index = EntityIndex(graph)
    out = []
    for names in domain.nested_queries(minimum=minimum):
        try:
            out.append(tuple(index.resolve(name) for name in names))
        except Exception as exc:  # entity missing from this dataset
            raise ExperimentError(
                f"domain {domain.name!r} is not fully present in {graph.name}: {exc}"
            ) from exc
    return out


def make_selectors(
    setting: ExperimentSetting, graph: KnowledgeGraph
) -> dict[str, ContextSelector]:
    """The two context algorithms under the paper's experimental settings."""
    return {
        "ContextRW": ContextRW(graph, rng=setting.algorithm_seed),
        "RandomWalk": RandomWalkContext(
            graph,
            damping=BASELINE_DAMPING,
            iterations=10,
            backend=setting.pagerank_backend,
        ),
    }


# -- Table 1 -------------------------------------------------------------------

def domains_table(setting: ExperimentSetting | None = None) -> Table:
    """Table 1: the query entities per domain, with resolution stats."""
    setting = setting or ExperimentSetting()
    graph = setting.graph()
    index = EntityIndex(graph)
    table = Table(
        ["domain", "entity", "resolved", "out_degree"],
        title="Table 1: entities in the three evaluation domains",
    )
    for domain in TABLE1_DOMAINS:
        for name in domain.entities:
            matches = index.lookup(name)
            degree = graph.out_degree(matches[0]) if matches else 0
            table.add_row([domain.name, name, bool(matches), degree])
    return table


# -- Figures 2 and 3: F1 vs context size ----------------------------------------

def context_size_sweep(
    setting: ExperimentSetting | None = None,
    *,
    context_sizes: Sequence[int] = (10, 25, 50, 100, 150, 200, 300, 400),
    min_query_size: int = 2,
) -> Table:
    """Figure 2: F1 at each |C| for every nested query of the domain.

    Rows: (algorithm, |Q|, |C|, F1). Figure 3 is the per-(algorithm, |C|)
    average of these rows — see :func:`average_f1_by_context_size`.
    """
    setting = setting or ExperimentSetting()
    graph = setting.graph()
    queries = resolve_domain_queries(
        graph, setting.domain_spec(), minimum=min_query_size
    )
    selectors = make_selectors(setting, graph)
    max_size = max(context_sizes)
    table = Table(
        ["algorithm", "query_size", "context_size", "f1"],
        title=f"Figure 2: F1 vs |C| ({setting.domain}, {setting.dataset})",
    )
    for query in queries:
        truth = ground_truth_for(setting, graph, query)
        for name, selector in selectors.items():
            result = selector.select(query, max_size)
            for size in context_sizes:
                table.add_row(
                    [name, len(query), size, f1_at(result.nodes, truth.entities, size)]
                )
    return table


def average_f1_by_context_size(sweep: Table) -> Table:
    """Figure 3: average the Figure-2 rows over the query sets."""
    accumulator: dict[tuple[str, int], list[float]] = {}
    for algorithm, _query_size, context_size, f1 in sweep.rows:
        accumulator.setdefault((algorithm, context_size), []).append(f1)
    table = Table(
        ["algorithm", "context_size", "avg_f1"],
        title="Figure 3: average F1 vs |C|",
    )
    for (algorithm, context_size), values in sorted(accumulator.items()):
        table.add_row([algorithm, context_size, mean(values)])
    return table


# -- Figure 4: F1 vs query size ---------------------------------------------------

def query_size_sweep(
    setting: ExperimentSetting | None = None,
    *,
    context_sizes: Sequence[int] = (50, 100),
    domains: Sequence[str] | None = None,
) -> Table:
    """Figure 4: average F1 vs |Q| at fixed context sizes.

    Averages across the requested domains (defaults to every Table-1
    domain present in the dataset).
    """
    setting = setting or ExperimentSetting()
    graph = setting.graph()
    domain_names = list(domains) if domains is not None else [
        d.name for d in TABLE1_DOMAINS
    ]
    selectors = make_selectors(setting, graph)
    max_size = max(context_sizes)
    # accumulate per (algorithm, |C|, |Q|)
    accumulator: dict[tuple[str, int, int], list[float]] = {}
    for domain_name in domain_names:
        queries = resolve_domain_queries(graph, domain_by_name(domain_name))
        for query in queries:
            truth = ground_truth_for(setting, graph, query)
            for name, selector in selectors.items():
                result = selector.select(query, max_size)
                for size in context_sizes:
                    accumulator.setdefault((name, size, len(query)), []).append(
                        f1_at(result.nodes, truth.entities, size)
                    )
    table = Table(
        ["algorithm", "context_size", "query_size", "avg_f1"],
        title="Figure 4: average F1 vs |Q|",
    )
    for key in sorted(accumulator):
        table.add_row([key[0], key[1], key[2], mean(accumulator[key])])
    return table


# -- Figure 5: time vs query size ---------------------------------------------------

def time_vs_query_size(
    setting: ExperimentSetting | None = None,
    *,
    query_sizes: Sequence[int] = (1, 2, 3, 4, 5),
    context_size: int = 100,
    pagerank_backend: str = "python",
) -> Table:
    """Figure 5: wall-clock seconds per algorithm as |Q| grows.

    The RandomWalk baseline runs one Personalized-PageRank power iteration
    per query node; ``pagerank_backend='python'`` (default here) measures
    it on the same interpreted substrate as ContextRW's walks, mirroring
    the paper's single-runtime (Java/Jena) setup — see DESIGN.md.
    """
    setting = setting or ExperimentSetting(pagerank_backend=pagerank_backend)
    setting = replace(setting, pagerank_backend=pagerank_backend)
    graph = setting.graph()
    domain = setting.domain_spec()
    index = EntityIndex(graph)
    all_ids = [index.resolve(name) for name in domain.entities]
    selectors = make_selectors(setting, graph)
    table = Table(
        ["algorithm", "query_size", "seconds"],
        title="Figure 5: time vs |Q|",
        float_format=".4f",
    )
    for size in query_sizes:
        if size > len(all_ids):
            raise ExperimentError(f"domain has only {len(all_ids)} entities")
        query = tuple(all_ids[:size])
        for name, selector in selectors.items():
            started = time.perf_counter()
            selector.select(query, context_size)
            table.add_row([name, size, time.perf_counter() - started])
    return table


# -- Figure 6: time vs metapath length -------------------------------------------------

def time_vs_path_length(
    setting: ExperimentSetting | None = None,
    *,
    max_lengths: Sequence[int] = (5, 10, 15, 20),
    query_sizes: Sequence[int] = (2, 3, 4, 5, 6),
    samples: int | None = None,
) -> Table:
    """Figure 6: ContextRW time as the maximum metapath length grows."""
    setting = setting or ExperimentSetting()
    graph = setting.graph()
    index = EntityIndex(graph)
    domain = setting.domain_spec()
    all_ids = [index.resolve(name) for name in domain.entities]
    table = Table(
        ["query_size", "max_length", "seconds"],
        title="Figure 6: time vs max metapath length",
        float_format=".4f",
    )
    for query_size in query_sizes:
        query = tuple(all_ids[:query_size])
        for max_length in max_lengths:
            selector = ContextRW(
                graph,
                rng=setting.algorithm_seed,
                max_length=max_length,
                samples=samples,
            )
            started = time.perf_counter()
            selector.select(query, 100)
            table.add_row([query_size, max_length, time.perf_counter() - started])
    return table


# -- Table 2: YAGO vs LinkedMDB --------------------------------------------------------

def dataset_comparison(
    setting: ExperimentSetting | None = None,
    *,
    datasets: Sequence[str] = ("yago", "linkedmdb"),
    max_context: int = 400,
) -> Table:
    """Table 2: max F1 (and the |C| attaining it) per |Q| and dataset."""
    setting = setting or ExperimentSetting()
    table = Table(
        ["query_size", "dataset", "max_f1", "argmax_context_size"],
        title="Table 2: ContextRW on YAGO vs LinkedMDB (actors domain)",
    )
    for dataset in datasets:
        local = setting.with_dataset(dataset)
        graph = local.graph()
        queries = resolve_domain_queries(graph, ACTORS_DOMAIN)
        selector = ContextRW(graph, rng=local.algorithm_seed)
        for query in queries:
            truth = ground_truth_for(local, graph, query)
            result = selector.select(query, max_context)
            value, argmax = best_f1(result.nodes, truth.entities, max_k=max_context)
            table.add_row([len(query), dataset, value, argmax])
    return table.sorted_by("query_size")


# -- Table 3: F1 vs number of paths ------------------------------------------------------

def path_count_sweep(
    setting: ExperimentSetting | None = None,
    *,
    path_counts: Sequence[int] = (5, 10, 15, 20),
    context_sizes: Sequence[int] = (50, 100, 150, 200),
    query_size: int = 5,
) -> Table:
    """Table 3: F1 as a function of |M| (kept metapaths) and |C|."""
    setting = setting or ExperimentSetting()
    graph = setting.graph()
    queries = resolve_domain_queries(graph, setting.domain_spec())
    query = next(q for q in queries if len(q) == query_size)
    truth = ground_truth_for(setting, graph, query)
    table = Table(
        ["context_size", "num_paths", "f1"],
        title="Table 3: F1 vs |M| and |C|",
    )
    for num_paths in path_counts:
        selector = ContextRW(
            graph, rng=setting.algorithm_seed, max_paths=num_paths
        )
        result = selector.select(query, max(context_sizes))
        for size in context_sizes:
            table.add_row([size, num_paths, f1_at(result.nodes, truth.entities, size)])
    return table.sorted_by("context_size")


# -- Figures 7 and 8: distributions ---------------------------------------------------------

def distribution_figure(
    setting: ExperimentSetting | None = None,
    *,
    label: str = "created",
    channel: str = "instance",
    query_size: int = 5,
    context_size: int = 100,
) -> Table:
    """Figure 7/8: the query vs context distribution of one edge label.

    ``channel`` is ``'instance'`` (Figure 7, label ``created``) or
    ``'cardinality'`` (Figure 8, label ``hasWonPrize``).
    """
    if channel not in ("instance", "cardinality"):
        raise ExperimentError(f"unknown channel {channel!r}")
    setting = setting or ExperimentSetting()
    graph = setting.graph()
    queries = resolve_domain_queries(graph, setting.domain_spec())
    query = next(q for q in queries if len(q) == query_size)
    selector = ContextRW(graph, rng=setting.algorithm_seed)
    context = selector.select(query, context_size)
    distributions = build_distributions(graph, query, context.nodes, label)
    title = f"Figure {'7' if channel == 'instance' else '8'}: {label} ({channel})"
    table = Table(["value", "query_probability", "context_probability"], title=title)
    if channel == "instance":
        support = [str(v) for v in distributions.instance_support]
        query_counts = distributions.inst_query
        context_counts = distributions.inst_context
    else:
        support = [str(v) for v in distributions.cardinality_support]
        query_counts = distributions.card_query
        context_counts = distributions.card_context
    query_probs = (
        counts_to_probabilities(query_counts)
        if query_counts.sum()
        else query_counts.astype(float)
    )
    context_probs = (
        counts_to_probabilities(context_counts)
        if context_counts.sum()
        else context_counts.astype(float)
    )
    for value, q, c in zip(support, query_probs, context_probs):
        table.add_row([value, float(q), float(c)])
    return table


# -- Figure 9: FindNC vs RWMult significance probabilities -------------------------------------

def significance_comparison(
    setting: ExperimentSetting | None = None,
    *,
    query_size: int = 5,
    context_size: int = 100,
    alpha: float = 0.05,
) -> Table:
    """Figure 9: per-label significance probabilities under both pipelines.

    Labels with probability <= alpha are the notable ones; the paper's
    qualitative claims (actedIn / hasWonPrize flagged only by RWMult,
    created by both, owns borderline) are assertable from these rows.
    """
    setting = setting or ExperimentSetting()
    graph = setting.graph()
    queries = resolve_domain_queries(graph, setting.domain_spec())
    query = next(q for q in queries if len(q) == query_size)
    findnc = FindNC(graph, context_size=context_size, rng=setting.algorithm_seed)
    baseline = rw_mult(
        graph,
        context_size=context_size,
        damping=BASELINE_DAMPING,
        rng=setting.algorithm_seed,
    )
    findnc_result = findnc.run(query)
    baseline_result = baseline.run(query)
    find_p = findnc_result.significance_probabilities()
    base_p = baseline_result.significance_probabilities()
    table = Table(
        ["label", "findnc_p", "rwmult_p", "threshold"],
        title="Figure 9: significance probabilities, FindNC vs RWMult",
    )
    for label in sorted(set(find_p) | set(base_p)):
        table.add_row(
            [label, find_p.get(label, 1.0), base_p.get(label, 1.0), alpha]
        )
    return table


# -- Section 4.2: metrics comparison -------------------------------------------------------------

def _expert_surprise(distributions) -> float:
    """A human-intuition proxy for "how surprising is this characteristic".

    Experts react to visible, nameable differences: how often the property
    is missing, and how many of it each entity has — not to raw divergence
    over sparse supports. The proxy combines the None-rate gap and the
    mean-cardinality gap.
    """
    inst_q = distributions.inst_query
    inst_c = distributions.inst_context
    card_q = distributions.card_query
    card_c = distributions.card_context
    none_q = 1.0 - (card_q[1:].sum() / card_q.sum()) if card_q.sum() else 0.0
    none_c = 1.0 - (card_c[1:].sum() / card_c.sum()) if card_c.sum() else 0.0
    support = range(len(distributions.cardinality_support))
    mean_q = (
        sum(i * c for i, c in zip(support, card_q)) / card_q.sum()
        if card_q.sum()
        else 0.0
    )
    mean_c = (
        sum(i * c for i, c in zip(support, card_c)) / card_c.sum()
        if card_c.sum()
        else 0.0
    )
    scale = 1.0 + max(mean_q, mean_c)
    shared = 0
    if inst_q.sum() and inst_c.sum():
        shared = int(((inst_q > 0) & (inst_c > 0)).sum())
        value_gap = 1.0 - shared / max(int((inst_q > 0).sum()), 1)
    else:
        value_gap = 0.0
    return 0.5 * abs(none_q - none_c) + 0.3 * abs(mean_q - mean_c) / scale + 0.2 * value_gap


def metrics_comparison(
    setting: ExperimentSetting | None = None,
    *,
    query_size: int = 5,
    context_size: int = 100,
    experts: int = 3,
    expert_noise: float = 0.05,
) -> Table:
    """Section 4.2 "Metrics comparison": ranking switches vs expert ranking.

    Three simulated experts score each candidate characteristic with a
    noisy human-intuition proxy; the aggregated expert ranking is compared
    (by minimum adjacent switches) to the rankings induced by the
    multinomial test, KL divergence and EMD.
    """
    setting = setting or ExperimentSetting()
    graph = setting.graph()
    queries = resolve_domain_queries(graph, setting.domain_spec())
    query = next(q for q in queries if len(q) == query_size)
    context = ContextRW(graph, rng=setting.algorithm_seed).select(query, context_size)

    finder = FindNC(graph, context_size=context_size, rng=setting.algorithm_seed)
    labels = finder.candidate_labels(list(query) + context.nodes)
    dists = {
        label: build_distributions(graph, query, context.nodes, label)
        for label in labels
    }

    rng = ensure_rng(setting.crowd_seed)
    expert_scores: dict[str, float] = {label: 0.0 for label in labels}
    for _ in range(experts):
        for label in labels:
            noise = rng.gauss(0.0, expert_noise)
            expert_scores[label] += _expert_surprise(dists[label]) + noise
    expert_ranking = sorted(labels, key=lambda l: (-expert_scores[l], l))

    discriminators = {
        "FindNC": MultinomialDiscriminator(rng=setting.algorithm_seed),
        "KL": KLDiscriminator(),
        "EMD": EMDDiscriminator(),
    }
    table = Table(
        ["method", "switches"],
        title="Metrics comparison: switches vs aggregated expert ranking",
    )
    for name, discriminator in discriminators.items():
        scores = {}
        for label in labels:
            result = discriminator.score(dists[label])
            # Rank by the method's own notion of deviation strength: the
            # multinomial uses 1 - p (even when below threshold), the
            # divergences their raw value.
            if name == "FindNC":
                p = result.min_p_value if result.min_p_value is not None else 1.0
                scores[label] = 1.0 - p
            else:
                scores[label] = max(result.inst_score, result.card_score)
        ranking = sorted(labels, key=lambda l: (-scores[l], l))
        table.add_row([name, kendall_switches(ranking, expert_ranking)])
    return table


# -- Section 4.2: the authors test case ------------------------------------------------------------

def authors_testcase(
    setting: ExperimentSetting | None = None,
    *,
    context_size: int = 30,
    samples: int = 300_000,
) -> Table:
    """The {Douglas Adams, Terry Pratchett} case: influences vs created.

    The two-writer query is weakly connected, so PathMining gets a larger
    walk budget here — with the default budget the metapath counts for
    writer-anchored patterns are too thin to rank reliably.
    """
    setting = setting or ExperimentSetting()
    graph = setting.graph()
    selector = ContextRW(graph, rng=setting.algorithm_seed, samples=samples)
    finder = FindNC(
        graph,
        context_selector=selector,
        context_size=context_size,
        rng=setting.algorithm_seed,
    )
    result = finder.run(list(AUTHORS_QUERY))
    table = Table(
        ["label", "p_value", "notable"],
        title="Authors test case: {Douglas Adams, Terry Pratchett}, |C|=30",
    )
    for item in result.results:
        p = item.min_p_value if item.min_p_value is not None else 1.0
        table.add_row([item.label, p, item.notable])
    return table
