"""End-to-end request tracing for the query service (``/v1/debug/traces``).

PR 7's metrics answer *how the service is doing*; this module answers
*where one request's time went*. A request may traverse four execution
domains — the HTTP handler thread, the engine's single-flight executor,
the worker pool's micro-batch dispatcher, and a worker **process** — and
each domain records explicit :class:`Span` objects into one
:class:`Trace` keyed by a W3C ``traceparent``-compatible 128-bit trace
id. Zero dependencies: ids are ``os.urandom`` hex, timestamps are
``time.monotonic_ns()``.

Sampling and retention
----------------------

* **Head sampling** (``--trace-sample-rate``): each request flips a
  seeded coin at trace start; sampled traces are always retained. An
  inbound ``traceparent`` header with the ``01`` (sampled) flag forces
  the decision — which is how ``repro loadgen --trace-sample-rate``
  samples client-side and still gets server trace ids back.
* **Tail capture** (``--slow-query-ms``): when a slow-query threshold is
  configured, *every* request records spans so that any request that
  errors (HTTP 5xx) or exceeds the threshold can be force-retained even
  though the head coin said no. Without a threshold, unsampled requests
  record nothing — the disabled tracer costs one predicate per request.

Finished traces land in a bounded ring buffer (:class:`TraceBuffer`)
exposed at ``GET /v1/debug/traces`` (summaries) and
``GET /v1/debug/traces/<id>`` (the full span tree as a flat
parent-linked list). ``tools/trace_report.py`` renders the tree.

Cross-process stitching
-----------------------

Worker processes cannot share the parent's :class:`Trace` object, and
their monotonic clock origin is not guaranteed to match the parent's.
Workers therefore record phase spans through a
:class:`WorkerSpanRecorder` as **offsets** from a batch-local origin and
ship them back inside the result payload; the parent rebases them onto
the dispatch instant of its own ``pool.worker`` span. Because the worker
origin is always *after* dispatch and worker spans always end *before*
the result message arrives, rebased child spans are guaranteed to nest
monotonically inside their parent span (``tests/test_service_tracing.py``
pins this).

Structured logging
------------------

:func:`log_event` is the one log writer for request/swap/crash/breaker
lines. ``--log-format json`` (:func:`set_log_format`) switches it from
``event key=value`` text to one JSON object per line, with ``trace_id``
stamped whenever the triggering request carries a trace.
"""

from __future__ import annotations

import json
import os
import re
import sys
import threading
import time
from collections import deque

#: ``version-traceid-parentid-flags``, lowercase hex per the W3C spec.
_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})"
    r"-(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


def new_trace_id() -> str:
    """A random 128-bit trace id as 32 lowercase hex characters."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A random 64-bit span id as 16 lowercase hex characters."""
    return os.urandom(8).hex()


class SpanContext:
    """The propagated slice of a trace: ids + the sampled flag.

    What crosses process/network boundaries (as a ``traceparent``
    header inbound, as a task field over the pickle boundary) — never
    the spans themselves.
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` header value for this context."""
        return f"00-{self.trace_id}-{self.span_id}-{'01' if self.sampled else '00'}"


def parse_traceparent(header: "str | None") -> "SpanContext | None":
    """Parse an inbound ``traceparent`` header; ``None`` if malformed.

    Strict per the W3C grammar: four lowercase-hex fields, version
    ``ff`` forbidden, all-zero trace/span ids forbidden. A malformed
    header is *rejected* (treated as absent — the request gets a fresh
    trace id) rather than propagated.
    """
    if header is None:
        return None
    match = _TRACEPARENT_RE.match(header.strip())
    if match is None:
        return None
    if match.group("version") == "ff":
        return None
    trace_id = match.group("trace_id")
    span_id = match.group("span_id")
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        return None
    sampled = bool(int(match.group("flags"), 16) & 0x01)
    return SpanContext(trace_id, span_id, sampled)


class Span:
    """One named, timed phase of a request, linked to its parent span.

    Timestamps are ``time.monotonic_ns()`` instants (parent process
    clock); ``end()`` is idempotent and ``set()`` merges attributes —
    e.g. ``cache="hit"``, ``batch_size=4``, ``worker_id="nc-worker-0"``.
    """

    __slots__ = ("name", "span_id", "parent_id", "start_ns", "end_ns", "attributes")

    def __init__(
        self,
        name: str,
        *,
        parent_id: "str | None" = None,
        span_id: "str | None" = None,
        start_ns: "int | None" = None,
        attributes: "dict | None" = None,
    ) -> None:
        self.name = name
        self.span_id = span_id if span_id is not None else new_span_id()
        self.parent_id = parent_id
        self.start_ns = start_ns if start_ns is not None else time.monotonic_ns()
        self.end_ns: "int | None" = None
        self.attributes: dict = dict(attributes or {})

    def set(self, **attributes: object) -> "Span":
        """Merge ``attributes`` into the span; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def end(self, end_ns: "int | None" = None) -> None:
        """Close the span (first call wins)."""
        if self.end_ns is None:
            self.end_ns = end_ns if end_ns is not None else time.monotonic_ns()

    @property
    def duration_ms(self) -> float:
        """Span duration in milliseconds (0.0 while still open)."""
        if self.end_ns is None:
            return 0.0
        return (self.end_ns - self.start_ns) / 1e6

    def as_dict(self) -> dict:
        """The JSON shape served by ``GET /v1/debug/traces/<id>``."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ms": round(self.duration_ms, 4),
            "attributes": dict(self.attributes),
        }


class Trace:
    """One request's span collection, rooted at the inbound HTTP span.

    Thread-safe appends: the HTTP thread, the engine executor thread and
    the pool's dispatch path all record into the same trace. The root
    span is created at construction; every other span defaults its
    parent to the root.
    """

    def __init__(
        self,
        name: str,
        *,
        trace_id: "str | None" = None,
        sampled: bool = False,
        remote_parent: "str | None" = None,
    ) -> None:
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.sampled = sampled
        self.error = False
        self._lock = threading.Lock()
        self.root = Span(name, parent_id=remote_parent)
        self._spans: "list[Span]" = [self.root]

    def start_span(
        self, name: str, *, parent: "Span | None" = None, **attributes: object
    ) -> Span:
        """Open a live child span (caller must ``end()`` it)."""
        span = Span(
            name,
            parent_id=(parent if parent is not None else self.root).span_id,
            attributes=attributes or None,
        )
        with self._lock:
            self._spans.append(span)
        return span

    def add_span(
        self,
        name: str,
        *,
        start_ns: int,
        end_ns: int,
        parent: "Span | None" = None,
        attributes: "dict | None" = None,
    ) -> Span:
        """Record an already-finished span from explicit timestamps."""
        span = Span(
            name,
            parent_id=(parent if parent is not None else self.root).span_id,
            start_ns=start_ns,
            attributes=attributes,
        )
        span.end(end_ns)
        with self._lock:
            self._spans.append(span)
        return span

    def add_remote_spans(
        self, spans: "list[dict]", *, base_ns: int, parent: Span
    ) -> None:
        """Stitch worker-recorded offset spans under ``parent``.

        ``spans`` are :meth:`WorkerSpanRecorder.export` dicts whose
        ``start``/``end`` are nanosecond offsets from the worker's local
        origin; rebasing them onto ``base_ns`` (the dispatch instant,
        which precedes the worker origin in real time) keeps every child
        inside its parent span's interval.
        """
        for entry in spans:
            self.add_span(
                entry["name"],
                start_ns=base_ns + int(entry["start"]),
                end_ns=base_ns + int(entry["end"]),
                parent=parent,
                attributes=entry.get("attrs") or None,
            )

    def set_error(self) -> None:
        """Mark the trace failed (forces tail retention)."""
        self.error = True

    @property
    def context(self) -> SpanContext:
        """The propagation context rooted at this trace's root span."""
        return SpanContext(self.trace_id, self.root.span_id, self.sampled)

    def as_dict(self) -> dict:
        """The full-trace JSON: summary fields + the flat span list."""
        self.root.end()
        with self._lock:
            spans = list(self._spans)
        for span in spans:
            span.end()  # a leaked-open span must not corrupt the export
        return {
            "trace_id": self.trace_id,
            "name": self.root.name,
            "sampled": self.sampled,
            "error": self.error,
            "duration_ms": round(self.root.duration_ms, 4),
            "spans": [span.as_dict() for span in spans],
        }


class TraceBuffer:
    """A bounded ring of finished traces (oldest evicted first)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: "deque[dict]" = deque(maxlen=capacity)
        self._dropped = 0

    def add(self, trace: dict) -> None:
        """Retain one finished trace dict, evicting the oldest at capacity."""
        with self._lock:
            if len(self._traces) == self.capacity:
                self._dropped += 1
            self._traces.append(trace)

    def get(self, trace_id: str) -> "dict | None":
        """The retained trace with ``trace_id``, or ``None``."""
        with self._lock:
            for trace in reversed(self._traces):
                if trace["trace_id"] == trace_id:
                    return trace
        return None

    def summaries(self, limit: int = 50) -> "list[dict]":
        """Newest-first digests for ``GET /v1/debug/traces``."""
        with self._lock:
            recent = list(self._traces)[-limit:]
        recent.reverse()
        return [
            {
                "trace_id": trace["trace_id"],
                "name": trace["name"],
                "duration_ms": trace["duration_ms"],
                "error": trace["error"],
                "sampled": trace["sampled"],
                "retained": trace.get("retained", "sampled"),
                "spans": len(trace["spans"]),
            }
            for trace in recent
        ]

    def stats(self) -> dict:
        """``{"retained", "capacity", "dropped"}`` for the list endpoint."""
        with self._lock:
            return {
                "retained": len(self._traces),
                "capacity": self.capacity,
                "dropped": self._dropped,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class Tracer:
    """Per-engine sampling policy + the ring buffer of retained traces.

    ``sample_rate`` is the head-sampling probability (0 disables);
    ``slow_query_ms`` enables tail capture — every request records, but
    only errored/slow/sampled ones are retained. The seeded RNG makes
    sampling decisions reproducible for a fixed request order.
    """

    def __init__(
        self,
        *,
        sample_rate: float = 0.0,
        slow_query_ms: "float | None" = None,
        capacity: int = 256,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be within [0, 1], got {sample_rate}"
            )
        if slow_query_ms is not None and slow_query_ms <= 0:
            raise ValueError(
                f"slow_query_ms must be > 0, got {slow_query_ms}"
            )
        import random

        self.sample_rate = sample_rate
        self.slow_query_ms = slow_query_ms
        self.buffer = TraceBuffer(capacity)
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._started = 0
        self._retained_slow = 0
        self._retained_error = 0

    @property
    def enabled(self) -> bool:
        """Whether any request can ever record spans."""
        return self.sample_rate > 0.0 or self.slow_query_ms is not None

    def begin(
        self, name: str, *, parent: "SpanContext | None" = None
    ) -> "Trace | None":
        """Start a trace for one request, or ``None`` when not recording.

        An inbound sampled ``traceparent`` forces head sampling (and id
        continuity); otherwise the seeded coin decides. With tail
        capture configured, unsampled requests still record so a slow or
        failing one can be retained at :meth:`finish`.
        """
        if parent is not None and parent.sampled:
            sampled = True
        elif self.sample_rate > 0.0:
            with self._rng_lock:
                sampled = self._rng.random() < self.sample_rate
        else:
            sampled = False
        if not sampled and self.slow_query_ms is None:
            return None
        self._started += 1
        return Trace(
            name,
            trace_id=parent.trace_id if parent is not None else None,
            sampled=sampled,
            remote_parent=parent.span_id if parent is not None else None,
        )

    def finish(self, trace: "Trace | None", *, error: bool = False) -> bool:
        """Close ``trace`` and retain it if sampled, slow, or errored.

        Returns whether the trace was retained in the buffer.
        """
        if trace is None:
            return False
        if error:
            trace.set_error()
        trace.root.end()
        slow = (
            self.slow_query_ms is not None
            and trace.root.duration_ms >= self.slow_query_ms
        )
        if not (trace.sampled or trace.error or slow):
            return False
        exported = trace.as_dict()
        if trace.error:
            exported["retained"] = "error"
            self._retained_error += 1
        elif slow:
            exported["retained"] = "slow"
            self._retained_slow += 1
        else:
            exported["retained"] = "sampled"
        self.buffer.add(exported)
        return True

    def stats(self) -> dict:
        """Tracer counters merged with the buffer's, for the list endpoint."""
        out = self.buffer.stats()
        out.update(
            {
                "started": self._started,
                "sample_rate": self.sample_rate,
                "slow_query_ms": self.slow_query_ms,
                "retained_slow": self._retained_slow,
                "retained_error": self._retained_error,
            }
        )
        return out


class WorkerSpanRecorder:
    """Worker-process-side span recording as offsets from a local origin.

    Created once per received task/batch message; spans are exported as
    plain dicts (``{"name", "start", "end", "attrs"}`` with nanosecond
    offsets from the message-receipt origin) that ride back to the
    parent inside the result payload. Ids are assigned parent-side at
    stitch time, so nothing here needs to be globally unique.
    """

    __slots__ = ("origin_ns", "_spans")

    def __init__(self) -> None:
        self.origin_ns = time.monotonic_ns()
        self._spans: "list[tuple[str, int, int, dict]]" = []

    def now(self) -> int:
        """Nanoseconds since this recorder's origin."""
        return time.monotonic_ns() - self.origin_ns

    def record(
        self, name: str, start_off: int, end_off: "int | None" = None, **attrs: object
    ) -> None:
        """Record one finished span from explicit offsets."""
        end = end_off if end_off is not None else self.now()
        self._spans.append((name, start_off, end, dict(attrs)))

    def export(self) -> "list[dict]":
        """The recorded spans as picklable offset dicts."""
        return [
            {"name": name, "start": start, "end": end, "attrs": attrs}
            for name, start, end, attrs in self._spans
        ]


def trace_tree(trace: dict) -> "list[dict]":
    """Nest a flat exported trace into ``children`` lists, roots first.

    Spans whose parent is missing from the trace (e.g. a remote parent
    from an inbound ``traceparent``) become roots. Children are ordered
    by start time.
    """
    nodes = {
        span["span_id"]: dict(span, children=[]) for span in trace["spans"]
    }
    roots: "list[dict]" = []
    for span in trace["spans"]:
        node = nodes[span["span_id"]]
        parent = nodes.get(span["parent_id"]) if span["parent_id"] else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent["children"].append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda child: child["start_ns"])
    roots.sort(key=lambda node: node["start_ns"])
    return roots


# -- structured logging ------------------------------------------------------

_LOG_LOCK = threading.Lock()
_LOG_FORMAT = "text"
VALID_LOG_FORMATS = ("text", "json")


def set_log_format(fmt: str) -> None:
    """Select the process-wide log line format (``"text"`` or ``"json"``)."""
    if fmt not in VALID_LOG_FORMATS:
        raise ValueError(
            f"log format must be one of {VALID_LOG_FORMATS}, got {fmt!r}"
        )
    global _LOG_FORMAT
    _LOG_FORMAT = fmt


def get_log_format() -> str:
    """The current log line format."""
    return _LOG_FORMAT


def log_event(
    event: str, *, trace_id: "str | None" = None, stream=None, **fields: object
) -> None:
    """Write one structured log line to stderr (or ``stream``).

    Text mode renders ``event key=value ...``; JSON mode renders one
    object per line with ``trace_id`` included whenever the triggering
    request carries a trace — the greppable join key between logs,
    ``/v1/debug/traces`` and metric exemplars.
    """
    out = stream if stream is not None else sys.stderr
    if _LOG_FORMAT == "json":
        payload: dict = {"event": event, "ts": round(time.time(), 6)}
        if trace_id is not None:
            payload["trace_id"] = trace_id
        payload.update(fields)
        line = json.dumps(payload, sort_keys=True, default=str)
    else:
        parts = [event]
        if trace_id is not None:
            parts.append(f"trace_id={trace_id}")
        parts.extend(f"{key}={value}" for key, value in fields.items())
        line = " ".join(parts)
    with _LOG_LOCK:
        print(line, file=out, flush=True)
