"""Property-based test: the BGP join engine against a brute-force oracle."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.query import BGPQuery, TriplePattern, Variable
from repro.store.terms import IRI
from repro.store.triples import Triple
from repro.store.triplestore import TripleStore

subjects = [IRI(f"s{i}") for i in range(4)]
predicates = [IRI(f"p{i}") for i in range(2)]
objects = [IRI(f"o{i}") for i in range(3)] + subjects

triples = st.builds(
    Triple,
    st.sampled_from(subjects),
    st.sampled_from(predicates),
    st.sampled_from(objects),
)

pattern_terms = st.one_of(
    st.sampled_from(subjects + predicates + objects),
    st.sampled_from([Variable("x"), Variable("y"), Variable("z")]),
)
patterns = st.builds(TriplePattern, pattern_terms, pattern_terms, pattern_terms)


def brute_force(store_triples, bgp_patterns):
    """Enumerate all variable assignments over the store's terms."""
    variables = sorted({v for p in bgp_patterns for v in p.variables()})
    universe = sorted(
        {t.subject for t in store_triples}
        | {t.predicate for t in store_triples}
        | {t.object for t in store_triples}
    )
    results = set()
    for assignment in product(universe, repeat=len(variables)):
        binding = dict(zip(variables, assignment))
        ok = True
        for pattern in bgp_patterns:
            def resolve(term):
                return binding[term.name] if isinstance(term, Variable) else term

            candidate = (
                resolve(pattern.subject),
                resolve(pattern.predicate),
                resolve(pattern.object),
            )
            if not any(t.as_tuple() == candidate for t in store_triples):
                ok = False
                break
        if ok:
            results.add(tuple(sorted(binding.items())))
    return results


@given(
    st.lists(triples, min_size=1, max_size=10, unique=True),
    st.lists(patterns, min_size=1, max_size=2),
)
@settings(max_examples=40, deadline=None)
def test_bgp_matches_bruteforce(store_triples, bgp_patterns):
    # Literal-in-predicate patterns can never match; the engine must agree.
    store = TripleStore(store_triples)
    query = BGPQuery(bgp_patterns)
    engine_results = {
        tuple(sorted(binding.items())) for binding in query.evaluate(store)
    }
    expected = brute_force(store_triples, bgp_patterns)
    assert engine_results == expected
