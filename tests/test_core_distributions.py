"""Unit tests for the Inst/Card distributions (Section 3.2)."""

import pytest

from repro.core.distributions import (
    NONE_INSTANCE,
    build_distributions,
    cardinality_counts,
    instance_counts,
)
from repro.graph.builder import GraphBuilder


@pytest.fixture()
def graph():
    return (
        GraphBuilder()
        .fact("merkel", "studied", "physics")
        .fact("obama", "studied", "law")
        .fact("putin", "studied", "law")
        .fact("obama", "hasChild", "malia")
        .fact("obama", "hasChild", "natasha")
        .fact("putin", "hasChild", "mariya")
        .node("renzi")
        .build()
    )


class TestInstanceCounts:
    def test_values_counted_by_name(self, graph):
        counts = instance_counts(
            graph, [graph.node_id("obama"), graph.node_id("putin")], "studied"
        )
        assert counts == {"law": 2}

    def test_none_bucket_for_missing_edge(self, graph):
        counts = instance_counts(
            graph, [graph.node_id("merkel"), graph.node_id("renzi")], "studied"
        )
        assert counts[NONE_INSTANCE] == 1
        assert counts["physics"] == 1

    def test_none_bucket_disabled(self, graph):
        counts = instance_counts(
            graph, [graph.node_id("renzi")], "studied", none_bucket=False
        )
        assert counts == {}

    def test_multi_edges_counted_per_edge(self, graph):
        counts = instance_counts(graph, [graph.node_id("obama")], "hasChild")
        assert sum(counts.values()) == 2

    def test_none_sentinel_is_singleton_and_prints_none(self):
        assert str(NONE_INSTANCE) == "None"
        from repro.core.distributions import _NoneInstance

        assert _NoneInstance() is NONE_INSTANCE


class TestCardinalityCounts:
    def test_counts_by_degree(self, graph):
        nodes = [graph.node_id(n) for n in ("merkel", "obama", "putin", "renzi")]
        counts = cardinality_counts(graph, nodes, "hasChild")
        assert counts == {0: 2, 1: 1, 2: 1}

    def test_unknown_label_all_zero(self, graph):
        counts = cardinality_counts(graph, [graph.node_id("obama")], "nope")
        assert counts == {0: 1}


class TestBuildDistributions:
    def test_aligned_supports(self, graph):
        dists = build_distributions(
            graph,
            [graph.node_id("merkel")],
            [graph.node_id("obama"), graph.node_id("putin")],
            "studied",
        )
        assert len(dists.instance_support) == len(dists.inst_query)
        assert len(dists.instance_support) == len(dists.inst_context)
        assert dists.label == "studied"

    def test_query_counts_zero_on_context_only_values(self, graph):
        dists = build_distributions(
            graph,
            [graph.node_id("merkel")],
            [graph.node_id("obama"), graph.node_id("putin")],
            "studied",
        )
        law_index = list(dists.instance_support).index("law")
        assert dists.inst_query[law_index] == 0
        assert dists.inst_context[law_index] == 2

    def test_cardinality_support_contiguous(self, graph):
        graph.add_edge("renzi", "hasChild", "francesca")
        graph.add_edge("hollande", "hasChild", "thomas")
        graph.add_edge("hollande", "hasChild", "flora")
        graph.add_edge("hollande", "hasChild", "julien")
        dists = build_distributions(
            graph,
            [graph.node_id("hollande")],
            [graph.node_id("obama"), graph.node_id("merkel")],
            "hasChild",
        )
        assert dists.cardinality_support == (0, 1, 2, 3)

    def test_sizes_recoverable(self, graph):
        query = [graph.node_id("merkel")]
        context = [graph.node_id(n) for n in ("obama", "putin", "renzi")]
        dists = build_distributions(graph, query, context, "hasChild")
        assert dists.query_size == 1
        assert dists.context_size == 3

    def test_rows_for_reporting(self, graph):
        dists = build_distributions(
            graph,
            [graph.node_id("merkel")],
            [graph.node_id("obama")],
            "studied",
        )
        instance_rows = dists.instance_rows()
        assert all(len(row) == 3 for row in instance_rows)
        card_rows = dists.cardinality_rows()
        assert card_rows[0][0] == 0
