"""Triple value object."""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from repro.store.terms import IRI, Term, coerce_term


@total_ordering
@dataclass(frozen=True, slots=True)
class Triple:
    """An (subject, predicate, object) statement.

    Subjects are IRIs, predicates are IRIs, objects may be IRIs or literals —
    matching N-Triples minus blank nodes, which neither YAGO facts nor the
    synthetic datasets need.
    """

    subject: IRI
    predicate: IRI
    object: Term

    @classmethod
    def of(cls, subject: "IRI | str", predicate: "IRI | str", obj: "Term | str") -> "Triple":
        """Build a triple, coercing bare strings into IRIs."""
        s = coerce_term(subject)
        p = coerce_term(predicate)
        o = coerce_term(obj)
        if not isinstance(s, IRI):
            raise TypeError("triple subject must be an IRI")
        if not isinstance(p, IRI):
            raise TypeError("triple predicate must be an IRI")
        return cls(s, p, o)

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def as_tuple(self) -> tuple[IRI, IRI, Term]:
        return (self.subject, self.predicate, self.object)

    def __iter__(self):
        return iter(self.as_tuple())

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self.as_tuple() < other.as_tuple()
