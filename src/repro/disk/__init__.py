"""Persistence substrate: the memory-mapped snapshot store + bulk ingest.

The third transport for compiled graph snapshots. PR 1 compiled the
in-process columnar :class:`~repro.graph.compiled.CompiledGraph`; PR 3
published it over :mod:`multiprocessing.shared_memory` for worker
processes; this package puts the same block layout in a **single
immutable file**, so serving cold-starts by mapping pages instead of
parsing dumps:

* :func:`save_snapshot` / :func:`save_graph_snapshot` — write one graph
  version (eight snapshot arrays + name tables + optionally the frozen
  PPR transition CSR) with a versioned binary header;
* :func:`open_snapshot` / :func:`open_snapshot_view` — zero-copy
  :class:`numpy.memmap` reconstruction, wrapped in the
  :class:`~repro.parallel.shm.SnapshotGraphView` reader surface so the
  unchanged FindNC pipeline (and :class:`~repro.service.engine.NCEngine`,
  both executor backends) serves straight off disk with **no**
  :class:`~repro.graph.model.KnowledgeGraph` in the process;
* :func:`ingest_file` / :func:`ingest_triples` — the streaming bulk
  ingester behind ``repro compile``: N-Triples/TSV dumps compile
  directly into CSR arrays through two counting passes, never
  materializing the dict graph;
* :class:`SnapshotRegistry` (PR 5) — a *directory* of versioned
  snapshot files with monotonic ids, an atomic manifest, and
  retention GC: the publish side of multi-version hot-swap serving
  (``repro publish`` / ``repro serve --snapshot-dir`` /
  ``POST /admin/reload``);
* :func:`inspect_snapshot` — the stored-header audit behind
  ``repro inspect``;
* :class:`DeltaLog` / :func:`merge_snapshot_file` (PR 10) — the live
  write path: statement-level add/remove batches persist as immutable
  delta runs against a chain base, fold incrementally into fresh
  snapshots byte-identical to a full recompile, and compact back into
  self-standing versions (``repro ingest`` / ``repro compact`` /
  ``POST /v1/admin/ingest``).

File-format details and the cold-start lifecycle live in
``docs/ARCHITECTURE.md``; the operator guide is ``docs/OPERATIONS.md``.
"""

from repro.disk.delta import (
    DeltaFormatError,
    DeltaLog,
    DeltaLogError,
    DeltaRun,
    canonicalize_ops,
    inspect_delta_run,
    parse_delta_lines,
    read_delta_run,
    write_delta_run,
)
from repro.disk.ingest import (
    IngestStats,
    StreamingCompiler,
    compile_triples,
    detect_format,
    ingest_file,
    ingest_triples,
    merge_snapshot_file,
)
from repro.disk.registry import (
    RegistryEntry,
    RegistryError,
    SnapshotRegistry,
    is_snapshot_file,
)
from repro.disk.store import (
    DiskSnapshot,
    DiskSnapshotHeader,
    DiskSnapshotPublication,
    SnapshotFormatError,
    inspect_snapshot,
    open_snapshot,
    open_snapshot_view,
    save_graph_snapshot,
    save_snapshot,
)

__all__ = [
    "DeltaFormatError",
    "DeltaLog",
    "DeltaLogError",
    "DeltaRun",
    "DiskSnapshot",
    "DiskSnapshotHeader",
    "DiskSnapshotPublication",
    "IngestStats",
    "RegistryEntry",
    "RegistryError",
    "SnapshotFormatError",
    "SnapshotRegistry",
    "canonicalize_ops",
    "inspect_delta_run",
    "inspect_snapshot",
    "is_snapshot_file",
    "merge_snapshot_file",
    "parse_delta_lines",
    "read_delta_run",
    "StreamingCompiler",
    "compile_triples",
    "detect_format",
    "ingest_file",
    "ingest_triples",
    "open_snapshot",
    "open_snapshot_view",
    "save_graph_snapshot",
    "save_snapshot",
    "write_delta_run",
]
