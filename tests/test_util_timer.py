"""Unit tests for timing utilities."""

import pytest

from repro.util.timer import Stopwatch, time_call, timed


class TestStopwatch:
    def test_context_manager_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        with sw:
            pass
        assert sw.elapsed >= 0
        assert len(sw.laps) == 2
        assert sw.mean_lap == pytest.approx(sw.elapsed / 2)

    def test_double_start_rejected(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_running_flag(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0
        assert sw.laps == []

    def test_mean_lap_empty(self):
        assert Stopwatch().mean_lap == 0.0


class TestTimedHelpers:
    def test_timed_records_into_sink(self):
        sink: dict[str, float] = {}
        with timed("step", sink):
            pass
        assert "step" in sink and sink["step"] >= 0

    def test_timed_accumulates(self):
        sink: dict[str, float] = {}
        with timed("step", sink):
            pass
        first = sink["step"]
        with timed("step", sink):
            pass
        assert sink["step"] >= first

    def test_timed_without_sink(self):
        with timed("x") as watch:
            pass
        assert watch.elapsed >= 0

    def test_time_call(self):
        result, elapsed = time_call(lambda a, b: a + b, 2, b=3)
        assert result == 5
        assert elapsed >= 0
