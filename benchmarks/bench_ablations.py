"""Ablations over the design choices DESIGN.md calls out.

Not part of the paper's evaluation — these quantify the knobs the paper
leaves ambiguous or that the reproduction had to pin down:

* the baseline's damping factor (§3.1 says 0.8, §4 uses 0.2);
* label-informativeness weighting of the walker (Equation 1) vs uniform;
* the |M| cut (keeping the full singleton tail vs the paper's top-|M|).
"""

from conftest import run_once

from repro.core.context import ContextRW, RandomWalkContext
from repro.datasets.seeds import ACTORS_DOMAIN
from repro.eval.experiments import ground_truth_for, resolve_domain_queries
from repro.eval.metrics import f1_at
from repro.util.tables import Table


def _ablation_table(setting):
    graph = setting.graph()
    query = resolve_domain_queries(graph, ACTORS_DOMAIN)[2]  # |Q| = 4
    truth = ground_truth_for(setting, graph, query)
    table = Table(
        ["variant", "f1_at_100"],
        title="Ablations (actors, |Q|=4, |C|=100)",
    )

    for damping in (0.2, 0.5, 0.8):
        result = RandomWalkContext(graph, damping=damping).select(query, 100)
        table.add_row(
            [f"RandomWalk damping={damping}", f1_at(result.nodes, truth.entities, 100)]
        )
    for weighted in (True, False):
        result = ContextRW(
            graph, weighted=weighted, rng=setting.algorithm_seed
        ).select(query, 100)
        label = "weighted (Eq.1)" if weighted else "uniform walker"
        table.add_row([f"ContextRW {label}", f1_at(result.nodes, truth.entities, 100)])
    for max_paths in (10, None):
        result = ContextRW(
            graph, max_paths=max_paths, rng=setting.algorithm_seed
        ).select(query, 100)
        label = f"|M|={max_paths}" if max_paths else "all mined paths"
        table.add_row([f"ContextRW {label}", f1_at(result.nodes, truth.entities, 100)])
    return table


def test_ablations(benchmark, setting):
    table = run_once(benchmark, _ablation_table, setting)
    print()
    print(table.render())

    values = dict(table.rows)
    # The reproduction's choices must not be worse than the alternatives
    # by a wide margin — and the headline ones must win.
    assert values["ContextRW |M|=10"] >= values["ContextRW all mined paths"] - 0.05, (
        "keeping the singleton tail should not be better"
    )
    best_rw = max(v for k, v in values.items() if k.startswith("RandomWalk"))
    crw = values["ContextRW weighted (Eq.1)"]
    assert crw > best_rw, (
        f"ContextRW must beat the best baseline variant ({crw:.3f} vs {best_rw:.3f})"
    )
