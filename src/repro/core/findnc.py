"""FindNC — the end-to-end notable characteristics search (Problem 1).

``FindNC`` wires a context selector (default :class:`ContextRW`) to a
discriminator (default the multinomial test) and evaluates every candidate
edge label ``L | Q ∪ C`` (Definition 3). The paper's baseline **RWMult**
— PPR context + multinomial test — is the :func:`rw_mult` factory.

Paper cross-reference (Mottin et al., EDBT 2018):

* **Problem 1** (find the notable characteristics of ``Q``) —
  :meth:`FindNC.run`, the two-phase pipeline: context selection then
  per-label discrimination.
* **Definition 2** (the context ``C``: similar entities, disjoint from
  ``Q``, ``|C| = k``) — the ``context_size`` parameter and the injected
  :class:`~repro.core.context.ContextSelector`.
* **Definition 3** (candidate labels ``L | Q ∪ C`` and the
  discrimination function ``delta``) — :meth:`FindNC.candidate_labels`
  (with the type-system exclusions of
  :func:`default_excluded_labels`) and the
  :class:`~repro.core.discrimination.Discriminator` scoring loop.
* **Section 3.2** (instance/cardinality distributions) — delegated to
  :mod:`repro.core.distributions`.
* **Figure 5** (runtime vs query size) — ``elapsed_context`` /
  ``elapsed_discrimination`` on :class:`FindNCResult` are the two cost
  components that figure plots; the benchmark driver is
  ``benchmarks/bench_fig5_time_vs_query_size.py``.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.context import ContextResult, ContextRW, ContextSelector, RandomWalkContext
from repro.core.discrimination import (
    DiscriminationResult,
    Discriminator,
    MultinomialDiscriminator,
)
from repro.core.distributions import build_all_distributions, build_distributions
from repro.errors import QueryError
from repro.graph.labels import SUBCLASS_OF_LABEL, TYPE_LABEL, inverse_label, is_inverse_label
from repro.graph.model import KnowledgeGraph, NodeRef
from repro.graph.search import EntityIndex, resolve_node_refs
from repro.util.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.graph.compiled import CompiledGraph


@dataclass(frozen=True)
class NotableCharacteristic:
    """One notable characteristic, ready for presentation."""

    label: str
    score: float
    channel: str
    p_value: float | None
    detail: DiscriminationResult

    def explanation(self, graph: KnowledgeGraph) -> str:
        """A one-paragraph, human-readable account of the finding."""
        dists = self.detail.distributions
        lines = [
            f"'{self.label}' is notable (score {self.score:.3f}, "
            f"driven by the {self.channel} distribution"
        ]
        if self.p_value is not None:
            lines[-1] += f", significance probability {self.p_value:.4f}"
        lines[-1] += ")."
        if dists is None:
            return lines[0]
        if self.channel == "instance":
            top_context = [
                f"{value} ({c}x)"
                for value, _, c in sorted(
                    dists.instance_rows(), key=lambda row: -row[2]
                )[:3]
                if c
            ]
            top_query = [
                f"{value} ({q}x)"
                for value, q, _ in sorted(
                    dists.instance_rows(), key=lambda row: -row[1]
                )[:3]
                if q
            ]
            lines.append(f"Context values: {', '.join(top_context) or 'none'}.")
            lines.append(f"Query values: {', '.join(top_query) or 'none'}.")
        else:
            card_rows = dists.cardinality_rows()
            query_mode = max(card_rows, key=lambda row: row[1])[0] if card_rows else 0
            context_mode = max(card_rows, key=lambda row: row[2])[0] if card_rows else 0
            lines.append(
                f"Typical count in the query: {query_mode}; in the context: "
                f"{context_mode}."
            )
        return " ".join(lines)


@dataclass
class FindNCResult:
    """Everything produced by one FindNC run."""

    query: tuple[int, ...]
    context: ContextResult
    results: list[DiscriminationResult]
    elapsed_context: float
    elapsed_discrimination: float
    notable: list[NotableCharacteristic] = field(default_factory=list)

    @property
    def elapsed_total(self) -> float:
        """Context-search plus discrimination wall time, in seconds."""
        return self.elapsed_context + self.elapsed_discrimination

    def result_for(self, label: str) -> DiscriminationResult:
        """The discrimination result of ``label`` (KeyError if unevaluated)."""
        # Memoized {label: result} index instead of an O(n) scan per call.
        # ``results`` is a public mutable list, so the cache is re-keyed on
        # the elements' *identities*: replacing/removing/adding entries
        # rebuilds it. The indexed entries are kept alive inside the state
        # tuple (strong references), so a GC'd entry's ``id()`` being
        # reused can never revive a stale index — and the whole state is
        # stored in ONE attribute assignment, so threads sharing a cached
        # result always observe a matching (entries, index) pair; rebuild
        # races waste a little work but never mix states.
        entries = tuple(self.results)
        state = self.__dict__.get("_result_index_state")
        if (
            state is None
            or len(state[0]) != len(entries)
            or any(a is not b for a, b in zip(state[0], entries))
        ):
            index: dict[str, DiscriminationResult] = {}
            for result in entries:
                index.setdefault(result.label, result)  # first match wins
            state = (entries, index)
            self.__dict__["_result_index_state"] = state
        try:
            return state[1][label]
        except KeyError:
            raise KeyError(f"label {label!r} was not evaluated") from None

    def notable_labels(self) -> list[str]:
        """The notable characteristics' labels, best score first."""
        return [n.label for n in self.notable]

    def significance_probabilities(self) -> dict[str, float]:
        """``{label: min channel p-value}`` — the series Figure 9 plots."""
        out: dict[str, float] = {}
        for result in self.results:
            p = result.min_p_value
            if p is not None:
                out[result.label] = p
        return out

    def summary(self, graph: KnowledgeGraph, *, limit: int = 10) -> str:
        """A human-readable digest (query, context, top notable labels)."""
        lines = [
            f"query: {[graph.node_name(n) for n in self.query]}",
            f"context: {len(self.context)} nodes "
            f"({self.context.algorithm}, {self.elapsed_context:.2f}s)",
            f"candidates evaluated: {len(self.results)} "
            f"({self.elapsed_discrimination:.2f}s)",
            f"notable characteristics: {len(self.notable)}",
        ]
        for item in self.notable[:limit]:
            lines.append(f"  - {item.explanation(graph)}")
        return "\n".join(lines)


def default_excluded_labels() -> frozenset[str]:
    """Labels excluded from candidacy by default: the type system.

    ``type`` / ``subclassOf`` edges encode the ontology, not facts about
    the entities; reporting "the query has unusual types" is usually
    uninformative (and YAGO's 366K types would flood the Inst support).
    Both directions are excluded. Pass ``excluded_labels=frozenset()`` to
    re-include them.
    """
    return frozenset(
        {
            TYPE_LABEL,
            SUBCLASS_OF_LABEL,
            inverse_label(TYPE_LABEL),
            inverse_label(SUBCLASS_OF_LABEL),
        }
    )


class FindNC:
    """Notable characteristics search over a knowledge graph.

    >>> # doctest-style sketch (see examples/quickstart.py for a real run)
    >>> # finder = FindNC(graph)
    >>> # result = finder.run(["Angela_Merkel", "Barack_Obama"], context_size=100)
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        *,
        context_selector: ContextSelector | None = None,
        discriminator: Discriminator | None = None,
        context_size: int = 100,
        excluded_labels: Iterable[str] | None = None,
        include_inverse_labels: bool = False,
        none_bucket: bool = True,
        batch_distributions: bool = True,
        rng: RandomSource = None,
        entity_index: EntityIndex | None = None,
    ) -> None:
        self._graph = graph
        self._selector = context_selector or ContextRW(graph, rng=rng)
        self._discriminator = discriminator or MultinomialDiscriminator(rng=rng)
        if context_size < 1:
            raise ValueError(f"context_size must be >= 1, got {context_size}")
        self.context_size = context_size
        self.excluded_labels = (
            frozenset(excluded_labels)
            if excluded_labels is not None
            else default_excluded_labels()
        )
        self.include_inverse_labels = include_inverse_labels
        self.none_bucket = none_bucket
        #: When True (default) the discrimination phase builds every
        #: candidate's distributions in one sweep; False falls back to the
        #: per-label reference path (same results, reference cost profile).
        self.batch_distributions = batch_distributions
        # Built on first fuzzy lookup — id / exact-name queries never pay
        # for the normalized-name index. The query service injects a
        # shared, pre-built index so per-request finders don't rebuild it.
        self._entity_index: EntityIndex | None = entity_index

    @property
    def graph(self) -> KnowledgeGraph:
        """The graph (or frozen snapshot view) this finder searches."""
        return self._graph

    @property
    def selector(self) -> ContextSelector:
        """The context-search strategy (Phase 1 of Algorithm 1)."""
        return self._selector

    @property
    def discriminator(self) -> Discriminator:
        """The per-label discrimination test (Phase 2 of Algorithm 1)."""
        return self._discriminator

    @property
    def entity_index(self) -> EntityIndex:
        """The fuzzy name resolver (built lazily on first use)."""
        if self._entity_index is None:
            self._entity_index = EntityIndex(self._graph)
        return self._entity_index

    # -- query plumbing ----------------------------------------------------

    def resolve_query(self, query: Sequence[NodeRef]) -> tuple[int, ...]:
        """Accept node ids, exact names, or fuzzy names (Section 2 input)."""
        if len(query) == 0:
            raise QueryError("the query set must not be empty")
        resolved = resolve_node_refs(
            self._graph, query, lambda: self.entity_index
        )
        return tuple(dict.fromkeys(resolved))  # dedupe, keep order

    # -- the pipeline --------------------------------------------------------

    def candidate_labels(
        self, nodes: Iterable[int], *, snapshot: "CompiledGraph | None" = None
    ) -> list[str]:
        """``L | Q ∪ C`` minus exclusions (Definition 3's restriction).

        With a pinned ``snapshot`` the incident labels come from the
        snapshot's edge rows instead of the live adjacency dicts, so the
        candidate set stays consistent with the snapshot even while
        writers mutate the graph. Both paths produce the same labels in
        the same (sorted) order for an unmutated graph.
        """
        if snapshot is None:
            labels = sorted(self._graph.incident_labels(nodes))
        else:
            table = self._graph._label_table()  # noqa: SLF001 - label ids only grow
            labels = sorted(
                table.name(int(label_id))
                for label_id in snapshot.incident_label_ids(list(nodes))
            )
        return self._filter_candidates(labels)

    def _filter_candidates(self, labels: "list[str]") -> list[str]:
        """Apply the exclusion and inverse-label policy to sorted names."""
        out = []
        for label in labels:
            if label in self.excluded_labels:
                continue
            if not self.include_inverse_labels and is_inverse_label(label):
                continue
            out.append(label)
        return out

    def run(
        self,
        query: Sequence[NodeRef],
        *,
        context_size: int | None = None,
        context: ContextResult | None = None,
        snapshot: "CompiledGraph | None" = None,
        sweep_cache: "dict | None" = None,
    ) -> FindNCResult:
        """Execute the full pipeline for ``query``.

        A pre-computed ``context`` can be injected (the benchmarks reuse
        one context across distribution sweeps); otherwise the configured
        selector runs with ``context_size``.

        A pinned ``snapshot`` (from :meth:`KnowledgeGraph.compiled`) makes
        the discrimination phase — candidate enumeration and the batch
        distribution sweep — read only that immutable snapshot instead of
        re-resolving the graph's current one per call, so the run is
        consistent against concurrent writers. The query must be covered
        by the snapshot; pinning requires the batch path
        (``batch_distributions=True``).

        ``sweep_cache`` hands the batch distribution builder counters
        precomputed by
        :func:`repro.core.distributions.sweep_counts_many` against the
        same snapshot, keyed by node-id tuple (the micro-batch worker
        sweeps every batch member's query and context sets in one fused
        pass). Sets missing from the cache are swept normally, so a
        cache miss costs only the amortisation, never correctness.
        """
        query_ids = self.resolve_query(query)
        k = context_size if context_size is not None else self.context_size
        if snapshot is not None:
            if not self.batch_distributions:
                raise ValueError(
                    "snapshot pinning requires batch_distributions=True "
                    "(the reference path scans the live adjacency)"
                )
            if not snapshot.covers(query_ids):
                raise QueryError(
                    "query references nodes newer than the pinned snapshot"
                )

        started = time.perf_counter()
        if context is None:
            context = self._selector.select(query_ids, k)
        elapsed_context = time.perf_counter() - started

        started = time.perf_counter()
        members = list(query_ids) + context.nodes
        if snapshot is not None and not snapshot.covers(members):
            # The selector ran against a newer graph than the snapshot
            # (it returned nodes the snapshot has never seen). Surface a
            # clean error instead of indexing out of bounds — callers
            # serving pinned requests must pin the selector too (the
            # query service pins both; see repro.service.engine).
            raise QueryError(
                "context references nodes newer than the pinned snapshot; "
                "pin the context selector to the same graph version"
            )
        cached_sweeps = None
        if sweep_cache is not None and self.batch_distributions:
            query_sweep = sweep_cache.get(tuple(query_ids))
            context_sweep = sweep_cache.get(tuple(context.nodes))
            if query_sweep is not None and context_sweep is not None:
                cached_sweeps = (query_sweep, context_sweep)
        if cached_sweeps is not None:
            # The fused sweeps already counted every member's edges, so
            # the candidate set (labels incident to Q ∪ C) falls out of
            # their per-label member counts — no third edge gather.
            table = self._graph._label_table()  # noqa: SLF001 - label ids only grow
            incident = np.flatnonzero(
                cached_sweeps[0].members_with_label
                + cached_sweeps[1].members_with_label
            )
            labels = self._filter_candidates(
                sorted(table.name(int(label_id)) for label_id in incident)
            )
        else:
            labels = self.candidate_labels(members, snapshot=snapshot)
        if self.batch_distributions:
            distribution_map = build_all_distributions(
                self._graph,
                query_ids,
                context.nodes,
                labels,
                none_bucket=self.none_bucket,
                compiled=snapshot,
                sweep_cache=sweep_cache,
            )
        else:  # reference path: one adjacency scan per candidate label
            distribution_map = {
                label: build_distributions(
                    self._graph,
                    query_ids,
                    context.nodes,
                    label,
                    none_bucket=self.none_bucket,
                )
                for label in labels
            }
        results = [
            self._discriminator.score(distributions)
            for distributions in distribution_map.values()
        ]
        elapsed_discrimination = time.perf_counter() - started

        results.sort(key=lambda r: (-r.score, r.label))
        notable = [
            NotableCharacteristic(
                label=result.label,
                score=result.score,
                channel=result.channel,
                p_value=result.min_p_value,
                detail=result,
            )
            for result in results
            if result.notable
        ]
        return FindNCResult(
            query=query_ids,
            context=context,
            results=results,
            elapsed_context=elapsed_context,
            elapsed_discrimination=elapsed_discrimination,
            notable=notable,
        )


def rw_mult(
    graph: KnowledgeGraph,
    *,
    context_size: int = 100,
    damping: float = 0.8,
    iterations: int = 10,
    alpha: float = 0.05,
    rng: RandomSource = None,
    **kwargs,
) -> FindNC:
    """The paper's RWMult baseline: RandomWalk context + multinomial test."""
    return FindNC(
        graph,
        context_selector=RandomWalkContext(
            graph, damping=damping, iterations=iterations
        ),
        discriminator=MultinomialDiscriminator(alpha=alpha, rng=rng),
        context_size=context_size,
        **kwargs,
    )
