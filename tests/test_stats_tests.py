"""Unit tests for the classical tests (chi-square, z-test)."""

import pytest

from repro.errors import StatisticsError
from repro.stats.tests import chi_square_test, two_proportion_z_test


class TestChiSquare:
    def test_perfect_fit_not_significant(self):
        result = chi_square_test([25, 25, 25, 25], [0.25, 0.25, 0.25, 0.25])
        assert result.p_value > 0.9
        assert result.assumptions_met

    def test_gross_misfit_significant(self):
        result = chi_square_test([100, 0], [0.5, 0.5])
        assert result.p_value < 1e-6

    def test_small_sample_warns(self):
        result = chi_square_test([2, 1], [0.5, 0.5])
        assert not result.assumptions_met
        assert "expected" in result.assumption_warnings[0]

    def test_zero_expected_with_observation(self):
        result = chi_square_test([1, 1], [1.0, 0.0])
        assert result.p_value == 0.0

    def test_zero_expected_without_observation_ok(self):
        result = chi_square_test([5, 0], [1.0, 0.0])
        assert result.p_value > 0.9

    def test_unnormalized_expectation_is_normalized(self):
        # expected_probs is treated as relative weights.
        a = chi_square_test([10, 20], [0.5, 0.25])
        b = chi_square_test([10, 20], [2 / 3, 1 / 3])
        assert a.p_value == pytest.approx(b.p_value)

    def test_validation(self):
        with pytest.raises(StatisticsError):
            chi_square_test([], [])
        with pytest.raises(StatisticsError):
            chi_square_test([-1, 2], [0.5, 0.5])
        with pytest.raises(StatisticsError):
            chi_square_test([0, 0], [0.5, 0.5])  # no observations


class TestZTest:
    def test_equal_proportions_not_significant(self):
        result = two_proportion_z_test(50, 100, 50, 100)
        assert result.p_value > 0.9

    def test_different_proportions_significant(self):
        result = two_proportion_z_test(90, 100, 10, 100)
        assert result.p_value < 1e-6

    def test_small_samples_warn(self):
        result = two_proportion_z_test(3, 5, 1, 4)
        assert not result.assumptions_met

    def test_unanimous_equal_groups(self):
        result = two_proportion_z_test(5, 5, 7, 7)
        assert result.p_value == 1.0

    def test_symmetry(self):
        a = two_proportion_z_test(30, 50, 20, 60)
        b = two_proportion_z_test(20, 60, 30, 50)
        assert a.p_value == pytest.approx(b.p_value)
        assert a.statistic == pytest.approx(-b.statistic)

    def test_validation(self):
        with pytest.raises(StatisticsError):
            two_proportion_z_test(1, 0, 1, 2)
        with pytest.raises(StatisticsError):
            two_proportion_z_test(5, 3, 1, 2)  # successes > total
        with pytest.raises(StatisticsError):
            two_proportion_z_test(-1, 3, 1, 2)
