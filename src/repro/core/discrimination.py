"""Discrimination functions delta (Definition 3 / Section 3.2).

The reference implementation is :class:`MultinomialDiscriminator`: the
context distribution, normalized into a multinomial hypothesis, is tested
against the query observations; the score is::

    MT(pi, x) = 1 - Pr_s(X_{N,pi} = x)   if Pr_s <= alpha, else 0
    delta(l, C, Q) = max(delta_Inst, delta_Card)

:class:`KLDiscriminator`, :class:`EMDDiscriminator` and
:class:`ChiSquareDiscriminator` implement the alternatives the paper
compares against in the Section 4.2 "Metrics comparison" experiment; their
scores are raw divergences (higher = more different) rather than
probability complements.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.distributions import CharacteristicDistributions
from repro.stats.divergence import kl_divergence
from repro.stats.emd import earth_movers_distance_1d, total_variation_distance
from repro.stats.histograms import counts_to_probabilities
from repro.stats.multinomial import MultinomialTestResult, multinomial_test
from repro.stats.tests import chi_square_test
from repro.util.rng import RandomSource, ensure_rng


@dataclass(frozen=True)
class DiscriminationResult:
    """delta applied to one characteristic.

    ``score`` follows the paper's convention: 0 means "not notable";
    any positive value means notable, larger = more notable. For the
    multinomial discriminator the per-channel significance probabilities
    (p-values) are carried along — Figure 9 plots exactly those.
    """

    label: str
    score: float
    inst_score: float
    card_score: float
    inst_p_value: float | None = None
    card_p_value: float | None = None
    distributions: CharacteristicDistributions | None = None

    @property
    def notable(self) -> bool:
        """Whether either channel cleared the discriminator's bar."""
        return self.score > 0.0

    @property
    def channel(self) -> str:
        """Which distribution pair drove the final score."""
        return "instance" if self.inst_score >= self.card_score else "cardinality"

    @property
    def min_p_value(self) -> float | None:
        """The smaller of the two channel p-values (Figure 9's y-axis)."""
        candidates = [p for p in (self.inst_p_value, self.card_p_value) if p is not None]
        return min(candidates) if candidates else None


class Discriminator(ABC):
    """Interface of a discrimination function delta."""

    name: str = "discriminator"

    @abstractmethod
    def score(self, distributions: CharacteristicDistributions) -> DiscriminationResult:
        """Score one characteristic from its aligned distribution pairs."""


class MultinomialDiscriminator(Discriminator):
    """The paper's delta: exact multinomial test on both channels.

    ``alpha`` is the significance level (0.05 in the paper; Figure 9 notes
    that relaxing it to 0.1 surfaces borderline characteristics such as
    ``owns``).

    Two regularizations, both required to reproduce the Section-4.2 test
    cases (see DESIGN.md):

    * **Unseen-value smoothing** (``unseen_pseudocount``): values observed
      only in the query get a small pseudo-count in the context
      distribution instead of probability zero. A literal zero makes every
      query-specific value (Brad Pitt's own company under ``owns``)
      maximally significant; the paper instead reports ``owns`` as a
      *borderline* case surfaced only at significance 0.1, which requires a
      finite p-value.
    * **Identity-free-channel skip**: when every non-``None`` context value
      occurs exactly once, value *identity* carries no information — the
      relation hands each entity its own value (books written, companies
      founded). The channel then only retains *existence* information,
      which is testable only when a substantial share of the context
      actually lacks the edge (``min_none_share``, default 25% — Figure 7's
      ``created`` has a 43% None mass and stays testable; the authors'
      ``created`` has ~10% and is skipped: "all authors only created their
      own works ... this is an expected result and thus not notable").
    """

    name = "multinomial"

    def __init__(
        self,
        *,
        alpha: float = 0.05,
        max_exact_outcomes: int = 200_000,
        samples: int = 20_000,
        unseen_pseudocount: float = 0.5,
        min_none_share: float = 0.25,
        cardinality_kernel: float = 0.25,
        rng: RandomSource = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if unseen_pseudocount < 0:
            raise ValueError("unseen_pseudocount must be >= 0")
        if not 0.0 <= min_none_share <= 1.0:
            raise ValueError("min_none_share must be in [0, 1]")
        if not 0.0 <= cardinality_kernel < 0.5:
            raise ValueError("cardinality_kernel must be in [0, 0.5)")
        self.alpha = alpha
        self.max_exact_outcomes = max_exact_outcomes
        self.samples = samples
        self.unseen_pseudocount = unseen_pseudocount
        self.min_none_share = min_none_share
        self.cardinality_kernel = cardinality_kernel
        self._rng = ensure_rng(rng)

    def _channel(
        self,
        context_counts: np.ndarray,
        query_counts: np.ndarray,
        *,
        none_index: int | None = None,
        check_identity_free: bool = False,
        ordinal: bool = False,
    ) -> MultinomialTestResult:
        n = int(query_counts.sum())
        context_total = int(context_counts.sum())
        if context_total == 0:
            # The context never exhibits the label at all while the query
            # does (possible when the None bucket is disabled): maximally
            # significant by convention.
            return MultinomialTestResult(
                p_value=0.0,
                alpha=self.alpha,
                n=n,
                support=int(query_counts.size),
                method="degenerate",
            )
        if check_identity_free and self._identity_free(
            context_counts, none_index, context_total
        ):
            return MultinomialTestResult(
                p_value=1.0,
                alpha=self.alpha,
                n=n,
                support=int(query_counts.size),
                method="uninformative",
            )
        smoothed = (
            self._smooth_ordinal(context_counts)
            if ordinal
            else context_counts.astype(float)
        )
        if self.unseen_pseudocount > 0:
            unseen = (smoothed == 0) & (query_counts > 0)
            smoothed = smoothed + unseen * self.unseen_pseudocount
        pi = counts_to_probabilities(smoothed)
        return multinomial_test(
            pi,
            query_counts,
            alpha=self.alpha,
            max_exact_outcomes=self.max_exact_outcomes,
            samples=self.samples,
            rng=self._rng.getrandbits(63),
        )

    def _smooth_ordinal(self, counts: np.ndarray) -> np.ndarray:
        """Redistribute a slice of each positive cell's mass to neighbours.

        Cardinality supports are *ordered* above zero (having 7 books is
        like having 8), but the multinomial test is order-blind: a sparse
        context histogram with an accidental gap at exactly the query's
        count would read as a categorically new value. The kernel
        ``(k, 1 - 2k, k)`` over the cells >= 1 (boundary mass folded back)
        removes such gaps without changing the total mass.

        The 0 cell is deliberately **not** smoothed: existence is the
        categorical boundary the cardinality channel is *for* ("Angela
        Merkel has no child while all other leaders have at least one") —
        bleeding mass from "1" into "0" would erase exactly that signal.
        """
        k = self.cardinality_kernel
        values = counts.astype(float)
        if k <= 0 or counts.size < 3:
            return values
        body = values[1:]  # the ordinal region: counts >= 1
        smoothed_body = (1.0 - 2.0 * k) * body
        smoothed_body[:-1] += k * body[1:]
        smoothed_body[1:] += k * body[:-1]
        # Fold the mass that would leave the region back into its edges.
        smoothed_body[0] += k * body[0]
        smoothed_body[-1] += k * body[-1]
        out = values.copy()
        out[1:] = smoothed_body
        return out

    def _identity_free(
        self,
        context_counts: np.ndarray,
        none_index: int | None,
        context_total: int,
    ) -> bool:
        """Whether the instance channel carries no usable signal.

        True when all non-None context values are singletons (identity is
        per-entity-unique) *and* the None bucket holds less than
        ``min_none_share`` of the context mass (existence is near-universal,
        so the query having values of its own is expected).
        """
        non_none = context_counts.astype(np.int64).copy()
        none_count = 0
        if none_index is not None:
            none_count = int(non_none[none_index])
            non_none[none_index] = 0
        if non_none.size and int(non_none.max(initial=0)) > 1:
            return False
        return none_count / context_total < self.min_none_share

    def score(self, distributions: CharacteristicDistributions) -> DiscriminationResult:
        """Exact multinomial test per channel, maximized (Section 4.1)."""
        from repro.core.distributions import NONE_INSTANCE

        none_index = None
        for index, value in enumerate(distributions.instance_support):
            if value is NONE_INSTANCE:
                none_index = index
                break
        inst = self._channel(
            distributions.inst_context,
            distributions.inst_query,
            none_index=none_index,
            check_identity_free=True,
        )
        card = self._channel(
            distributions.card_context, distributions.card_query, ordinal=True
        )
        return DiscriminationResult(
            label=distributions.label,
            score=max(inst.score, card.score),
            inst_score=inst.score,
            card_score=card.score,
            inst_p_value=inst.p_value,
            card_p_value=card.p_value,
            distributions=distributions,
        )


class KLDiscriminator(Discriminator):
    """delta via smoothed KL divergence (baseline of Section 4.2).

    The divergence of the query distribution from the context distribution
    is taken per channel and maximized; scores are unbounded divergences.
    A ``threshold`` can zero-out small divergences to mimic the notable /
    not-notable cut, default 0 (every difference counts).
    """

    name = "kl"

    def __init__(self, *, smoothing: float = 0.5, threshold: float = 0.0) -> None:
        if smoothing <= 0:
            raise ValueError("KL over sparse query distributions needs smoothing > 0")
        self.smoothing = smoothing
        self.threshold = threshold

    def _channel(self, query_counts: np.ndarray, context_counts: np.ndarray) -> float:
        if query_counts.sum() == 0 or context_counts.sum() == 0:
            return 0.0
        return kl_divergence(
            query_counts.astype(float),
            context_counts.astype(float),
            smoothing=self.smoothing,
        )

    def score(self, distributions: CharacteristicDistributions) -> DiscriminationResult:
        """Smoothed KL divergence per channel, maximized."""
        inst = self._channel(distributions.inst_query, distributions.inst_context)
        card = self._channel(distributions.card_query, distributions.card_context)
        best = max(inst, card)
        return DiscriminationResult(
            label=distributions.label,
            score=best if best > self.threshold else 0.0,
            inst_score=inst,
            card_score=card,
            distributions=distributions,
        )


class EMDDiscriminator(Discriminator):
    """delta via Earth Mover's Distance (baseline of Section 4.2).

    Cardinality channels use true 1-D EMD over the ordered support; the
    instance channel has no value distance (the paper's objection), so the
    discrete-metric EMD — total variation — is used there.
    """

    name = "emd"

    def __init__(self, *, threshold: float = 0.0) -> None:
        self.threshold = threshold

    def score(self, distributions: CharacteristicDistributions) -> DiscriminationResult:
        """Earth-mover's / total-variation distance per channel, maximized."""
        if distributions.inst_query.sum() > 0 and distributions.inst_context.sum() > 0:
            inst = total_variation_distance(
                distributions.inst_query.astype(float),
                distributions.inst_context.astype(float),
            )
        else:
            inst = 0.0
        if distributions.card_query.sum() > 0 and distributions.card_context.sum() > 0:
            card = earth_movers_distance_1d(
                distributions.card_query.astype(float),
                distributions.card_context.astype(float),
                positions=list(distributions.cardinality_support),
            )
        else:
            card = 0.0
        best = max(inst, card)
        return DiscriminationResult(
            label=distributions.label,
            score=best if best > self.threshold else 0.0,
            inst_score=inst,
            card_score=card,
            distributions=distributions,
        )


class ChiSquareDiscriminator(Discriminator):
    """delta via the Pearson chi-square test (rejected by the paper for
    query-sized samples; kept for the assumption-violation ablation)."""

    name = "chi-square"

    def __init__(self, *, alpha: float = 0.05) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha

    def _channel(self, query_counts: np.ndarray, context_counts: np.ndarray) -> tuple[float, float]:
        if query_counts.sum() == 0 or context_counts.sum() == 0:
            return 0.0, 1.0
        pi = counts_to_probabilities(context_counts)
        result = chi_square_test(query_counts, pi)
        score = 1.0 - result.p_value if result.p_value <= self.alpha else 0.0
        return score, result.p_value

    def score(self, distributions: CharacteristicDistributions) -> DiscriminationResult:
        """Chi-square significance test per channel, maximized."""
        inst_score, inst_p = self._channel(
            distributions.inst_query, distributions.inst_context
        )
        card_score, card_p = self._channel(
            distributions.card_query, distributions.card_context
        )
        return DiscriminationResult(
            label=distributions.label,
            score=max(inst_score, card_score),
            inst_score=inst_score,
            card_score=card_score,
            inst_p_value=inst_p,
            card_p_value=card_p,
            distributions=distributions,
        )
