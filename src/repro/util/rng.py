"""Deterministic random-number plumbing.

All stochastic components of the library (random walks, metapath mining,
Monte-Carlo multinomial tests, synthetic data generators, crowd simulation)
accept either an integer seed or a :class:`random.Random` /
:class:`numpy.random.Generator` instance. These helpers normalize the
accepted spellings so every component is reproducible by construction.

The library deliberately never touches the global :mod:`random` state.
"""

from __future__ import annotations

import random
import zlib
from typing import Union

import numpy as np

#: The union of accepted randomness specifications.
RandomSource = Union[int, None, random.Random, np.random.Generator]


def ensure_rng(source: RandomSource = None) -> random.Random:
    """Return a :class:`random.Random` for ``source``.

    ``None`` yields a fresh, OS-seeded generator; an ``int`` yields a
    deterministically seeded generator; an existing :class:`random.Random`
    is passed through; a numpy :class:`~numpy.random.Generator` is wrapped
    by drawing a 64-bit seed from it (so the two stay coupled but usable).
    """
    if source is None:
        return random.Random()
    if isinstance(source, random.Random):
        return source
    if isinstance(source, np.random.Generator):
        return random.Random(int(source.integers(0, 2**63 - 1)))
    if isinstance(source, (int, np.integer)):
        return random.Random(int(source))
    raise TypeError(f"cannot build an RNG from {type(source).__name__}")


def ensure_numpy_rng(source: RandomSource = None) -> np.random.Generator:
    """Return a numpy :class:`~numpy.random.Generator` for ``source``."""
    if source is None:
        return np.random.default_rng()
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, random.Random):
        return np.random.default_rng(source.getrandbits(63))
    if isinstance(source, (int, np.integer)):
        return np.random.default_rng(int(source))
    raise TypeError(f"cannot build a numpy RNG from {type(source).__name__}")


def stable_hash(text: str) -> int:
    """A process-stable 64-bit hash of ``text``.

    Python's built-in ``hash`` of strings is salted per process
    (PYTHONHASHSEED), which would silently break cross-run reproducibility
    of anything seeded through it.
    """
    data = text.encode("utf-8")
    return (zlib.crc32(data) << 32) | zlib.adler32(data)


def derive_rng(source: RandomSource, namespace: str) -> random.Random:
    """Derive an independent, reproducible sub-generator.

    Components that perform several independent stochastic tasks (e.g. a
    generator that draws names and separately wires edges) should derive one
    sub-generator per task so that adding draws to one task does not shift
    the stream of another. Derivation mixes a stable hash of ``namespace``
    with a draw from ``source``.
    """
    base = ensure_rng(source)
    seed = base.getrandbits(63) ^ (stable_hash(namespace) & 0x7FFFFFFFFFFFFFFF)
    return random.Random(seed)


def spawn_seeds(source: RandomSource, count: int) -> list[int]:
    """Return ``count`` independent 63-bit seeds drawn from ``source``."""
    base = ensure_rng(source)
    return [base.getrandbits(63) for _ in range(count)]
