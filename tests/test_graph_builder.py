"""Unit tests for GraphBuilder and the store <-> graph bridges."""

from repro.graph.builder import (
    GraphBuilder,
    graph_from_store,
    graph_from_triples,
    store_from_graph,
)
from repro.store.terms import IRI, Literal
from repro.store.triples import Triple
from repro.store.triplestore import TripleStore


class TestGraphBuilder:
    def test_fluent_chain(self):
        graph = (
            GraphBuilder("g")
            .fact("a", "r", "b")
            .typed("a", "thing")
            .subclass("thing", "entity")
            .attribute("a", "height", 42)
            .node("isolated")
            .build()
        )
        assert graph.has_edge("a", "r", "b")
        assert graph.types_of("a") == {"thing"}
        assert graph.has_edge("thing", "subclassOf", "entity")
        assert graph.has_edge("a", "height", "42")
        assert graph.has_node("isolated")

    def test_facts_bulk(self):
        graph = GraphBuilder().facts([("a", "r", "b"), ("b", "r", "c")]).build()
        assert graph.edge_count == 4  # two facts + inverses

    def test_no_inverse_mode(self):
        graph = GraphBuilder(add_inverse=False).fact("a", "r", "b").build()
        assert graph.edge_count == 1

    def test_graph_from_triples(self):
        graph = graph_from_triples([("s", "p", "o")], name="from-triples")
        assert graph.name == "from-triples"
        assert graph.has_edge("s", "p", "o")


class TestStoreBridges:
    def test_graph_from_store(self):
        store = TripleStore(
            [
                Triple.of("merkel", "leaderOf", "germany"),
                Triple(IRI("merkel"), IRI("born"), Literal("1954")),
            ]
        )
        graph = graph_from_store(store)
        assert graph.has_edge("merkel", "leaderOf", "germany")
        assert graph.has_edge("merkel", "born", "1954")  # literal became node
        assert graph.has_edge("germany", "leaderOf_inv", "merkel")

    def test_store_from_graph_skips_inverses(self):
        graph = GraphBuilder().fact("a", "r", "b").build()
        store = store_from_graph(graph)
        assert len(store) == 1
        assert Triple.of("a", "r", "b") in store

    def test_store_from_graph_keeps_inverses_on_request(self):
        graph = GraphBuilder().fact("a", "r", "b").build()
        store = store_from_graph(graph, include_inverse=True)
        assert len(store) == 2

    def test_round_trip_preserves_facts(self):
        original = (
            GraphBuilder()
            .fact("merkel", "leaderOf", "germany")
            .fact("obama", "leaderOf", "usa")
            .typed("merkel", "politician")
            .build()
        )
        rebuilt = graph_from_store(store_from_graph(original))
        for edge in original.edges():
            assert rebuilt.has_edge(
                original.node_name(edge.source),
                edge.label,
                original.node_name(edge.target),
            )
