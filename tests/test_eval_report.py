"""Unit tests for the experiment registry / report rendering."""

import pytest

from repro.eval.experiments import ExperimentSetting
from repro.eval.report import (
    REGISTRY,
    experiment_ids,
    get_experiment,
    render_report,
    run_experiment,
)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = set(experiment_ids())
        expected = {
            "table1",
            "table2",
            "table3",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "metrics",
            "authors",
        }
        assert expected <= ids

    def test_ids_unique(self):
        ids = experiment_ids()
        assert len(ids) == len(set(ids))

    def test_get_experiment(self):
        spec = get_experiment("fig7")
        assert spec.experiment_id == "fig7"
        assert callable(spec.runner)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_descriptions_non_empty(self):
        assert all(spec.description for spec in REGISTRY)


class TestRunning:
    def test_run_experiment_table1(self):
        table = run_experiment("table1", ExperimentSetting(scale=0.5))
        assert len(table) == 18

    def test_render_report(self):
        report = render_report(["table1"], ExperimentSetting(scale=0.5))
        assert "## table1" in report
        assert "Angela_Merkel" in report

    def test_render_report_markdown(self):
        report = render_report(
            ["table1"], ExperimentSetting(scale=0.5), markdown=True
        )
        assert "| domain" in report
