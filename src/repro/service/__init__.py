"""Concurrent NC query service: engine, result cache, HTTP front-end.

The step from algorithm to system: :class:`NCEngine` serves many
concurrent FindNC requests over one live :class:`~repro.graph.model.KnowledgeGraph`
by pinning immutable compiled snapshots per request, caching results in a
version-keyed LRU, and coalescing identical in-flight queries. The
stdlib HTTP server (:mod:`repro.service.server`) exposes it as a JSON API
(``repro serve``); :mod:`repro.service.bench` measures it
(``repro bench-serve``). See ``src/repro/service/README.md``.
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.engine import EngineStats, NCEngine, SearchOutcome
from repro.service.server import NCServiceServer, create_server, outcome_to_json

__all__ = [
    "CacheStats",
    "EngineStats",
    "NCEngine",
    "NCServiceServer",
    "ResultCache",
    "SearchOutcome",
    "create_server",
    "outcome_to_json",
]
