"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------

``search``
    Run notable-characteristics search for a query on a built-in dataset::

        repro search --dataset yago --query Angela_Merkel Barack_Obama

``experiment``
    Regenerate one of the paper's tables/figures::

        repro experiment fig9
        repro experiment table2 --scale 1.5

``datasets``
    List the registered datasets with their statistics.

``compile``
    Compile an N-Triples/TSV dump — or a registered dataset — into a
    single-file binary snapshot through the streaming bulk ingester
    (never materializing the dict graph)::

        repro compile dump.nt graph.snap
        repro compile yago yago-s2.snap --scale 2.0

``publish``
    Publish a dump, dataset, or existing snapshot file into a versioned
    snapshot **registry** directory (monotonic version ids, atomic
    manifest — the directory ``repro serve --snapshot-dir`` hot-swaps
    from)::

        repro publish dump.nt serving/
        repro publish yago serving/ --scale 2.0
        repro publish prebuilt.snap serving/

``ingest``
    Append a batch of statement-level edits to a registry's delta log
    and fold it into a fresh snapshot version — the offline twin of
    ``POST /v1/admin/ingest``. Each line is one statement (N-Triples or
    TSV), optionally prefixed ``+`` (add, the default) or ``-``
    (remove); ``-`` as the batch path reads stdin. A serving process
    adopts the merged version via ``POST /v1/admin/reload`` or its
    ``--poll-interval`` watcher::

        repro ingest edits.nt serving/
        echo '- <a> <r> <b> .' | repro ingest - serving/

``compact``
    Collapse a registry's active delta chain (base + runs, plus
    anything still pending) into a fresh self-standing version, so GC
    can drop the old base and its run files once they age out::

        repro compact serving/

``inspect``
    Print the stored header of a snapshot file (format version,
    node/edge/label counts, name-table sizes, transition presence) or
    the manifest of a registry directory — including each version's
    delta-chain provenance and any pending runs::

        repro inspect graph.snap
        repro inspect serving/ --json

``serve``
    Run the concurrent NC query service over a built-in dataset,
    cold-start it from a compiled snapshot (one mmap, no parse, no
    ``KnowledgeGraph`` in the serving process), or serve a snapshot
    registry with hot swaps (``POST /v1/admin/reload``, optional mtime
    polling). The HTTP surface lives under ``/v1/`` (unprefixed paths
    stay as deprecated aliases); ``GET /v1/metrics`` exports Prometheus
    text. Resilience knobs — a default request deadline, an
    admission-control budget, and the crash-retry budget — are flags;
    SIGTERM/SIGINT drain in-flight requests (bounded by
    ``--drain-timeout``) before the process exits::

        repro serve --dataset yago --port 8099
        repro serve --snapshot yago-s2.snap --port 8099
        repro serve --snapshot-dir serving/ --poll-interval 5 --retain 2
        repro serve --executor process --workers 4   # scale with cores
        repro serve --request-timeout 2.0 --max-pending 64 --retries 3
        curl 'http://127.0.0.1:8099/v1/search?query=Angela_Merkel,Barack_Obama'
        curl -X POST 'http://127.0.0.1:8099/v1/admin/reload'
        curl 'http://127.0.0.1:8099/v1/metrics'

``loadgen``
    Replay Zipf-skewed, entity-centric traffic against a running
    service (open-loop Poisson arrivals or closed-loop fixed
    concurrency) and print latency quantiles::

        repro loadgen --url http://127.0.0.1:8099 --mode open \\
            --rate 50 --duration 10 --zipf-s 1.1
        repro loadgen --url http://127.0.0.1:8099 --mode closed \\
            --requests 500 --concurrency 8

``bench-serve``
    Run the service throughput/latency benchmark — including the
    thread-vs-process backend comparison, the snapshot-store cold-start
    phase, the multi-version hot-swap phase, the fault-injection storm,
    and the Zipf load profile — and write the JSON report (see
    ``benchmarks/README.md`` for the field reference; compare two
    reports with ``tools/bench_compare.py``)::

        repro bench-serve --out BENCH_PR7.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.findnc import FindNC, rw_mult
from repro.datasets.loader import dataset_names, load_dataset
from repro.eval.experiments import ExperimentSetting
from repro.eval.report import experiment_ids, get_experiment
from repro.graph.statistics import GraphStatistics


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Notable Characteristics Search through Knowledge Graphs "
        "(EDBT 2018) - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser("search", help="run FindNC for a query")
    search.add_argument("--dataset", default="yago", choices=dataset_names())
    search.add_argument("--scale", type=float, default=2.0)
    search.add_argument("--context-size", type=int, default=100)
    search.add_argument("--seed", type=int, default=11)
    search.add_argument(
        "--baseline", action="store_true", help="use RWMult instead of FindNC"
    )
    search.add_argument("--query", nargs="+", required=True, metavar="ENTITY")

    experiment = sub.add_parser("experiment", help="regenerate a table/figure")
    experiment.add_argument("experiment_id", choices=experiment_ids())
    experiment.add_argument("--dataset", default="yago", choices=dataset_names())
    experiment.add_argument("--scale", type=float, default=2.0)
    experiment.add_argument("--markdown", action="store_true")

    sub.add_parser("datasets", help="list datasets with statistics")

    compile_parser = sub.add_parser(
        "compile",
        help="compile a dump (or dataset) into a binary snapshot file",
    )
    compile_parser.add_argument(
        "source",
        help="an N-Triples (.nt) / YAGO-TSV (.tsv) dump path, or a "
        "registered dataset name (see `repro datasets`)",
    )
    compile_parser.add_argument(
        "snapshot", type=Path, help="output snapshot file path"
    )
    compile_parser.add_argument(
        "--format",
        dest="fmt",
        default="auto",
        choices=("auto", "nt", "tsv"),
        help="dump format (default: by file extension)",
    )
    compile_parser.add_argument(
        "--scale", type=float, default=2.0, help="dataset scale (dataset sources)"
    )
    compile_parser.add_argument(
        "--seed", type=int, default=None, help="dataset seed (dataset sources)"
    )
    compile_parser.add_argument(
        "--name", default=None, help="graph name recorded in the snapshot header"
    )
    compile_parser.add_argument(
        "--no-inverse",
        action="store_true",
        help="the dump already contains both edge directions "
        "(skip the Section-2 inverse closure)",
    )
    compile_parser.add_argument(
        "--no-transition",
        action="store_true",
        help="do not persist the frozen PPR transition matrix "
        "(smaller file, slower serve warm-up)",
    )

    publish = sub.add_parser(
        "publish",
        help="publish a dump/dataset/snapshot into a versioned registry",
    )
    publish.add_argument(
        "source",
        help="an N-Triples/TSV dump, an existing .snap file, or a "
        "registered dataset name (see `repro datasets`)",
    )
    publish.add_argument(
        "registry", type=Path, help="snapshot registry directory (created if missing)"
    )
    publish.add_argument(
        "--format",
        dest="fmt",
        default="auto",
        choices=("auto", "nt", "tsv"),
        help="dump format (default: by file extension)",
    )
    publish.add_argument(
        "--scale", type=float, default=2.0, help="dataset scale (dataset sources)"
    )
    publish.add_argument(
        "--seed", type=int, default=None, help="dataset seed (dataset sources)"
    )
    publish.add_argument(
        "--name", default=None, help="graph name recorded in the snapshot header"
    )
    publish.add_argument(
        "--no-inverse",
        action="store_true",
        help="the dump already contains both edge directions",
    )
    publish.add_argument(
        "--no-transition",
        action="store_true",
        help="do not persist the frozen PPR transition matrix",
    )

    ingest = sub.add_parser(
        "ingest",
        help="append a +/- statement batch to a registry's delta log "
        "and merge it into a fresh version",
    )
    ingest.add_argument(
        "batch",
        help="a batch file of statements ('+'/'-' line prefixes mark "
        "adds/removes; bare lines are adds), or '-' for stdin",
    )
    ingest.add_argument(
        "registry", type=Path, help="snapshot registry directory (must exist)"
    )
    ingest.add_argument(
        "--format",
        dest="fmt",
        default="auto",
        choices=("auto", "nt", "tsv"),
        help="batch format (default: by file extension; 'nt' for stdin)",
    )
    ingest.add_argument(
        "--no-merge",
        action="store_true",
        help="append the delta run only; a later ingest, compact, or "
        "serving-side merge folds it in",
    )
    ingest.add_argument(
        "--no-transition",
        action="store_true",
        help="do not persist the frozen PPR transition matrix in the "
        "merged snapshot",
    )

    compact = sub.add_parser(
        "compact",
        help="collapse a registry's delta chain into a fresh full version",
    )
    compact.add_argument(
        "registry", type=Path, help="snapshot registry directory (must exist)"
    )
    compact.add_argument(
        "--no-transition",
        action="store_true",
        help="do not persist the frozen PPR transition matrix in the "
        "compacted snapshot",
    )

    inspect = sub.add_parser(
        "inspect",
        help="print a snapshot file's stored header (or a registry manifest)",
    )
    inspect.add_argument(
        "target", type=Path, help="a snapshot file or a registry directory"
    )
    inspect.add_argument(
        "--json", action="store_true", help="emit raw JSON instead of the digest"
    )

    serve = sub.add_parser("serve", help="run the concurrent NC query service")
    serve.add_argument("--dataset", default="yago", choices=dataset_names())
    serve.add_argument("--scale", type=float, default=2.0)
    serve.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        help="serve from a compiled snapshot file (mmap cold start; "
        "--dataset/--scale are ignored)",
    )
    serve.add_argument(
        "--snapshot-dir",
        type=Path,
        default=None,
        help="serve the latest version of a snapshot registry directory "
        "(see `repro publish`); enables POST /admin/reload hot swaps",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=0.0,
        help="with --snapshot-dir: seconds between registry manifest "
        "polls that auto-reload new versions (0 disables polling; "
        "POST /admin/reload always works)",
    )
    serve.add_argument(
        "--retain",
        type=int,
        default=2,
        help="with --snapshot-dir: registry versions kept on disk after "
        "a hot swap (drained older versions are garbage-collected)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8099)
    serve.add_argument("--context-size", type=int, default=100)
    serve.add_argument("--alpha", type=float, default=0.05)
    serve.add_argument("--cache-size", type=int, default=256)
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--executor",
        default="thread",
        choices=("thread", "process"),
        help="computation backend: 'thread' (default; cached traffic at "
        "memory speed, distinct queries GIL-bound) or 'process' "
        "(shared-memory worker processes; distinct-query throughput "
        "scales with cores)",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=0.0,
        help="process executor only: gather concurrent same-snapshot "
        "requests for up to this many milliseconds into one worker "
        "micro-batch (0 = dispatch whatever is already queued)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=1,
        help="process executor only: members per worker micro-batch; 1 "
        "(default) disables micro-batching, higher values amortize the "
        "power-iteration sweep across concurrent distinct queries",
    )
    serve.add_argument("--seed", type=int, default=11)
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="default per-request deadline in seconds (expired requests "
        "answer 504; per-request timeout_ms overrides; unset = no deadline)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="admission-control budget: distinct computations allowed in "
        "flight before /search sheds with 503 + Retry-After (unset = "
        "unbounded)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=2,
        help="per-request retry budget for worker crashes / stale "
        "snapshots (process executor; retries back off with jitter)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to wait for in-flight requests to finish on "
        "SIGTERM/SIGINT before closing the engine",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each HTTP request to stderr"
    )
    serve.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        help="head-sampling probability for request tracing (0 disables; "
        "sampled traces land in GET /v1/debug/traces)",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        help="tail capture: every request records spans, and any that "
        "errors or takes at least this many milliseconds is retained "
        "even when the sampling coin said no (unset = head sampling only)",
    )
    serve.add_argument(
        "--trace-buffer",
        type=int,
        default=256,
        help="retained traces kept in the in-memory ring buffer "
        "served by /v1/debug/traces",
    )
    serve.add_argument(
        "--metrics-exemplars",
        action="store_true",
        help="attach trace-id exemplars to latency histogram buckets "
        "in GET /v1/metrics (OpenMetrics-style '# {trace_id=...}')",
    )
    serve.add_argument(
        "--log-format",
        default="text",
        choices=("text", "json"),
        help="structured log line format for request/swap/crash/breaker "
        "events ('json' stamps trace_id on every line)",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="replay Zipf-skewed load against a running service",
    )
    loadgen.add_argument(
        "--url",
        default="http://127.0.0.1:8099",
        help="base URL of a running `repro serve` instance",
    )
    loadgen.add_argument(
        "--mode",
        default="open",
        choices=("open", "closed"),
        help="'open': Poisson arrivals at --rate for --duration seconds "
        "(latency measured from scheduled arrival — no coordinated "
        "omission); 'closed': --concurrency workers draining --requests",
    )
    loadgen.add_argument(
        "--rate", type=float, default=20.0, help="open-loop arrival rate (req/s)"
    )
    loadgen.add_argument(
        "--duration", type=float, default=10.0, help="open-loop run length (s)"
    )
    loadgen.add_argument(
        "--requests", type=int, default=200, help="closed-loop request count"
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=4, help="closed-loop worker threads"
    )
    loadgen.add_argument(
        "--zipf-s",
        type=float,
        default=1.1,
        help="Zipf skew exponent for entity popularity (larger = hotter head)",
    )
    loadgen.add_argument(
        "--session-length",
        type=int,
        default=4,
        help="mean queries per entity-centric session",
    )
    loadgen.add_argument(
        "--dataset",
        default="yago",
        choices=dataset_names(),
        help="dataset the target service is serving (used to build the "
        "popularity-ranked entity pool locally)",
    )
    loadgen.add_argument("--scale", type=float, default=2.0)
    loadgen.add_argument(
        "--entities",
        type=int,
        default=128,
        help="popularity-ranked entity pool size drawn from --dataset",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--timeout", type=float, default=30.0, help="per-request HTTP timeout (s)"
    )
    loadgen.add_argument(
        "--trace-sample-rate",
        type=float,
        default=0.0,
        help="fraction of requests sent with a sampled W3C traceparent "
        "header; the server echoes X-Trace-Id, and the slowest traced "
        "requests are reported with their trace ids for triage",
    )
    loadgen.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    bench = sub.add_parser(
        "bench-serve", help="benchmark the query service (latency/throughput)"
    )
    bench.add_argument("--dataset", default="yago", choices=dataset_names())
    bench.add_argument("--scale", type=float, default=2.0)
    bench.add_argument("--context-size", type=int, default=100)
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--distinct", type=int, default=12)
    bench.add_argument("--repeat", type=int, default=3)
    bench.add_argument("--seed", type=int, default=11)
    bench.add_argument(
        "--out", type=Path, default=None, help="write the JSON report here"
    )
    bench.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        help="snapshot file for the cold-start/serving phases "
        "(reused when it matches, else compiled here)",
    )
    return parser


def _cmd_search(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    if args.baseline:
        finder = rw_mult(graph, context_size=args.context_size, rng=args.seed)
    else:
        finder = FindNC(graph, context_size=args.context_size, rng=args.seed)
    result = finder.run(args.query)
    print(result.summary(graph))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    spec = get_experiment(args.experiment_id)
    setting = ExperimentSetting(dataset=args.dataset, scale=args.scale)
    table = spec.runner(setting)
    print(table.render(markdown=args.markdown))
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    for name in dataset_names():
        graph = load_dataset(name)
        stats = GraphStatistics(graph)
        print(f"{name}: {stats.describe()}")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.datasets.loader import to_snapshot
    from repro.disk import ingest_file

    source = str(args.source)
    if source in dataset_names() and not Path(source).exists():
        stats = to_snapshot(
            source,
            args.snapshot,
            scale=args.scale,
            seed=args.seed,
            include_transition=not args.no_transition,
            graph_name=args.name,
        )
    else:
        stats = ingest_file(
            source,
            args.snapshot,
            fmt=args.fmt,
            graph_name=args.name,
            add_inverse=not args.no_inverse,
            include_transition=not args.no_transition,
        )
    print(
        f"compiled {source}: |V|={stats.nodes}, |E|={stats.edges}, "
        f"|L|={stats.labels} ({stats.triples} statements read, "
        f"{stats.duplicates} duplicates dropped)"
    )
    print(f"wrote {args.snapshot} ({stats.bytes_written} bytes)")
    return 0


def _cmd_publish(args: argparse.Namespace) -> int:
    from repro.disk import SnapshotRegistry

    registry = SnapshotRegistry(args.registry)
    source = str(args.source)
    if source in dataset_names() and not Path(source).exists():
        graph = load_dataset(source, scale=args.scale, seed=args.seed)
        if args.name is not None:
            graph.name = args.name
        entry = registry.publish_graph(
            graph, include_transition=not args.no_transition
        )
    else:
        entry = registry.publish(
            source,
            fmt=args.fmt,
            graph_name=args.name,
            add_inverse=not args.no_inverse,
            include_transition=not args.no_transition,
        )
    print(
        f"published {source} as v{entry.version}: |V|={entry.nodes}, "
        f"|E|={entry.edges}, |L|={entry.labels} ({entry.bytes} bytes, "
        f"{entry.file})"
    )
    print(registry.summary())
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.disk import SnapshotRegistry, detect_format
    from repro.disk.delta import parse_delta_lines

    registry = SnapshotRegistry(args.registry, create=False)
    if args.batch == "-":
        fmt = "nt" if args.fmt == "auto" else args.fmt
        lines = sys.stdin.read().splitlines()
    else:
        fmt = detect_format(args.batch) if args.fmt == "auto" else args.fmt
        lines = Path(args.batch).read_text(encoding="utf-8").splitlines()
    ops = parse_delta_lines(lines, fmt)
    run = registry.append_delta(ops)
    if run is None:
        print(f"{args.batch}: batch nets out to no change; nothing appended")
        return 0
    print(
        f"appended {run.file}: {run.adds} add(s), {run.removes} remove(s) "
        f"against base v{run.base_version} ({run.bytes} bytes)"
    )
    if args.no_merge:
        print(f"{len(registry.pending_runs())} run(s) pending merge")
        return 0
    entry = registry.merge_pending(include_transition=not args.no_transition)
    if entry is not None:
        print(
            f"merged into v{entry.version}: |V|={entry.nodes}, "
            f"|E|={entry.edges}, |L|={entry.labels} "
            f"(chain base v{entry.base} + {len(entry.deltas)} delta(s))"
        )
    print(registry.summary())
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.disk import SnapshotRegistry

    registry = SnapshotRegistry(args.registry, create=False)
    entry = registry.compact(include_transition=not args.no_transition)
    if entry is None:
        print(f"{args.registry}: already compact (no delta chain, nothing pending)")
        return 0
    print(
        f"compacted chain into v{entry.version}: |V|={entry.nodes}, "
        f"|E|={entry.edges}, |L|={entry.labels} ({entry.bytes} bytes, "
        f"{entry.file})"
    )
    print(registry.summary())
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.disk import SnapshotRegistry, inspect_snapshot
    from repro.disk.registry import MANIFEST_NAME

    target = Path(args.target)
    if target.is_dir():
        if not (target / MANIFEST_NAME).exists():
            print(f"{target}: not a snapshot registry (no {MANIFEST_NAME})")
            return 1
        registry = SnapshotRegistry(target, create=False)
        if args.json:
            print(
                json.dumps(
                    [entry.as_dict() for entry in registry.versions()],
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        print(registry.summary())
        for entry in registry.versions():
            chain = (
                f"  [base v{entry.base} + {len(entry.deltas)} delta(s)]"
                if entry.base is not None
                else ""
            )
            print(
                f"  v{entry.version}: {entry.file}  |V|={entry.nodes} "
                f"|E|={entry.edges} |L|={entry.labels}  {entry.bytes} bytes  "
                f"({entry.graph_name}){chain}"
            )
        for run in registry.pending_runs():
            print(
                f"  pending {run.file}: {run.adds} add(s), "
                f"{run.removes} remove(s)  {run.bytes} bytes"
            )
        return 0
    info = inspect_snapshot(target)
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(f"{info['path']}: snapshot format v{info['format_version']}")
    print(f"  graph: {info['graph_name']} @ version {info['version']}")
    print(
        f"  |V|={info['nodes']}, |E|={info['edges']}, |L|={info['labels']}"
    )
    print(
        f"  file: {info['file_bytes']} bytes ({info['data_bytes']} data); "
        f"name tables: {info['node_name_table_bytes']} node / "
        f"{info['label_name_table_bytes']} label bytes"
    )
    print(
        "  frozen PPR transition: "
        + ("baked in" if info["has_transition"] else "absent (built at serve)")
    )
    return 0


def _validate_serve_args(args: argparse.Namespace) -> "str | None":
    """The resilience/registry flag sanity checks; an error message or None.

    Kept separate from :func:`_cmd_serve` so unit tests can cover every
    rejection without binding sockets or loading datasets.
    """
    if args.snapshot is not None and args.snapshot_dir is not None:
        return "--snapshot and --snapshot-dir are mutually exclusive"
    if args.retain < 1:
        return f"--retain must be >= 1, got {args.retain}"
    if args.request_timeout is not None and args.request_timeout <= 0:
        return f"--request-timeout must be positive, got {args.request_timeout}"
    if args.max_pending is not None and args.max_pending < 1:
        return f"--max-pending must be positive, got {args.max_pending}"
    if args.retries < 0:
        return f"--retries must be >= 0, got {args.retries}"
    if args.drain_timeout < 0:
        return f"--drain-timeout must be >= 0, got {args.drain_timeout}"
    if args.batch_window_ms < 0:
        return f"--batch-window-ms must be >= 0, got {args.batch_window_ms}"
    if args.max_batch < 1:
        return f"--max-batch must be >= 1, got {args.max_batch}"
    if args.max_batch > 1 and args.executor != "process":
        return "--max-batch > 1 requires --executor process (micro-batching is a worker-pool feature)"
    if args.poll_interval < 0:
        return f"--poll-interval must be >= 0, got {args.poll_interval}"
    if args.poll_interval > 0 and args.snapshot_dir is None:
        return "--poll-interval requires --snapshot-dir (nothing to poll)"
    if not 0.0 <= args.trace_sample_rate <= 1.0:
        return (
            f"--trace-sample-rate must be within [0, 1], "
            f"got {args.trace_sample_rate}"
        )
    if args.slow_query_ms is not None and args.slow_query_ms <= 0:
        return f"--slow-query-ms must be positive, got {args.slow_query_ms}"
    if args.trace_buffer < 1:
        return f"--trace-buffer must be >= 1, got {args.trace_buffer}"
    if (
        args.request_timeout is not None
        and args.drain_timeout > 0
        and args.drain_timeout < args.request_timeout
    ):
        return (
            f"--drain-timeout ({args.drain_timeout}) must not be shorter "
            f"than --request-timeout ({args.request_timeout}): draining "
            f"would abandon requests that were promised a longer deadline"
        )
    return None


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading
    import time as time_module

    from repro.service import faults
    from repro.service.engine import EngineConfig, NCEngine
    from repro.service.server import NCRequestHandler, RegistryPoller, create_server
    from repro.service.tracing import set_log_format

    problem = _validate_serve_args(args)
    if problem is not None:
        print(problem)
        return 2
    set_log_format(args.log_format)
    injector = faults.install_from_env()
    if injector is not None:  # pragma: no cover - chaos runs only
        print(f"fault injection armed: {faults.FAULTS_ENV} -> {injector.rules()}")
    registry = None
    if args.snapshot_dir is not None:
        from repro.disk import SnapshotRegistry

        registry = SnapshotRegistry(args.snapshot_dir, create=False)
        latest = registry.latest()
        if latest is None:
            print(
                f"registry {args.snapshot_dir} is empty — publish a version "
                f"first: repro publish <dump|dataset> {args.snapshot_dir}"
            )
            return 1
        graph = registry.open_view()
        print(registry.summary())
    elif args.snapshot is not None:
        from repro.disk import open_snapshot_view

        graph = open_snapshot_view(args.snapshot)
    else:
        graph = load_dataset(args.dataset, scale=args.scale)
    if args.snapshot_dir is not None:
        snapshot_source = f"registry:{args.snapshot_dir}"
    elif args.snapshot is not None:
        snapshot_source = f"snapshot:{args.snapshot}"
    else:
        snapshot_source = f"dataset:{args.dataset}@{args.scale}"
    config = EngineConfig(
        context_size=args.context_size,
        alpha=args.alpha,
        cache_size=args.cache_size,
        max_workers=args.workers,
        executor=args.executor,
        seed=args.seed,
        request_timeout=args.request_timeout,
        max_pending=args.max_pending,
        retries=args.retries,
        snapshot_source=snapshot_source,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        trace_sample_rate=args.trace_sample_rate,
        slow_query_ms=args.slow_query_ms,
        trace_buffer=args.trace_buffer,
        metrics_exemplars=args.metrics_exemplars,
    )
    engine = NCEngine(graph, config=config)
    engine.pin()  # compile + publish/freeze shared state before accepting traffic
    NCRequestHandler.quiet = not args.verbose
    server = create_server(
        engine, host=args.host, port=args.port, registry=registry, retain=args.retain
    )
    poller = None
    if registry is not None and args.poll_interval > 0:
        poller = RegistryPoller(
            engine,
            registry,
            interval=args.poll_interval,
            retain=args.retain,
            lock=server.reload_lock,
        )
        poller.start()
    host, port = server.server_address[:2]
    print(f"serving {graph.summary()}")
    print(f"executor: {args.executor} ({args.workers} workers)")
    endpoints = (
        "/v1/search, /v1/healthz, /v1/stats, /v1/metrics"
        + (", /v1/debug/traces" if engine.tracer.enabled else "")
        + (", /v1/admin/reload, /v1/admin/ingest" if registry is not None else "")
    )
    print(f"listening on http://{host}:{port} ({endpoints})")

    # Graceful shutdown: SIGTERM (the orchestrator's stop signal) and
    # SIGINT both stop accepting connections, drain in-flight requests
    # bounded by --drain-timeout, then close the pool and unlink shm
    # segments. serve_forever() must be shut down from another thread:
    # the handler runs *inside* its poll loop, and a same-thread
    # shutdown() would deadlock waiting for the loop to acknowledge.
    stopping = threading.Event()

    def _request_stop(signum: int, _frame: object) -> None:
        if stopping.is_set():  # pragma: no cover - repeated signal
            return
        stopping.set()
        print(f"received signal {signum}: draining and shutting down")
        threading.Thread(target=server.shutdown, daemon=True).start()

    if threading.current_thread() is threading.main_thread():
        import signal

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        if poller is not None:
            poller.stop()
        drain_deadline = time_module.monotonic() + args.drain_timeout
        while (
            engine.stats().inflight > 0
            and time_module.monotonic() < drain_deadline
        ):
            time_module.sleep(0.05)
        abandoned = engine.stats().inflight
        server.server_close()
        engine.close()
        if abandoned:  # pragma: no cover - drain timeout elapsed
            print(f"drain timeout: abandoned {abandoned} in-flight requests")
        print("shut down cleanly")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service.loadgen import (
        LoadProfile,
        build_schedule,
        entity_ranking,
        http_target,
        run_load,
    )

    try:
        profile = LoadProfile(
            mode=args.mode,
            requests=args.requests,
            duration_s=args.duration,
            rate=args.rate,
            concurrency=args.concurrency,
            zipf_s=args.zipf_s,
            session_length=args.session_length,
            seed=args.seed,
        )
    except ValueError as error:
        print(error)
        return 2
    if not 0.0 <= args.trace_sample_rate <= 1.0:
        print(
            f"--trace-sample-rate must be within [0, 1], "
            f"got {args.trace_sample_rate}"
        )
        return 2
    graph = load_dataset(args.dataset, scale=args.scale)
    entities = entity_ranking(graph, limit=args.entities)
    schedule, skew = build_schedule(entities, profile)
    target = http_target(
        args.url,
        timeout_s=args.timeout,
        trace_sample_rate=args.trace_sample_rate,
        seed=args.seed,
    )
    # With --json, stdout is reserved for the report so it pipes cleanly.
    print(
        f"replaying {len(schedule)} {args.mode}-loop requests against "
        f"{args.url} (zipf_s={args.zipf_s}, "
        f"{skew['distinct_pairs']} distinct pairs, "
        f"top pair {skew['top_pair_share']:.1%} of traffic)",
        file=sys.stderr if args.json else sys.stdout,
    )
    report = run_load(target, schedule, profile)
    summary = report.summary()
    if args.json:
        payload = dict(summary)
        payload["skew"] = skew
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if report.completed else 1
    latency = summary["latency_s"]
    print(
        f"completed {report.completed}/{report.requests} in "
        f"{report.duration_s:.2f}s ({report.achieved_rps:.1f} req/s)"
    )
    print(
        f"latency_s: mean={latency['mean']:.4f} p50={latency['p50']:.4f} "
        f"p90={latency['p90']:.4f} p99={latency['p99']:.4f} "
        f"max={latency['max']:.4f}"
    )
    if report.errors:
        print(f"errors: {dict(report.errors)}")
    if report.slowest:
        print("slowest traced requests (GET /v1/debug/traces/<trace_id>):")
        for entry in report.slowest:
            print(f"  {entry['latency_s']:.4f}s  {entry['trace_id']}")
    return 0 if report.completed else 1


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.service.bench import print_report, run_service_benchmark

    report = run_service_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        context_size=args.context_size,
        workers=args.workers,
        distinct=args.distinct,
        repeat=args.repeat,
        seed=args.seed,
        snapshot_path=str(args.snapshot) if args.snapshot is not None else None,
    )
    print_report(report)
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "search": _cmd_search,
        "experiment": _cmd_experiment,
        "datasets": _cmd_datasets,
        "compile": _cmd_compile,
        "publish": _cmd_publish,
        "ingest": _cmd_ingest,
        "compact": _cmd_compact,
        "inspect": _cmd_inspect,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "bench-serve": _cmd_bench_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
