"""Thread-safe, version-keyed LRU result cache for the query service.

Keys are opaque hashables; by convention the engine uses::

    (graph.version, frozenset(query_ids), context_size, alpha, discriminator_params)

so a graph mutation (which bumps ``graph.version``) makes every previous
entry *unreachable* immediately — no invalidation scan is needed on the
read path. The engine additionally calls :meth:`ResultCache.purge_versions`
when it re-pins to a new version, reclaiming the dead entries' memory
eagerly instead of waiting for LRU pressure to evict them.

All operations take one internal lock; values are returned as-is (cached
:class:`~repro.core.findnc.FindNCResult` objects are shared across
requests and must be treated as read-only by callers).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Hashable
from dataclasses import dataclass


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of the cache counters."""

    hits: int
    misses: int
    evictions: int
    purged: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """The JSON shape embedded in the engine's ``/stats`` payload."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "purged": self.purged,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """An LRU mapping with hit/miss/eviction accounting.

    >>> cache = ResultCache(maxsize=2)
    >>> cache.put((1, "a"), "ra"); cache.put((1, "b"), "rb")
    >>> cache.get((1, "a"))
    'ra'
    >>> cache.put((1, "c"), "rc")          # evicts (1, "b"), the LRU entry
    >>> cache.get((1, "b")) is None
    True
    >>> cache.stats().evictions
    1

    ``on_event`` is an optional instrumentation callback
    ``(event: str, count: int)`` invoked *outside* the cache lock for
    ``"hit"``, ``"miss"``, ``"eviction"`` and ``"purged"`` events (the
    engine wires it to its metrics registry); a raising callback is
    swallowed — instrumentation must never break the serving path.
    """

    def __init__(self, maxsize: int = 256, on_event=None) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._on_event = on_event
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._purged = 0

    def _emit(self, event: str, count: int = 1) -> None:
        if self._on_event is None or count <= 0:
            return
        try:
            self._on_event(event, count)
        except Exception:  # noqa: BLE001 - observability is best-effort
            pass

    def get(self, key: Hashable) -> object | None:
        """The cached value for ``key`` (marking it most-recent), or None."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                hit = False
                value = None
            else:
                self._entries.move_to_end(key)
                self._hits += 1
                hit = True
        self._emit("hit" if hit else "miss")
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries over capacity."""
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
        self._emit("eviction", evicted)

    def purge_versions(self, keep_version: int) -> int:
        """Drop every entry whose key's version field != ``keep_version``.

        Assumes the engine's key convention (``key[0]`` is the graph
        version the result was computed at). Returns the number of
        entries dropped; they are counted under ``purged``, not
        ``evictions``.
        """
        with self._lock:
            stale = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key and key[0] != keep_version
            ]
            for key in stale:
                del self._entries[key]
            self._purged += len(stale)
        self._emit("purged", len(stale))
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        """A point-in-time snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                purged=self._purged,
                size=len(self._entries),
                maxsize=self.maxsize,
            )
