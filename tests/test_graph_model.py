"""Unit tests for repro.graph.model.KnowledgeGraph (Definition 1)."""

import pytest

from repro.errors import EdgeLabelNotFoundError, NodeNotFoundError
from repro.graph.model import Edge, KnowledgeGraph


@pytest.fixture()
def graph():
    g = KnowledgeGraph("test")
    g.add_edge("merkel", "leaderOf", "germany")
    g.add_edge("obama", "leaderOf", "usa")
    g.add_edge("merkel", "studied", "physics")
    return g


class TestNodes:
    def test_add_node_idempotent(self):
        g = KnowledgeGraph()
        a = g.add_node("a")
        assert g.add_node("a") == a
        assert g.node_count == 1

    def test_node_ids_dense(self):
        g = KnowledgeGraph()
        assert [g.add_node(n) for n in "abc"] == [0, 1, 2]
        assert list(g.nodes()) == [0, 1, 2]

    def test_node_name_round_trip(self, graph):
        node_id = graph.node_id("merkel")
        assert graph.node_name(node_id) == "merkel"

    def test_node_id_accepts_int(self, graph):
        node_id = graph.node_id("merkel")
        assert graph.node_id(node_id) == node_id

    def test_unknown_name_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.node_id("nobody")

    def test_out_of_range_id_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.node_id(999)
        with pytest.raises(NodeNotFoundError):
            graph.node_name(999)

    def test_bool_is_not_a_node_ref(self, graph):
        with pytest.raises(TypeError):
            graph.node_id(True)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeGraph().add_node("")

    def test_has_node(self, graph):
        assert graph.has_node("merkel")
        assert graph.has_node(0)
        assert not graph.has_node("nobody")
        assert not graph.has_node(10_000)


class TestEdges:
    def test_inverse_closure(self, graph):
        assert graph.has_edge("germany", "leaderOf_inv", "merkel")

    def test_edge_count_includes_inverses(self, graph):
        assert graph.edge_count == 6  # 3 facts x 2 directions

    def test_add_edge_no_inverse(self):
        g = KnowledgeGraph()
        g.add_edge("a", "r", "b", add_inverse=False)
        assert g.edge_count == 1
        assert not g.has_edge("b", "r_inv", "a")

    def test_duplicate_edge_not_counted(self, graph):
        before = graph.edge_count
        assert graph.add_edge("merkel", "leaderOf", "germany") is False
        assert graph.edge_count == before

    def test_parallel_labels_allowed(self):
        g = KnowledgeGraph()
        g.add_edge("a", "r1", "b")
        g.add_edge("a", "r2", "b")
        assert g.out_degree("a") == 2

    def test_remove_edge_with_inverse(self, graph):
        assert graph.remove_edge("merkel", "leaderOf", "germany")
        assert not graph.has_edge("merkel", "leaderOf", "germany")
        assert not graph.has_edge("germany", "leaderOf_inv", "merkel")
        assert graph.edge_count == 4

    def test_remove_missing_edge(self, graph):
        assert graph.remove_edge("merkel", "leaderOf", "usa") is False

    def test_edges_iteration_by_label(self, graph):
        leaders = list(graph.edges("leaderOf"))
        assert len(leaders) == 2
        assert all(isinstance(e, Edge) for e in leaders)

    def test_edges_iteration_all(self, graph):
        assert len(list(graph.edges())) == graph.edge_count

    def test_edges_unknown_label_empty(self, graph):
        assert list(graph.edges("nope")) == []

    def test_version_bumps_on_mutation(self):
        g = KnowledgeGraph()
        v0 = g.version
        g.add_edge("a", "r", "b")
        assert g.version > v0


class TestAdjacency:
    def test_out_neighbors(self, graph):
        merkel = graph.node_id("merkel")
        names = {graph.node_name(n) for n in graph.neighbors(merkel)}
        assert names == {"germany", "physics"}

    def test_label_restricted_neighbors(self, graph):
        names = {
            graph.node_name(n) for n in graph.neighbors("merkel", "leaderOf")
        }
        assert names == {"germany"}

    def test_in_neighbors(self, graph):
        names = {
            graph.node_name(n)
            for n in graph.neighbors("germany", "leaderOf", direction="in")
        }
        assert names == {"merkel"}

    def test_both_directions(self, graph):
        both = set(graph.neighbors("merkel", direction="both"))
        out_only = set(graph.neighbors("merkel", direction="out"))
        assert out_only <= both

    def test_invalid_direction(self, graph):
        with pytest.raises(ValueError):
            list(graph.neighbors("merkel", direction="sideways"))

    def test_out_edges_pairs(self, graph):
        pairs = {(l, graph.node_name(t)) for l, t in graph.out_edges("merkel")}
        assert ("leaderOf", "germany") in pairs
        assert ("studied", "physics") in pairs

    def test_degrees(self, graph):
        assert graph.out_degree("merkel") == 2
        assert graph.out_degree("merkel", "studied") == 1
        assert graph.in_degree("germany", "leaderOf") == 1
        assert graph.out_degree("merkel", "nope") == 0

    def test_out_labels(self, graph):
        assert graph.out_labels("merkel") == {"leaderOf", "studied"}

    def test_incident_labels(self, graph):
        labels = graph.incident_labels([graph.node_id("merkel"), graph.node_id("obama")])
        assert "leaderOf" in labels
        assert "studied" in labels


class TestLabelStatistics:
    def test_edge_count_by_label(self, graph):
        assert graph.edge_count_by_label("leaderOf") == 2
        assert graph.edge_count_by_label("leaderOf_inv") == 2
        assert graph.edge_count_by_label("nope") == 0

    def test_label_frequency(self, graph):
        assert graph.label_frequency("leaderOf") == pytest.approx(2 / 6)

    def test_label_weight_is_one_minus_frequency(self, graph):
        assert graph.label_weight("studied") == pytest.approx(1 - 1 / 6)

    def test_unknown_label_raises(self, graph):
        with pytest.raises(EdgeLabelNotFoundError):
            graph.label_frequency("nope")

    def test_edge_labels_live_only(self, graph):
        graph.remove_edge("merkel", "studied", "physics")
        assert "studied" not in graph.edge_labels

    def test_frequencies_sum_to_one(self, graph):
        total = sum(graph.label_frequency(l) for l in graph.edge_labels)
        assert total == pytest.approx(1.0)


class TestTypes:
    def test_types_of(self):
        g = KnowledgeGraph()
        g.add_edge("merkel", "type", "politician")
        g.add_edge("merkel", "type", "scientist")
        assert g.types_of("merkel") == {"politician", "scientist"}

    def test_instances_of(self):
        g = KnowledgeGraph()
        g.add_edge("merkel", "type", "politician")
        g.add_edge("obama", "type", "politician")
        instances = {g.node_name(n) for n in g.instances_of("politician")}
        assert instances == {"merkel", "obama"}


class TestMisc:
    def test_summary_mentions_sizes(self, graph):
        summary = graph.summary()
        assert "|V|=5" in summary
        assert "|E|=6" in summary

    def test_len_is_node_count(self, graph):
        assert len(graph) == graph.node_count
