"""Wall-clock measurement helpers used by the experiment harness."""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, TypeVar

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulating stopwatch.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _started_at: float | None = None

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self.laps.append(lap)
        self.elapsed += lap
        return lap

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @property
    def mean_lap(self) -> float:
        if not self.laps:
            return 0.0
        return self.elapsed / len(self.laps)

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@contextmanager
def timed(label: str, sink: dict[str, float] | None = None) -> Iterator[Stopwatch]:
    """Context manager recording the elapsed seconds under ``label``.

    If ``sink`` is given, the measurement is stored there; the stopwatch is
    yielded either way so callers can inspect ``elapsed`` directly.
    """
    watch = Stopwatch()
    watch.start()
    try:
        yield watch
    finally:
        watch.stop()
        if sink is not None:
            sink[label] = sink.get(label, 0.0) + watch.elapsed


def time_call(func: Callable[..., T], *args: Any, **kwargs: Any) -> tuple[T, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
