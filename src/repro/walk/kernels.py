"""Optional compiled kernels behind the ``REPRO_KERNEL`` seam.

The FindNC hot path spends nearly all of its time in two inner loops: the
CSR power-iteration sweep (``T @ P`` inside
:func:`repro.walk.pagerank.power_iteration_batch`) and the key/count
accumulation of the distribution sweep
(:class:`repro.core.distributions._SweepCounts`). Both run on pure
numpy/scipy by default; setting ``REPRO_KERNEL=numba`` swaps in
numba-compiled versions when numba is importable, and silently (but
observably — see :func:`kernel_status`) falls back to numpy when it is not.

The seam contract, pinned by ``tests/test_batch_parity.py``:

* A kernel may change *how fast* a result is produced, never its bits.
  The numba sweep replicates scipy's ``csr_matvecs`` accumulation order
  exactly (row -> nnz -> trailing columns, C-order output), and
  ``unique_counts`` returns precisely ``np.unique(keys,
  return_counts=True)`` — sorted unique keys plus integer counts.
* Kernel selection is process-wide and read from the environment, so
  process workers inherit the parent's choice through ``spawn``.
* Unknown ``REPRO_KERNEL`` values and broken numba installs degrade to
  numpy with the reason recorded; they never raise on the query path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

ENV_VAR = "REPRO_KERNEL"

#: Kernel names the seam recognises. Anything else falls back to numpy.
KNOWN_KERNELS = ("numpy", "numba")


@dataclass(frozen=True)
class KernelStatus:
    """Resolved kernel selection: what was asked for, what actually runs."""

    requested: str
    active: str
    reason: str

    def as_dict(self) -> dict[str, str]:
        return {"requested": self.requested, "active": self.active, "reason": self.reason}


_status_cache: dict[str, KernelStatus] = {}
_numba_matmat = None
_numba_unique = None


def _build_numba_kernels(numba):
    """Compile (and warm) the numba kernels; raises if compilation fails."""

    @numba.njit(cache=False)
    def csr_matmat(data, indices, indptr, n_rows, dense):
        # Replicates scipy's csr_matvecs loop nest bit-for-bit: for each
        # row, walk its nonzeros in storage order and axpy into the
        # C-order output row. Same adds in the same order as ``T @ P``.
        width = dense.shape[1]
        out = np.zeros((n_rows, width), dtype=np.float64)
        for i in range(n_rows):
            for jj in range(indptr[i], indptr[i + 1]):
                a = data[jj]
                col = indices[jj]
                for k in range(width):
                    out[i, k] += a * dense[col, k]
        return out

    @numba.njit(cache=False)
    def unique_counts(keys):
        # Sorted-unique + run-length encode == np.unique(return_counts=True)
        # for integer keys (integer outputs, so bitwise parity is free).
        ordered = np.sort(keys)
        n = ordered.shape[0]
        unique = np.empty(n, dtype=ordered.dtype)
        counts = np.empty(n, dtype=np.int64)
        size = 0
        i = 0
        while i < n:
            value = ordered[i]
            run = 1
            while i + run < n and ordered[i + run] == value:
                run += 1
            unique[size] = value
            counts[size] = run
            size += 1
            i += run
        return unique[:size].copy(), counts[:size].copy()

    # Warm-compile on tiny inputs so a broken toolchain surfaces at
    # resolution time (where the fallback guard is) rather than mid-query.
    tiny = np.array([1.0], dtype=np.float64)
    csr_matmat(tiny, np.array([0], dtype=np.int32), np.array([0, 1], dtype=np.int32), 1,
               np.ones((1, 1), dtype=np.float64))
    unique_counts(np.array([3, 1, 3], dtype=np.int64))
    return csr_matmat, unique_counts


def _resolve(requested: str) -> KernelStatus:
    global _numba_matmat, _numba_unique
    if requested not in KNOWN_KERNELS:
        return KernelStatus(
            requested, "numpy", f"unknown kernel {requested!r}; falling back to numpy"
        )
    if requested == "numpy":
        return KernelStatus(requested, "numpy", "pure-numpy kernels (default)")
    try:
        import numba
    except Exception as exc:  # pragma: no cover - depends on environment
        return KernelStatus(
            requested,
            "numpy",
            f"numba unavailable ({type(exc).__name__}: {exc}); falling back to numpy",
        )
    try:  # pragma: no cover - requires a working numba install
        _numba_matmat, _numba_unique = _build_numba_kernels(numba)
    except Exception as exc:
        return KernelStatus(
            requested,
            "numpy",
            f"numba kernel compilation failed ({type(exc).__name__}: {exc}); "
            "falling back to numpy",
        )
    return KernelStatus(  # pragma: no cover - requires a working numba install
        requested, "numba", f"numba {numba.__version__} kernels active"
    )


def kernel_status() -> KernelStatus:
    """The resolved kernel selection for the current ``REPRO_KERNEL`` value.

    Resolution (including the numba import/compile attempt) is cached per
    environment value, so flipping the variable between calls re-resolves.
    """
    requested = os.environ.get(ENV_VAR, "numpy").strip().lower() or "numpy"
    cached = _status_cache.get(requested)
    if cached is None:
        cached = _resolve(requested)
        _status_cache[requested] = cached
    return cached


def active_kernel() -> str:
    """``"numpy"`` or ``"numba"`` — whichever will actually execute."""
    return kernel_status().active


def csr_matmat(transition, dense: np.ndarray) -> np.ndarray:
    """``transition @ dense`` through the active kernel (bit-identical)."""
    if kernel_status().active == "numba":  # pragma: no cover - needs numba
        return _numba_matmat(
            transition.data,
            transition.indices,
            transition.indptr,
            transition.shape[0],
            np.ascontiguousarray(dense),
        )
    return transition @ dense


def unique_counts(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(keys, return_counts=True)`` through the active kernel."""
    if kernel_status().active == "numba":  # pragma: no cover - needs numba
        return _numba_unique(np.ascontiguousarray(keys))
    return np.unique(keys, return_counts=True)
