"""Exception hierarchy for the ``repro`` library.

Every exception raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class StoreError(ReproError):
    """Base class for triple-store errors."""


class ParseError(StoreError):
    """A serialized triple (N-Triples / TSV line) could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class TermError(StoreError):
    """An RDF-like term was constructed with invalid content."""


class GraphError(ReproError):
    """Base class for knowledge-graph errors."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id or node label was not present in the graph."""

    def __init__(self, node: object) -> None:
        self.node = node
        super().__init__(f"node not found: {node!r}")


class EdgeLabelNotFoundError(GraphError, KeyError):
    """An edge label was not present in the graph."""

    def __init__(self, label: object) -> None:
        self.label = label
        super().__init__(f"edge label not found: {label!r}")


class EntityResolutionError(GraphError):
    """An entity name could not be resolved to a node."""

    def __init__(self, name: str, candidates: tuple[str, ...] = ()) -> None:
        self.name = name
        self.candidates = candidates
        hint = f" (closest: {', '.join(candidates)})" if candidates else ""
        super().__init__(f"cannot resolve entity {name!r}{hint}")


class QueryError(ReproError):
    """The user-supplied query set is invalid (empty, too large, unknown)."""


class StatisticsError(ReproError):
    """A statistical routine received invalid input.

    Raised for example when a multinomial test is asked to compare
    distributions of mismatched support, or when a test's assumptions
    are structurally violated (negative counts, empty support).
    """


class ExperimentError(ReproError):
    """An evaluation experiment was misconfigured."""


class DeadlineExceededError(ReproError):
    """A request's deadline expired before its computation completed.

    Raised by the serving layer (:class:`~repro.service.engine.NCEngine`
    and :class:`~repro.service.workers.ProcessWorkerPool`) when a
    per-request deadline — ``timeout_ms`` over HTTP or the engine's
    ``request_timeout`` default — runs out. The HTTP front-end maps it
    to ``504 Gateway Timeout``. The underlying computation may still
    complete in the background and populate the result cache.
    """

    def __init__(self, message: str, *, timeout: float | None = None) -> None:
        self.timeout = timeout
        super().__init__(message)


class EngineSaturatedError(ReproError):
    """The engine shed a request: its pending-work budget is exhausted.

    Raised by :meth:`~repro.service.engine.NCEngine.submit` when
    ``max_pending`` distinct computations are already in flight —
    admission control that keeps queueing delay bounded instead of
    letting latency grow without limit under overload. The HTTP
    front-end maps it to ``503 Service Unavailable`` with a
    ``Retry-After`` header (:attr:`retry_after`, seconds).
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        self.retry_after = retry_after
        super().__init__(message)
