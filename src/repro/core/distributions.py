"""Instance and cardinality distributions (Section 3.2).

For an edge label ``l`` and node sets ``Q`` (query) and ``C`` (context):

* the **instance** distributions ``Inst_q / Inst_c`` count, for each value
  node ``i``, how many ``l``-labelled edges from the set end in ``i``. A
  ``None`` bucket counts set members with *no* ``l``-edge — Figure 7 shows
  it explicitly ("The first label is None, indicating no matching edge
  found").
* the **cardinality** distributions ``Card_q / Card_c`` count, for each
  ``i = 0, 1, 2, ...``, how many set members have exactly ``i``
  ``l``-labelled edges. This captures existence/cardinality facts that
  instance counts cannot ("Angela Merkel has no child while all other
  leaders have at least one").

Query and context vectors are aligned over the same support, "so x_i is
zero if i appears only in the context".
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.graph.model import KnowledgeGraph, NodeRef
from repro.stats.histograms import align_count_maps


class _NoneInstance:
    """Sentinel for the "no matching edge" bucket of instance distributions.

    A dedicated singleton (rather than the string ``"None"``) cannot collide
    with a graph node that happens to be named ``None``.
    """

    _instance: "_NoneInstance | None" = None

    def __new__(cls) -> "_NoneInstance":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "None"

    def __str__(self) -> str:
        return "None"


#: The "no matching edge" instance value.
NONE_INSTANCE = _NoneInstance()


def instance_counts(
    graph: KnowledgeGraph,
    nodes: Iterable[NodeRef],
    label: str,
    *,
    none_bucket: bool = True,
) -> dict[object, int]:
    """``{value: occurrences}`` of ``label``-edge endpoints from ``nodes``.

    Values are the *names* of the target nodes (phi of Definition 1).
    With ``none_bucket`` (default) every member without any ``label`` edge
    contributes one count to :data:`NONE_INSTANCE`.
    """
    counts: dict[object, int] = {}
    for node in nodes:
        targets = list(graph.neighbors(node, label))
        if not targets and none_bucket:
            counts[NONE_INSTANCE] = counts.get(NONE_INSTANCE, 0) + 1
            continue
        for target in targets:
            value = graph.node_name(target)
            counts[value] = counts.get(value, 0) + 1
    return counts


def cardinality_counts(
    graph: KnowledgeGraph, nodes: Iterable[NodeRef], label: str
) -> dict[int, int]:
    """``{i: number of members with exactly i label-edges}``."""
    counts: dict[int, int] = {}
    for node in nodes:
        degree = graph.out_degree(node, label)
        counts[degree] = counts.get(degree, 0) + 1
    return counts


@dataclass(frozen=True)
class CharacteristicDistributions:
    """The four aligned distributions of one candidate characteristic."""

    label: str
    instance_support: tuple[object, ...]
    inst_query: np.ndarray
    inst_context: np.ndarray
    cardinality_support: tuple[int, ...]
    card_query: np.ndarray
    card_context: np.ndarray

    @property
    def query_size(self) -> int:
        """|Q| recovered from the cardinality histogram."""
        return int(self.card_query.sum())

    @property
    def context_size(self) -> int:
        """|C| recovered from the cardinality histogram."""
        return int(self.card_context.sum())

    def instance_rows(self) -> list[tuple[str, int, int]]:
        """``(value, query count, context count)`` rows for reporting."""
        return [
            (str(value), int(q), int(c))
            for value, q, c in zip(
                self.instance_support, self.inst_query, self.inst_context
            )
        ]

    def cardinality_rows(self) -> list[tuple[int, int, int]]:
        """``(cardinality, query count, context count)`` rows for reporting."""
        return [
            (int(value), int(q), int(c))
            for value, q, c in zip(
                self.cardinality_support, self.card_query, self.card_context
            )
        ]


def build_distributions(
    graph: KnowledgeGraph,
    query: Sequence[NodeRef],
    context: Sequence[NodeRef],
    label: str,
    *,
    none_bucket: bool = True,
) -> CharacteristicDistributions:
    """Build the aligned Inst/Card distribution pairs for ``label``.

    The cardinality support is the contiguous range ``0..max`` observed in
    either set, so the histograms read like Figure 8 (zeros included).
    """
    inst_q = instance_counts(graph, query, label, none_bucket=none_bucket)
    inst_c = instance_counts(graph, context, label, none_bucket=none_bucket)
    instance_support, x_inst, y_inst = align_count_maps(inst_q, inst_c)

    card_q = cardinality_counts(graph, query, label)
    card_c = cardinality_counts(graph, context, label)
    max_cardinality = max(
        max(card_q, default=0),
        max(card_c, default=0),
    )
    card_support = list(range(max_cardinality + 1))
    x_card = np.array([card_q.get(i, 0) for i in card_support], dtype=np.int64)
    y_card = np.array([card_c.get(i, 0) for i in card_support], dtype=np.int64)

    return CharacteristicDistributions(
        label=label,
        instance_support=tuple(instance_support),
        inst_query=x_inst,
        inst_context=y_inst,
        cardinality_support=tuple(card_support),
        card_query=x_card,
        card_context=y_card,
    )
