"""Tests for request tracing: propagation, retention, cross-process stitching."""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.service.engine import NCEngine
from repro.service.server import create_server
from repro.service.tracing import (
    SpanContext,
    Trace,
    Tracer,
    WorkerSpanRecorder,
    log_event,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    set_log_format,
    trace_tree,
)

TRACE_ID = "0af7651916cd43dd8448eb211c80319c"
SPAN_ID = "b7ad6b7169203331"


class TestTraceparent:
    def test_valid_header_parses(self):
        parsed = parse_traceparent(f"00-{TRACE_ID}-{SPAN_ID}-01")
        assert parsed is not None
        assert parsed.trace_id == TRACE_ID
        assert parsed.span_id == SPAN_ID
        assert parsed.sampled is True

    def test_unsampled_flag(self):
        parsed = parse_traceparent(f"00-{TRACE_ID}-{SPAN_ID}-00")
        assert parsed is not None
        assert parsed.sampled is False

    def test_round_trip(self):
        context = SpanContext(new_trace_id(), new_span_id(), True)
        parsed = parse_traceparent(context.to_traceparent())
        assert parsed is not None
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == context.span_id
        assert parsed.sampled is context.sampled

    def test_surrounding_whitespace_tolerated(self):
        parsed = parse_traceparent(f"  00-{TRACE_ID}-{SPAN_ID}-01 ")
        assert parsed is not None
        assert parsed.trace_id == TRACE_ID

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            f"00-{TRACE_ID}-{SPAN_ID}",  # missing flags
            f"00-{TRACE_ID[:-2]}-{SPAN_ID}-01",  # short trace id
            f"00-{TRACE_ID}-{SPAN_ID}ab-01",  # long span id
            f"00-{TRACE_ID.upper()}-{SPAN_ID}-01",  # uppercase hex
            f"ff-{TRACE_ID}-{SPAN_ID}-01",  # forbidden version
            f"00-{'0' * 32}-{SPAN_ID}-01",  # all-zero trace id
            f"00-{TRACE_ID}-{'0' * 16}-01",  # all-zero span id
            f"00-{TRACE_ID}-{SPAN_ID}-01-extra",  # trailing field
        ],
    )
    def test_malformed_headers_rejected(self, header):
        assert parse_traceparent(header) is None


class TestTracerPolicy:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        assert not tracer.enabled
        assert tracer.begin("http.search") is None
        assert tracer.finish(None) is False

    def test_head_sampling_retains(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.begin("http.search")
        assert trace is not None and trace.sampled
        assert tracer.finish(trace) is True
        exported = tracer.buffer.get(trace.trace_id)
        assert exported is not None
        assert exported["retained"] == "sampled"

    def test_seeded_sampling_is_reproducible(self):
        decisions = []
        for _ in range(2):
            tracer = Tracer(sample_rate=0.5, seed=42)
            decisions.append(
                [tracer.begin("r") is not None for _ in range(64)]
            )
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_tail_capture_fast_request_not_retained(self):
        tracer = Tracer(slow_query_ms=10_000.0)
        trace = tracer.begin("http.search")
        assert trace is not None and not trace.sampled  # records anyway
        assert tracer.finish(trace) is False
        assert len(tracer.buffer) == 0

    def test_tail_capture_slow_request_retained(self):
        tracer = Tracer(slow_query_ms=0.001)
        trace = tracer.begin("http.search")
        time.sleep(0.002)
        assert tracer.finish(trace) is True
        exported = tracer.buffer.get(trace.trace_id)
        assert exported["retained"] == "slow"
        assert tracer.stats()["retained_slow"] == 1

    def test_errors_force_retention(self):
        tracer = Tracer(slow_query_ms=10_000.0)
        trace = tracer.begin("http.search")
        assert tracer.finish(trace, error=True) is True
        exported = tracer.buffer.get(trace.trace_id)
        assert exported["retained"] == "error"
        assert exported["error"] is True

    def test_inbound_sampled_parent_forces_continuity(self):
        tracer = Tracer(sample_rate=0.0, slow_query_ms=10_000.0)
        parent = SpanContext(TRACE_ID, SPAN_ID, True)
        trace = tracer.begin("http.search", parent=parent)
        assert trace is not None and trace.sampled
        assert trace.trace_id == TRACE_ID  # id continuity
        assert trace.root.parent_id == SPAN_ID  # child of the remote span
        assert tracer.finish(trace) is True

    def test_buffer_ring_evicts_oldest(self):
        tracer = Tracer(sample_rate=1.0, capacity=2)
        traces = [tracer.begin(f"r{i}") for i in range(3)]
        for trace in traces:
            tracer.finish(trace)
        assert tracer.buffer.get(traces[0].trace_id) is None  # evicted
        assert tracer.buffer.get(traces[2].trace_id) is not None
        stats = tracer.stats()
        assert stats["retained"] == 2
        assert stats["dropped"] == 1
        assert stats["started"] == 3

    @pytest.mark.parametrize(
        "kwargs",
        [{"sample_rate": -0.1}, {"sample_rate": 1.5}, {"slow_query_ms": 0.0}],
    )
    def test_rejects_bad_policy(self, kwargs):
        with pytest.raises(ValueError):
            Tracer(**kwargs)


class TestSpanStitching:
    def test_remote_spans_rebase_monotonically(self):
        """Worker offset spans land inside their ``pool.worker`` parent."""
        trace = Trace("http.search", sampled=True)
        dispatched_ns = time.monotonic_ns()

        recorder = WorkerSpanRecorder()  # worker-side, origin after dispatch
        start = recorder.now()
        time.sleep(0.001)
        recorder.record("worker.ppr", start, kernel="numpy")
        recorder.record("worker.sweep", recorder.now())

        worker = trace.add_span(
            "pool.worker",
            start_ns=dispatched_ns,
            end_ns=time.monotonic_ns(),
        )
        trace.add_remote_spans(
            recorder.export(), base_ns=dispatched_ns, parent=worker
        )
        exported = trace.as_dict()

        by_id = {span["span_id"]: span for span in exported["spans"]}
        remote = [
            span
            for span in exported["spans"]
            if span["name"].startswith("worker.")
        ]
        assert {span["name"] for span in remote} == {
            "worker.ppr",
            "worker.sweep",
        }
        for span in remote:
            parent = by_id[span["parent_id"]]
            assert parent["name"] == "pool.worker"
            assert parent["start_ns"] <= span["start_ns"]
            assert span["end_ns"] <= parent["end_ns"]
        ppr = next(span for span in remote if span["name"] == "worker.ppr")
        assert ppr["attributes"] == {"kernel": "numpy"}

    def test_trace_tree_nests_by_parent(self):
        trace = Trace("http.search", sampled=True)
        child = trace.start_span("engine.submit")
        grandchild = trace.start_span("engine.compute", parent=child)
        grandchild.end()
        child.end()
        tree = trace_tree(trace.as_dict())
        assert [node["name"] for node in tree] == ["http.search"]
        assert [node["name"] for node in tree[0]["children"]] == [
            "engine.submit"
        ]
        assert [
            node["name"] for node in tree[0]["children"][0]["children"]
        ] == ["engine.compute"]

    def test_remote_parent_makes_root(self):
        """An inbound traceparent's span id is absent: root stays a root."""
        trace = Trace("http.search", sampled=True, remote_parent=SPAN_ID)
        tree = trace_tree(trace.as_dict())
        assert len(tree) == 1
        assert tree[0]["name"] == "http.search"


class TestStructuredLogging:
    def teardown_method(self):
        set_log_format("text")

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            set_log_format("xml")

    def test_text_line(self):
        stream = io.StringIO()
        log_event("http_request", trace_id="abc", stream=stream, status=200)
        assert stream.getvalue() == "http_request trace_id=abc status=200\n"

    def test_json_line(self):
        set_log_format("json")
        stream = io.StringIO()
        log_event("http_request", trace_id="abc", stream=stream, status=200)
        payload = json.loads(stream.getvalue())
        assert payload["event"] == "http_request"
        assert payload["trace_id"] == "abc"
        assert payload["status"] == 200
        assert payload["ts"] > 0


@pytest.fixture(scope="module")
def traced_service():
    """A live server sampling every request, process workers + batching."""
    graph = figure1_graph()
    engine = NCEngine(
        graph,
        context_size=3,
        max_workers=1,
        executor="process",
        max_batch=4,
        batch_window_ms=5.0,
        seed=7,
        trace_sample_rate=1.0,
        trace_buffer=64,
    )
    server = create_server(engine, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, engine
    server.shutdown()
    server.server_close()
    engine.close()


def _get(server, path, headers=None):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", headers=headers or {}
    )
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), json.loads(
            response.read()
        )


def _fetch_trace(server, trace_id, timeout_s=5.0):
    """GET one trace, retrying briefly: the server retains it *after*
    writing the search response, so an immediate fetch can race it."""
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            _, _, trace = _get(server, f"/v1/debug/traces/{trace_id}")
            return trace
        except urllib.error.HTTPError as error:
            if error.code != 404 or time.monotonic() >= deadline:
                raise
            time.sleep(0.02)


class TestHttpTracing:
    def test_inbound_traceparent_id_is_echoed(self, traced_service):
        server, _ = traced_service
        sent = SpanContext(new_trace_id(), new_span_id(), True)
        status, headers, _ = _get(
            server,
            "/v1/search?query=Angela_Merkel,Barack_Obama",
            headers={"traceparent": sent.to_traceparent()},
        )
        assert status == 200
        assert headers["X-Trace-Id"] == sent.trace_id

    def test_malformed_traceparent_gets_fresh_id(self, traced_service):
        server, _ = traced_service
        _, headers, _ = _get(
            server,
            "/v1/search?query=Vladimir_Putin",
            headers={"traceparent": "zz-not-a-trace-parent"},
        )
        trace_id = headers["X-Trace-Id"]
        assert len(trace_id) == 32
        assert set(trace_id) <= set("0123456789abcdef")
        assert set(trace_id) != {"0"}

    def test_error_traces_are_retained(self, traced_service):
        server, engine = traced_service
        port = server.server_address[1]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/v1/search?query=No_Such_Entity_Xyz"
            )
        trace_id = excinfo.value.headers["X-Trace-Id"]
        deadline = time.monotonic() + 5.0
        exported = engine.tracer.buffer.get(trace_id)
        while exported is None and time.monotonic() < deadline:
            time.sleep(0.02)  # retention happens after the response write
            exported = engine.tracer.buffer.get(trace_id)
        assert exported is not None  # head-sampled; 4xx is not an error span
        root = exported["spans"][0]
        assert root["name"] == "http.search"
        assert root["attributes"]["status"] == 400

    def test_cross_process_stitching_is_monotonic(self, traced_service):
        """The full span tree: http → engine → pool → worker, nested."""
        server, _ = traced_service
        _, headers, _ = _get(
            server, "/v1/search?query=Matteo_Renzi,Francois_Hollande"
        )
        trace_id = headers["X-Trace-Id"]
        trace = _fetch_trace(server, trace_id)
        assert trace["trace_id"] == trace_id

        names = {span["name"] for span in trace["spans"]}
        assert "http.search" in names
        assert "engine.submit" in names
        assert "engine.compute" in names
        assert "pool.worker" in names
        # worker.attach only appears on the segment's first job, which an
        # earlier test in this module may already have consumed.
        assert {"worker.ppr", "worker.sweep"} <= names

        # Every child nests inside its parent's interval — the pickle
        # boundary rebase must keep cross-process timestamps monotonic.
        by_id = {span["span_id"]: span for span in trace["spans"]}
        nested = 0
        for span in trace["spans"]:
            parent = by_id.get(span["parent_id"])
            if parent is None:
                continue
            nested += 1
            assert parent["start_ns"] <= span["start_ns"], span["name"]
            assert span["end_ns"] <= parent["end_ns"], span["name"]
        assert nested >= 5

        # Worker phase time is a subset of the whole request.
        worker_ms = sum(
            span["duration_ms"]
            for span in trace["spans"]
            if span["name"] in ("worker.ppr", "worker.sweep")
        )
        assert 0 < worker_ms <= trace["duration_ms"]

        # The rendered tree roots at the HTTP span.
        tree = trace["tree"]
        assert tree[0]["name"] == "http.search"
        assert tree[0]["children"]

    def test_debug_listing_and_stats(self, traced_service):
        server, _ = traced_service
        _get(server, "/v1/search?query=Brad_Pitt")
        status, _, body = _get(server, "/v1/debug/traces?limit=5")
        assert status == 200
        assert body["traces"]
        assert len(body["traces"]) <= 5
        newest = body["traces"][0]
        assert newest["retained"] == "sampled"
        assert newest["spans"] >= 1
        assert body["capacity"] == 64
        assert body["sample_rate"] == 1.0
        assert body["started"] >= len(body["traces"])

    def test_debug_trace_not_found(self, traced_service):
        server, _ = traced_service
        port = server.server_address[1]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/v1/debug/traces/{'ab' * 16}"
            )
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["code"] == "trace_not_found"

    def test_debug_listing_rejects_bad_limit(self, traced_service):
        server, _ = traced_service
        port = server.server_address[1]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/v1/debug/traces?limit=0"
            )
        assert excinfo.value.code == 400
