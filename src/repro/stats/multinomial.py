"""The exact multinomial test (and its Monte-Carlo approximation).

Given a hypothesised multinomial distribution ``pi`` (the normalized
context distribution) and an observed count vector ``x`` (the query
distribution), the significance probability is::

    Pr_s(X ~ Mult(N, pi) = x) = sum over { y : Pr(y) <= Pr(x) } of Pr(y)

i.e. the total probability of outcomes at most as likely as the one
observed (an exact, two-sided-by-construction test). The paper: "In case of
large N, the exact test is impractical, a Montecarlo sampling to
approximate the final result is performed."

The characteristic score is ``MT = 1 - Pr_s`` when ``Pr_s <= alpha`` (the
hypothesis of equality is rejected) and ``0`` otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import StatisticsError
from repro.util.rng import RandomSource, ensure_numpy_rng

#: Relative tolerance when comparing outcome log-probabilities for the
#: "equally or less likely" cut. Guards against float noise making the
#: observed outcome "more likely than itself".
LOG_TIE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class MultinomialTestResult:
    """Outcome of a multinomial test.

    ``p_value`` is the significance probability ``Pr_s``; ``score`` is the
    paper's ``MT`` statistic (0 when not significant, ``1 - Pr_s`` when
    significant at ``alpha``).
    """

    p_value: float
    alpha: float
    n: int
    support: int
    method: str  # "exact" | "montecarlo" | "degenerate"

    @property
    def significant(self) -> bool:
        return self.p_value <= self.alpha

    @property
    def score(self) -> float:
        return 1.0 - self.p_value if self.significant else 0.0


def _validate(pi: np.ndarray, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    pi = np.asarray(pi, dtype=np.float64)
    x = np.asarray(x, dtype=np.int64)
    if pi.ndim != 1 or x.ndim != 1:
        raise StatisticsError("pi and x must be 1-D vectors")
    if pi.size != x.size:
        raise StatisticsError(
            f"support mismatch: pi has {pi.size} cells, x has {x.size}"
        )
    if pi.size == 0:
        raise StatisticsError("empty support")
    if np.any(pi < 0):
        raise StatisticsError("pi must be non-negative")
    total = float(pi.sum())
    if total <= 0:
        raise StatisticsError("pi must have positive mass")
    if abs(total - 1.0) > 1e-6:
        raise StatisticsError(f"pi must sum to 1 (got {total}); normalize first")
    if np.any(x < 0):
        raise StatisticsError("observed counts must be non-negative")
    return pi / total, x


def log_multinomial_pmf(pi: np.ndarray, x: np.ndarray) -> float:
    """``log Pr(X = x)`` for ``X ~ Mult(sum(x), pi)``; ``-inf`` if impossible."""
    pi = np.asarray(pi, dtype=np.float64)
    x = np.asarray(x, dtype=np.int64)
    if np.any((pi == 0) & (x > 0)):
        return float("-inf")
    n = int(x.sum())
    log_p = math.lgamma(n + 1)
    for count, prob in zip(x.tolist(), pi.tolist()):
        if count:
            log_p += count * math.log(prob) - math.lgamma(count + 1)
    return log_p


def number_of_compositions(n: int, k: int) -> int:
    """Number of ways to write ``n`` as an ordered sum of ``k`` non-negatives.

    ``C(n + k - 1, k - 1)`` — the size of the exact test's outcome space.
    """
    if n < 0 or k < 1:
        raise StatisticsError(f"invalid composition parameters n={n}, k={k}")
    return math.comb(n + k - 1, k - 1)


def _iter_compositions(n: int, k: int):
    """Yield all count vectors of length ``k`` summing to ``n`` (as lists)."""
    if k == 1:
        yield [n]
        return
    for first in range(n + 1):
        for rest in _iter_compositions(n - first, k - 1):
            yield [first] + rest


def exact_multinomial_test(
    pi: "np.ndarray | list[float]",
    x: "np.ndarray | list[int]",
    *,
    alpha: float = 0.05,
) -> MultinomialTestResult:
    """Enumerate the full outcome space and sum probabilities ``<= Pr(x)``.

    Cells with ``pi == 0`` are excluded from enumeration: any outcome
    placing counts there has probability zero and cannot contribute to
    ``Pr_s``. If the *observed* vector places counts on a zero cell,
    ``Pr(x) = 0`` and ``Pr_s = 0`` (maximal significance) — the "query
    exhibits a value the context never shows" case.
    """
    pi_arr, x_arr = _validate(np.asarray(pi), np.asarray(x))
    n = int(x_arr.sum())
    if n == 0:
        # No observations: the test is vacuous, never significant.
        return MultinomialTestResult(1.0, alpha, 0, pi_arr.size, "degenerate")
    if np.any((pi_arr == 0) & (x_arr > 0)):
        return MultinomialTestResult(0.0, alpha, n, pi_arr.size, "exact")
    support = np.flatnonzero(pi_arr > 0)
    pi_pos = pi_arr[support]
    x_pos = x_arr[support]
    log_px = log_multinomial_pmf(pi_pos, x_pos)
    threshold = log_px + LOG_TIE_TOLERANCE
    total = 0.0
    for outcome in _iter_compositions(n, int(pi_pos.size)):
        log_py = log_multinomial_pmf(pi_pos, np.asarray(outcome))
        if log_py <= threshold:
            total += math.exp(log_py)
    return MultinomialTestResult(min(total, 1.0), alpha, n, pi_arr.size, "exact")


def montecarlo_multinomial_test(
    pi: "np.ndarray | list[float]",
    x: "np.ndarray | list[int]",
    *,
    alpha: float = 0.05,
    samples: int = 20_000,
    rng: RandomSource = None,
) -> MultinomialTestResult:
    """Estimate ``Pr_s`` from ``samples`` multinomial draws.

    Uses the add-one estimator ``(hits + 1) / (samples + 1)`` which is never
    zero — the exact ``Pr_s`` cannot be zero either when ``Pr(x) > 0``
    (the observed outcome itself is always counted).
    """
    if samples < 1:
        raise StatisticsError(f"samples must be >= 1, got {samples}")
    pi_arr, x_arr = _validate(np.asarray(pi), np.asarray(x))
    n = int(x_arr.sum())
    if n == 0:
        return MultinomialTestResult(1.0, alpha, 0, pi_arr.size, "degenerate")
    if np.any((pi_arr == 0) & (x_arr > 0)):
        return MultinomialTestResult(0.0, alpha, n, pi_arr.size, "montecarlo")
    generator = ensure_numpy_rng(rng)
    log_px = log_multinomial_pmf(pi_arr, x_arr)
    threshold = log_px + LOG_TIE_TOLERANCE
    draws = generator.multinomial(n, pi_arr, size=samples)
    # Vectorized log-pmf over all draws.
    with np.errstate(divide="ignore", invalid="ignore"):
        log_pi = np.where(pi_arr > 0, np.log(np.maximum(pi_arr, 1e-300)), 0.0)
    log_probs = (
        math.lgamma(n + 1)
        + draws @ log_pi
        - _lgamma_rows(draws)
    )
    hits = int(np.count_nonzero(log_probs <= threshold))
    p_value = (hits + 1) / (samples + 1)
    return MultinomialTestResult(min(p_value, 1.0), alpha, n, pi_arr.size, "montecarlo")


def _lgamma_rows(draws: np.ndarray) -> np.ndarray:
    """Row-wise ``sum(lgamma(count + 1))`` for integer draw matrices."""
    max_count = int(draws.max(initial=0))
    table = np.array([math.lgamma(i + 1) for i in range(max_count + 1)])
    return table[draws].sum(axis=1)


def multinomial_test(
    pi: "np.ndarray | list[float]",
    x: "np.ndarray | list[int]",
    *,
    alpha: float = 0.05,
    max_exact_outcomes: int = 200_000,
    samples: int = 20_000,
    rng: RandomSource = None,
) -> MultinomialTestResult:
    """Exact test when the outcome space is tractable, else Monte-Carlo.

    The outcome space has ``C(N + k - 1, k - 1)`` points for ``N``
    observations over ``k`` positive-probability cells; beyond
    ``max_exact_outcomes`` the Monte-Carlo estimator takes over (the
    paper's footnote 1).
    """
    pi_arr, x_arr = _validate(np.asarray(pi), np.asarray(x))
    n = int(x_arr.sum())
    k = int(np.count_nonzero(pi_arr > 0))
    if n == 0:
        return MultinomialTestResult(1.0, alpha, 0, pi_arr.size, "degenerate")
    if k == 0 or np.any((pi_arr == 0) & (x_arr > 0)):
        return MultinomialTestResult(0.0, alpha, n, pi_arr.size, "exact")
    if number_of_compositions(n, k) <= max_exact_outcomes:
        return exact_multinomial_test(pi_arr, x_arr, alpha=alpha)
    return montecarlo_multinomial_test(
        pi_arr, x_arr, alpha=alpha, samples=samples, rng=rng
    )
