"""Curated seed entities — Table 1 of the paper, plus the Section-4.2 cases.

The evaluation queries name real people (Angela Merkel, Brad Pitt, ...).
The synthetic YAGO embeds these entities with their *actual* public facts
relevant to the paper's findings:

* Merkel: PhD in physics, no children — the motivating notable
  characteristics of the introduction;
* the five query actors: four founded their own production company
  (``created``), Johansson did not — Figure 7's instance distribution;
  Pitt additionally *owns* Plan B Entertainment — Figure 9's ``owns``
  borderline case;
* Douglas Adams and Terry Pratchett both influenced Neil Gaiman — the
  second Section-4.2 test case (``influences`` notable, ``created`` not).

Everything here is encoded as data so tests can assert the facts exist.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets import schema as s


@dataclass(frozen=True)
class SeedPerson:
    """A curated person with explicit facts (no randomness)."""

    name: str
    profession: str
    gender: str
    born_in: str | None = None
    citizen_of: str | None = None
    studied: str | None = None
    graduated_from: str | None = None
    academic_degree: str | None = None
    spouse: str | None = None
    children: tuple[str, ...] = ()
    leads: str | None = None
    party: str | None = None
    prizes: tuple[str, ...] = ()
    acted_in: tuple[str, ...] = ()
    directed: tuple[str, ...] = ()
    produced: tuple[str, ...] = ()
    created: tuple[str, ...] = ()
    owns: tuple[str, ...] = ()
    wrote_music_for: tuple[str, ...] = ()
    influences: tuple[str, ...] = ()
    extra_types: tuple[str, ...] = ()


@dataclass(frozen=True)
class QueryDomain:
    """One column of Table 1: a named domain and its six query entities."""

    name: str
    entities: tuple[str, ...]

    def nested_queries(self, *, minimum: int = 2) -> list[tuple[str, ...]]:
        """The paper's nested query sets: first 2 entities, first 3, ... 6."""
        return [
            tuple(self.entities[:size])
            for size in range(minimum, len(self.entities) + 1)
        ]


# -- Table 1 ------------------------------------------------------------------

POLITICIANS_DOMAIN = QueryDomain(
    "politicians",
    (
        "Angela_Merkel",
        "Barack_Obama",
        "Vladimir_Putin",
        "David_Cameron",
        "Francois_Hollande",
        "Xi_Jinping",
    ),
)

ACTORS_DOMAIN = QueryDomain(
    "actors",
    (
        "Brad_Pitt",
        "George_Clooney",
        "Leonardo_DiCaprio",
        "Scarlett_Johansson",
        "Johnny_Depp",
        "Angelina_Jolie",
    ),
)

MOVIE_CONTRIBUTORS_DOMAIN = QueryDomain(
    "movie contributors",
    (
        "Steven_Spielberg",
        "Robert_Downey_Jr",
        "Hans_Zimmer",
        "Quentin_Tarantino",
        "Ellen_Page",
        "Celine_Dion",
    ),
)

TABLE1_DOMAINS: tuple[QueryDomain, ...] = (
    POLITICIANS_DOMAIN,
    ACTORS_DOMAIN,
    MOVIE_CONTRIBUTORS_DOMAIN,
)

#: The second Section-4.2 test case.
AUTHORS_QUERY: tuple[str, ...] = ("Douglas_Adams", "Terry_Pratchett")

# -- shared supporting entities -------------------------------------------------

SEED_MOVIES: tuple[str, ...] = (
    "Oceans_Eleven",
    "Fight_Club",
    "Seven",
    "Troy",
    "Moneyball",
    "Syriana",
    "Up_in_the_Air",
    "The_Descendants",
    "Titanic",
    "The_Departed",
    "Inception",
    "The_Revenant",
    "Lost_in_Translation",
    "The_Avengers",
    "Lucy",
    "Pirates_of_the_Caribbean",
    "Edward_Scissorhands",
    "Sweeney_Todd",
    "Mr_and_Mrs_Smith",
    "Maleficent",
    "Jaws",
    "Jurassic_Park",
    "Schindlers_List",
    "Saving_Private_Ryan",
    "Iron_Man",
    "Sherlock_Holmes",
    "Pulp_Fiction",
    "Kill_Bill",
    "Django_Unchained",
    "Juno",
    "X_Men_Days_of_Future_Past",
    "Interstellar",
    "Gladiator",
    "The_Dark_Knight",
    "Dunkirk",
)

#: Prizes, companies and people referenced by seed facts.
SEED_COMPANIES: tuple[str, ...] = (
    "Plan_B_Entertainment",
    "Smokehouse_Pictures",
    "Appian_Way_Productions",
    "Infinitum_Nihil",
    "Amblin_Entertainment",
    "A_Band_Apart",
    "Remote_Control_Productions",
)

SEED_ALBUMS: tuple[str, ...] = (
    "Falling_Into_You",
    "Lets_Talk_About_Love",
)

SEED_BOOKS: tuple[str, ...] = (
    "Hitchhikers_Guide_to_the_Galaxy",
    "The_Restaurant_at_the_End_of_the_Universe",
    "Life_the_Universe_and_Everything",
    "So_Long_and_Thanks_for_All_the_Fish",
    "Mostly_Harmless",
    "Dirk_Gentlys_Holistic_Detective_Agency",
    "The_Long_Dark_Tea_Time_of_the_Soul",
    "The_Colour_of_Magic",
    "Mort",
    "Guards_Guards",
    "Small_Gods",
    "Night_Watch",
    "Going_Postal",
    "Wyrd_Sisters",
    "Hogfather",
    "Good_Omens",
    "American_Gods",
    "Dreams_from_My_Father",
)


def _actor(name: str, **kwargs) -> SeedPerson:
    return SeedPerson(name=name, profession=s.ACTOR, **kwargs)


def _politician(name: str, **kwargs) -> SeedPerson:
    return SeedPerson(name=name, profession=s.POLITICIAN, **kwargs)


SEED_PEOPLE: tuple[SeedPerson, ...] = (
    # -- politicians ----------------------------------------------------------
    _politician(
        "Angela_Merkel",
        gender=s.FEMALE,
        born_in="Hamburg",
        citizen_of="Germany",
        studied="Physics",
        graduated_from="University_of_Leipzig",
        academic_degree="Doctorate",
        spouse="Joachim_Sauer",
        children=(),  # the paper's flagship notable characteristic
        leads="Germany",
        party="Civic_Union",
        prizes=("Charlemagne_Prize",),
        extra_types=(s.SCIENTIST,),
    ),
    _politician(
        "Barack_Obama",
        gender=s.MALE,
        born_in="Honolulu",
        citizen_of="United_States",
        studied="Law",
        graduated_from="Harvard_University",
        spouse="Michelle_Obama",
        children=("Malia_Obama", "Natasha_Obama"),
        leads="United_States",
        party="Progress_Party",
        prizes=("Nobel_Peace_Prize",),
        created=("Dreams_from_My_Father",),
    ),
    _politician(
        "Vladimir_Putin",
        gender=s.MALE,
        born_in="Saint_Petersburg",
        citizen_of="Russia",
        studied="Law",
        graduated_from="Leningrad_State_University",
        children=("Mariya_Putina", "Yekaterina_Putina"),
        leads="Russia",
        party="Unity_Coalition",
    ),
    _politician(
        "David_Cameron",
        gender=s.MALE,
        born_in="London",
        citizen_of="United_Kingdom",
        studied="Political_Science",
        graduated_from="Oxford_University",
        spouse="Samantha_Cameron",
        children=("Nancy_Cameron", "Arthur_Cameron", "Florence_Cameron"),
        leads="United_Kingdom",
        party="Heritage_Party",
    ),
    _politician(
        "Francois_Hollande",
        gender=s.MALE,
        born_in="Rouen",
        citizen_of="France",
        studied="Law",
        graduated_from="Sorbonne",
        children=(
            "Thomas_Hollande",
            "Clemence_Hollande",
            "Julien_Hollande",
            "Flora_Hollande",
        ),
        leads="France",
        party="Social_Forum",
    ),
    _politician(
        "Xi_Jinping",
        gender=s.MALE,
        born_in="Beijing",
        citizen_of="China",
        studied="Chemical_Engineering",
        graduated_from="Tsinghua_University",
        spouse="Peng_Liyuan",
        children=("Xi_Mingze",),
        leads="China",
        party="Workers_League",
    ),
    # -- actors (Figure 7/8/9 facts) -------------------------------------------
    _actor(
        "Brad_Pitt",
        gender=s.MALE,
        born_in="Shawnee",
        citizen_of="United_States",
        spouse="Angelina_Jolie",
        children=("Maddox_Jolie_Pitt", "Shiloh_Jolie_Pitt"),
        prizes=("Academy_Award", "Golden_Globe"),
        acted_in=("Oceans_Eleven", "Fight_Club", "Seven", "Troy", "Moneyball",
                  "Mr_and_Mrs_Smith"),
        created=("Plan_B_Entertainment",),
        owns=("Plan_B_Entertainment",),  # Figure 9's borderline 'owns' case
    ),
    _actor(
        "George_Clooney",
        gender=s.MALE,
        born_in="Lexington",
        citizen_of="United_States",
        spouse="Amal_Clooney",
        prizes=("Academy_Award", "Golden_Globe", "BAFTA_Award"),
        acted_in=("Oceans_Eleven", "Syriana", "Up_in_the_Air", "The_Descendants"),
        created=("Smokehouse_Pictures",),
    ),
    _actor(
        "Leonardo_DiCaprio",
        gender=s.MALE,
        born_in="Los_Angeles",
        citizen_of="United_States",
        prizes=("Academy_Award", "Golden_Globe"),
        acted_in=("Titanic", "The_Departed", "Inception", "The_Revenant"),
        created=("Appian_Way_Productions",),
    ),
    _actor(
        "Scarlett_Johansson",
        gender=s.FEMALE,
        born_in="New_York",
        citizen_of="United_States",
        prizes=("BAFTA_Award",),
        acted_in=("Lost_in_Translation", "The_Avengers", "Lucy"),
        created=(),  # Figure 7: the one query actor with no 'created' edge
    ),
    _actor(
        "Johnny_Depp",
        gender=s.MALE,
        born_in="Owensboro",
        citizen_of="United_States",
        children=("Lily_Rose_Depp", "Jack_Depp"),
        prizes=("Golden_Globe",),
        acted_in=("Pirates_of_the_Caribbean", "Edward_Scissorhands", "Sweeney_Todd"),
        created=("Infinitum_Nihil",),
    ),
    _actor(
        "Angelina_Jolie",
        gender=s.FEMALE,
        born_in="Los_Angeles",
        citizen_of="United_States",
        spouse="Brad_Pitt",
        children=("Maddox_Jolie_Pitt", "Shiloh_Jolie_Pitt", "Zahara_Jolie_Pitt"),
        prizes=("Academy_Award", "Golden_Globe", "Screen_Actors_Guild_Award"),
        acted_in=("Mr_and_Mrs_Smith", "Maleficent"),
        directed=("First_They_Killed_My_Father",),
    ),
    # -- movie contributors -----------------------------------------------------
    SeedPerson(
        name="Steven_Spielberg",
        profession=s.DIRECTOR,
        gender=s.MALE,
        born_in="Cincinnati",
        citizen_of="United_States",
        spouse="Kate_Capshaw",
        children=("Max_Spielberg", "Sasha_Spielberg"),
        prizes=("Academy_Award", "Golden_Globe"),
        directed=("Jaws", "Jurassic_Park", "Schindlers_List", "Saving_Private_Ryan"),
        produced=("Jurassic_Park",),
        created=("Amblin_Entertainment",),
        owns=("Amblin_Entertainment",),
    ),
    _actor(
        "Robert_Downey_Jr",
        gender=s.MALE,
        born_in="New_York",
        citizen_of="United_States",
        spouse="Susan_Downey",
        children=("Exton_Downey",),
        prizes=("Golden_Globe",),
        acted_in=("Iron_Man", "Sherlock_Holmes", "The_Avengers"),
    ),
    SeedPerson(
        name="Hans_Zimmer",
        profession=s.MUSICIAN,
        gender=s.MALE,
        born_in="Frankfurt",
        citizen_of="Germany",
        prizes=("Academy_Award", "Grammy_Award"),
        wrote_music_for=("Inception", "Interstellar", "Gladiator",
                         "The_Dark_Knight", "Dunkirk"),
        created=("Remote_Control_Productions",),
    ),
    SeedPerson(
        name="Quentin_Tarantino",
        profession=s.DIRECTOR,
        gender=s.MALE,
        born_in="Knoxville",
        citizen_of="United_States",
        prizes=("Academy_Award", "Palme_dOr"),
        directed=("Pulp_Fiction", "Kill_Bill", "Django_Unchained"),
        produced=("Kill_Bill",),
        created=("A_Band_Apart",),
    ),
    _actor(
        "Ellen_Page",
        gender=s.FEMALE,
        born_in="Halifax",
        citizen_of="Canada",
        acted_in=("Juno", "Inception", "X_Men_Days_of_Future_Past"),
        prizes=(),
    ),
    SeedPerson(
        name="Celine_Dion",
        profession=s.MUSICIAN,
        gender=s.FEMALE,
        born_in="Charlemagne_Quebec",
        citizen_of="Canada",
        spouse="Rene_Angelil",
        children=("Rene_Charles_Angelil",),
        prizes=("Grammy_Award",),
        created=("Falling_Into_You", "Lets_Talk_About_Love"),
        wrote_music_for=("Titanic",),
    ),
    # -- authors (Section 4.2, second test case) ---------------------------------
    SeedPerson(
        name="Douglas_Adams",
        profession=s.WRITER,
        gender=s.MALE,
        born_in="Cambridge",
        citizen_of="United_Kingdom",
        studied="Literature",
        prizes=("Hugo_Award",),
        created=(
            "Hitchhikers_Guide_to_the_Galaxy",
            "The_Restaurant_at_the_End_of_the_Universe",
            "Life_the_Universe_and_Everything",
            "So_Long_and_Thanks_for_All_the_Fish",
            "Mostly_Harmless",
            "Dirk_Gentlys_Holistic_Detective_Agency",
            "The_Long_Dark_Tea_Time_of_the_Soul",
        ),
        influences=("Neil_Gaiman",),
    ),
    SeedPerson(
        name="Terry_Pratchett",
        profession=s.WRITER,
        gender=s.MALE,
        born_in="Beaconsfield",
        citizen_of="United_Kingdom",
        studied="Literature",
        children=("Rhianna_Pratchett",),
        prizes=("Nebula_Award",),
        created=(
            "The_Colour_of_Magic",
            "Mort",
            "Guards_Guards",
            "Small_Gods",
            "Night_Watch",
            "Going_Postal",
            "Wyrd_Sisters",
            "Hogfather",
        ),
        influences=("Neil_Gaiman",),
    ),
    SeedPerson(
        name="Neil_Gaiman",
        profession=s.WRITER,
        gender=s.MALE,
        born_in="Portchester",
        citizen_of="United_Kingdom",
        studied="Literature",
        prizes=("Hugo_Award", "Nebula_Award"),
        created=("Good_Omens", "American_Gods"),
    ),
)


def seed_person(name: str) -> SeedPerson:
    """Look up one curated person by name."""
    for person in SEED_PEOPLE:
        if person.name == name:
            return person
    raise KeyError(f"no seed person named {name!r}")


def domain_by_name(name: str) -> QueryDomain:
    """Look up one Table-1 domain by its name."""
    for domain in TABLE1_DOMAINS:
        if domain.name == name:
            return domain
    raise KeyError(f"no domain named {name!r}")
