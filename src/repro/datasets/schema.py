"""Relation vocabulary and type schema of the synthetic knowledge graphs.

The synthetic YAGO mirrors the fragment of YAGO 2.5's 38 relations that the
paper's evaluation actually touches (Figures 7-9 discuss ``created``,
``hasWonPrize``, ``actedIn``, ``owns``, ``influences``; the motivating
examples use ``hasChild``, ``studied``, ``isLeaderOf``) plus enough others
to give random walks realistic branching.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.names import (
    FILM_PRIZES,
    LITERATURE_PRIZES,
    MUSIC_PRIZES,
    POLITICS_PRIZES,
    SCIENCE_PRIZES,
    SPORTS_PRIZES,
)
from repro.graph.labels import SUBCLASS_OF_LABEL, TYPE_LABEL

# -- edge labels (forward forms; inverses are added by the graph closure) --

ACTED_IN = "actedIn"
BORN_IN = "bornIn"
CREATED = "created"
DIED_IN = "diedIn"
DIRECTED = "directed"
GENDER = "hasGender"
GRADUATED_FROM = "graduatedFrom"
HAS_ACADEMIC_DEGREE = "hasAcademicDegree"
HAS_CHILD = "hasChild"
HAS_GENRE = "hasGenre"
HAS_WON_PRIZE = "hasWonPrize"
INFLUENCES = "influences"
IS_CITIZEN_OF = "isCitizenOf"
IS_LEADER_OF = "isLeaderOf"
IS_LOCATED_IN = "isLocatedIn"
IS_MARRIED_TO = "isMarriedTo"
LIVES_IN = "livesIn"
MEMBER_OF_PARTY = "isAffiliatedTo"
OWNS = "owns"
PLAYS_FOR = "playsFor"
PRODUCED = "produced"
RELEASED_IN = "releasedIn"
STUDIED = "studied"
WROTE_MUSIC_FOR = "wroteMusicFor"

#: Every forward relation the synthetic YAGO can emit.
YAGO_RELATIONS: tuple[str, ...] = (
    ACTED_IN,
    BORN_IN,
    CREATED,
    DIED_IN,
    DIRECTED,
    GENDER,
    GRADUATED_FROM,
    HAS_ACADEMIC_DEGREE,
    HAS_CHILD,
    HAS_GENRE,
    HAS_WON_PRIZE,
    INFLUENCES,
    IS_CITIZEN_OF,
    IS_LEADER_OF,
    IS_LOCATED_IN,
    IS_MARRIED_TO,
    LIVES_IN,
    MEMBER_OF_PARTY,
    OWNS,
    PLAYS_FOR,
    PRODUCED,
    RELEASED_IN,
    STUDIED,
    SUBCLASS_OF_LABEL,
    TYPE_LABEL,
    WROTE_MUSIC_FOR,
)

# -- node types ---------------------------------------------------------------

PERSON = "person"
POLITICIAN = "politician"
ACTOR = "actor"
DIRECTOR = "film_director"
MUSICIAN = "musician"
WRITER = "writer"
SCIENTIST = "scientist"
ATHLETE = "athlete"

LOCATION = "location"
COUNTRY = "country"
CITY = "city"

ORGANIZATION = "organization"
PARTY = "political_party"
COMPANY = "company"
UNIVERSITY = "university"
SPORTS_TEAM = "sports_team"

CREATIVE_WORK = "creative_work"
MOVIE = "movie"
BOOK = "book"
ALBUM = "album"

AWARD = "award"
ACADEMIC_FIELD = "academic_field"
GENDER_VALUE = "gender_value"
YEAR = "year"
ENTITY = "entity"

#: ``child type -> parent type`` — the synthetic subclassOf forest.
TYPE_HIERARCHY: dict[str, str] = {
    PERSON: ENTITY,
    POLITICIAN: PERSON,
    ACTOR: PERSON,
    DIRECTOR: PERSON,
    MUSICIAN: PERSON,
    WRITER: PERSON,
    SCIENTIST: PERSON,
    ATHLETE: PERSON,
    LOCATION: ENTITY,
    COUNTRY: LOCATION,
    CITY: LOCATION,
    ORGANIZATION: ENTITY,
    PARTY: ORGANIZATION,
    COMPANY: ORGANIZATION,
    UNIVERSITY: ORGANIZATION,
    SPORTS_TEAM: ORGANIZATION,
    CREATIVE_WORK: ENTITY,
    MOVIE: CREATIVE_WORK,
    BOOK: CREATIVE_WORK,
    ALBUM: CREATIVE_WORK,
    AWARD: ENTITY,
    ACADEMIC_FIELD: ENTITY,
    GENDER_VALUE: ENTITY,
    YEAR: ENTITY,
}

#: The person types the generators can populate.
PROFESSIONS: tuple[str, ...] = (
    POLITICIAN,
    ACTOR,
    DIRECTOR,
    MUSICIAN,
    WRITER,
    SCIENTIST,
    ATHLETE,
)

MALE = "male"
FEMALE = "female"


@dataclass(frozen=True)
class ProfessionProfile:
    """Attribute probabilities for one synthetic profession.

    Each field is the probability (or count range) with which a generated
    person of this profession carries the attribute. The numbers encode the
    distributional facts the paper's test cases rely on — e.g. most
    politicians have children (Merkel's zero is notable) and roughly half
    of the actors ``created`` a production company (Figure 7's 43% ``None``
    bucket).
    """

    type_name: str
    share: float  # fraction of the person population
    female_rate: float
    married_rate: float
    children_range: tuple[int, int]  # inclusive bounds; (0, 0) = none
    childless_rate: float  # probability of zero children despite the range
    studied_rate: float
    study_fields: tuple[tuple[str, float], ...]  # field -> relative weight
    degree_rate: float  # probability of hasAcademicDegree -> Doctorate
    prize_rate: float
    prize_count_range: tuple[int, int]
    prize_pool: tuple[str, ...] = ()  # empty = any prize
    # Profession-specific relation rates, interpreted by the generator:
    acted_in_range: tuple[int, int] = (0, 0)
    directed_range: tuple[int, int] = (0, 0)
    produced_rate: float = 0.0
    created_company_rate: float = 0.0
    owns_company_rate: float = 0.0
    created_books_range: tuple[int, int] = (0, 0)
    created_albums_range: tuple[int, int] = (0, 0)
    wrote_music_rate: float = 0.0
    influences_rate: float = 0.0
    leads_country_rate: float = 0.0
    party_rate: float = 0.0
    plays_for_rate: float = 0.0


PROFESSION_PROFILES: dict[str, ProfessionProfile] = {
    POLITICIAN: ProfessionProfile(
        type_name=POLITICIAN,
        share=0.16,
        female_rate=0.15,
        married_rate=0.85,
        children_range=(1, 4),
        childless_rate=0.02,
        studied_rate=0.95,
        study_fields=(
            ("Law", 0.45),
            ("Political_Science", 0.2),
            ("Economics", 0.15),
            ("History", 0.12),
            ("Philosophy", 0.05),
            ("Physics", 0.03),
        ),
        degree_rate=0.10,
        prize_rate=0.20,
        prize_count_range=(1, 1),
        prize_pool=POLITICS_PRIZES,
        leads_country_rate=0.25,
        party_rate=0.95,
    ),
    ACTOR: ProfessionProfile(
        type_name=ACTOR,
        share=0.22,
        female_rate=0.45,
        married_rate=0.60,
        children_range=(0, 3),
        childless_rate=0.35,
        studied_rate=0.55,
        study_fields=(("Drama", 0.8), ("Film_Studies", 0.15), ("Literature", 0.05)),
        degree_rate=0.02,
        prize_rate=0.75,
        prize_count_range=(1, 3),
        prize_pool=FILM_PRIZES,
        acted_in_range=(2, 8),
        created_company_rate=0.42,
        owns_company_rate=0.06,
    ),
    DIRECTOR: ProfessionProfile(
        type_name=DIRECTOR,
        share=0.10,
        female_rate=0.25,
        married_rate=0.65,
        children_range=(0, 3),
        childless_rate=0.30,
        studied_rate=0.60,
        study_fields=(("Film_Studies", 0.7), ("Drama", 0.2), ("Literature", 0.1)),
        degree_rate=0.05,
        prize_rate=0.60,
        prize_count_range=(1, 3),
        prize_pool=FILM_PRIZES,
        directed_range=(1, 6),
        produced_rate=0.40,
        created_company_rate=0.35,
        owns_company_rate=0.15,
    ),
    MUSICIAN: ProfessionProfile(
        type_name=MUSICIAN,
        share=0.12,
        female_rate=0.40,
        married_rate=0.55,
        children_range=(0, 3),
        childless_rate=0.35,
        studied_rate=0.40,
        study_fields=(("Music_Theory", 0.9), ("Literature", 0.1)),
        degree_rate=0.03,
        prize_rate=0.50,
        prize_count_range=(1, 4),
        prize_pool=MUSIC_PRIZES,
        created_albums_range=(1, 5),
        wrote_music_rate=0.30,
    ),
    WRITER: ProfessionProfile(
        type_name=WRITER,
        share=0.14,
        female_rate=0.45,
        married_rate=0.65,
        children_range=(0, 3),
        childless_rate=0.30,
        studied_rate=0.70,
        study_fields=(("Literature", 0.7), ("History", 0.2), ("Philosophy", 0.1)),
        degree_rate=0.10,
        prize_rate=0.40,
        prize_count_range=(1, 2),
        prize_pool=LITERATURE_PRIZES,
        created_books_range=(1, 10),
        influences_rate=0.15,
    ),
    SCIENTIST: ProfessionProfile(
        type_name=SCIENTIST,
        share=0.12,
        female_rate=0.35,
        married_rate=0.70,
        children_range=(0, 3),
        childless_rate=0.25,
        studied_rate=1.0,
        study_fields=(
            ("Physics", 0.25),
            ("Biology", 0.2),
            ("Mathematics", 0.2),
            ("Computer_Science", 0.2),
            ("Medicine", 0.15),
        ),
        degree_rate=0.85,
        prize_rate=0.30,
        prize_count_range=(1, 2),
        prize_pool=SCIENCE_PRIZES,
        influences_rate=0.08,
    ),
    ATHLETE: ProfessionProfile(
        type_name=ATHLETE,
        share=0.14,
        female_rate=0.40,
        married_rate=0.50,
        children_range=(0, 2),
        childless_rate=0.45,
        studied_rate=0.20,
        study_fields=(("Sociology", 0.5), ("Economics", 0.5)),
        degree_rate=0.01,
        prize_rate=0.45,
        prize_count_range=(1, 3),
        prize_pool=SPORTS_PRIZES,
        plays_for_rate=0.98,
    ),
}
