"""N-Triples parsing and serialization.

A pragmatic subset of the W3C N-Triples grammar covering everything YAGO
and LinkedMDB dumps use: IRIs, plain literals, language-tagged literals and
datatyped literals. Blank nodes are intentionally rejected (the datasets do
not contain them and Definition 1 has no place for unlabeled nodes).
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator

from repro.errors import ParseError
from repro.store.terms import IRI, Literal, Term, unescape_literal
from repro.store.triples import Triple

_IRI_RE = r"<([^<>\"{}|^`\\\s]*)>"
_LITERAL_RE = r'"((?:[^"\\]|\\.)*)"(?:@([a-zA-Z][a-zA-Z0-9-]*)|\^\^<([^<>\s]*)>)?'
_TRIPLE_RE = re.compile(
    rf"^\s*{_IRI_RE}\s+{_IRI_RE}\s+(?:{_IRI_RE}|{_LITERAL_RE})\s*\.\s*$"
)
_COMMENT_RE = re.compile(r"^\s*(#.*)?$")


def parse_ntriples_line(line: str, line_number: int | None = None) -> Triple | None:
    """Parse a single N-Triples line; return ``None`` for blanks/comments."""
    if _COMMENT_RE.match(line):
        return None
    match = _TRIPLE_RE.match(line)
    if match is None:
        raise ParseError(f"not a valid N-Triples statement: {line.strip()!r}", line_number)
    subj_iri, pred_iri, obj_iri, lit_value, lit_lang, lit_dtype = match.groups()
    subject = IRI(subj_iri)
    predicate = IRI(pred_iri)
    obj: Term
    if obj_iri is not None:
        obj = IRI(obj_iri)
    else:
        obj = Literal(
            unescape_literal(lit_value),
            datatype=lit_dtype,
            language=lit_lang,
        )
    return Triple(subject, predicate, obj)


def parse_ntriples(text: "str | Iterable[str]") -> Iterator[Triple]:
    """Parse N-Triples from a string or an iterable of lines.

    >>> list(parse_ntriples('<a> <b> "x" .'))
    [Triple(subject=IRI(value='a'), predicate=IRI(value='b'), \
object=Literal(value='x', datatype=None, language=None))]
    """
    lines = text.splitlines() if isinstance(text, str) else text
    for number, line in enumerate(lines, start=1):
        triple = parse_ntriples_line(line, number)
        if triple is not None:
            yield triple


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples to N-Triples text (one statement per line)."""
    return "\n".join(t.n3() for t in triples)


def load_ntriples_file(path: str) -> Iterator[Triple]:
    """Stream-parse an N-Triples file from disk."""
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            triple = parse_ntriples_line(line, number)
            if triple is not None:
                yield triple


def save_ntriples_file(path: str, triples: Iterable[Triple]) -> int:
    """Write triples to ``path``; return the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for triple in triples:
            handle.write(triple.n3())
            handle.write("\n")
            count += 1
    return count
