"""Append-only delta runs: edge adds/removes against a base snapshot.

A full ``.snap`` file is immutable, so absorbing writes today means a
full ``repro compile`` + ``repro publish`` round trip even for a
one-edge change. This module adds the write path's durable unit: a
**delta run** — one small, immutable file recording the *net effect* of
a batch of statement-level adds and removes against a specific base
snapshot version::

    [ magic "RPRODELT" | u32 format version | u32 header length
      | header JSON | padding to 8 | data region ]

The data region mirrors the ``.snap`` idiom (:mod:`repro.disk.store`):
8-byte-aligned blocks described by the header — a run-local node/label
name table (UTF-8 offset/blob pairs, the encoding
:mod:`repro.parallel.shm` uses) plus six ``int64`` id columns, the
add statements and the remove statements as ``(subject, label, object)``
rows over the run-local vocabulary. Runs are self-contained: they never
reference base ids, so a run outlives re-interning decisions and can be
replayed against any snapshot in its chain.

Statement semantics
-------------------

Batches are canonicalized before hitting disk (:func:`canonicalize_ops`):

* Ops apply **last-op-wins** per *inversion class* — the pair
  ``{t, inv(t)}`` under :func:`~repro.graph.labels.inverse_label` — so
  an add followed by a remove of the same (or the mirrored) statement
  nets out to the remove, and vice versa. Removing a statement removes
  its inverse-closure twin too, which keeps edge-level removal exactly
  equal to recompiling without the statement (the differential suite in
  ``tests/test_delta_parity.py`` pins this).
* The surviving adds and removes are **disjoint, deduplicated, and
  sorted** — merge order is therefore deterministic, which is what lets
  the incremental merge reproduce a full recompile's first-mention
  vocabulary ids byte-for-byte.
* Removes of statements whose terms were never interned are recorded
  (they are part of the batch's intent) but are no-ops at merge time;
  removes never grow the vocabulary.

Durability: a run writes to a temp file and is published by one
``os.replace`` — the manifest (:mod:`repro.disk.registry`) only learns a
run's name *after* the rename, so a crash mid-append (fault point
``delta.append``) leaves at most an ignored ``*.tmp.*`` file and never a
torn run behind a live manifest reference.
"""

from __future__ import annotations

import json
import os
import re
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ReproError
from repro.graph.labels import inverse_label, is_inverse_label
from repro.parallel.shm import SharedNameTable, _aligned, _encode_names

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from collections.abc import Iterable, Sequence

#: File magic for delta runs: 8 bytes, never changes across versions.
DELTA_MAGIC = b"RPRODELT"

#: Bump on any incompatible layout change; readers reject other versions.
DELTA_FORMAT_VERSION = 1

#: magic + u32 format version + u32 header length (little-endian).
_PREAMBLE = struct.Struct("<8sII")

#: Run file name: base version + run sequence number, zero-padded so a
#: lexicographic directory listing is also chain order.
_RUN_NAME = "v{base:06d}-d{seq:04d}.delta"

_RUN_PATTERN = re.compile(r"^v(\d{6})-d(\d{4})\.delta$")

#: The six id columns every run stores (rows into the run-local vocab).
_RUN_COLUMNS = (
    "add_sources",
    "add_labels",
    "add_targets",
    "remove_sources",
    "remove_labels",
    "remove_targets",
)


class DeltaFormatError(ReproError):
    """The file is not a valid delta run (bad magic, version, or layout)."""


class DeltaLogError(ReproError):
    """A delta-log append could not be made durable."""


def _class_key(subject: str, label: str, obj: str) -> "tuple[str, str, str]":
    """The canonical representative of ``{t, inv(t)}``.

    Both orientations of a statement map to the same key, which is what
    makes last-op-wins act on the inversion class rather than the raw
    string triple.
    """
    if is_inverse_label(label):
        return (obj, inverse_label(label), subject)
    return (subject, label, obj)


def canonicalize_ops(
    ops: "Iterable[tuple[str, tuple[str, str, str]]]",
) -> "tuple[tuple[tuple[str, str, str], ...], tuple[tuple[str, str, str], ...]]":
    """Collapse an op stream to disjoint sorted ``(adds, removes)``.

    ``ops`` is a sequence of ``("+" | "-", (subject, label, object))``
    pairs in arrival order. Later ops on the same inversion class
    overwrite earlier ones; adds keep the orientation the caller wrote
    (it decides vocabulary first-mention order), removes collapse to the
    class representative (removal is orientation-blind).
    """
    net: "dict[tuple[str, str, str], tuple[str, tuple[str, str, str]]]" = {}
    for op, statement in ops:
        if op not in ("+", "-"):
            raise ValueError(f"delta op must be '+' or '-', got {op!r}")
        subject, label, obj = statement
        key = _class_key(subject, label, obj)
        net[key] = (op, statement if op == "+" else key)
    adds = sorted(stmt for op, stmt in net.values() if op == "+")
    removes = sorted(stmt for op, stmt in net.values() if op == "-")
    return tuple(adds), tuple(removes)


def parse_delta_lines(
    lines: "Iterable[str]", fmt: str = "nt"
) -> "list[tuple[str, tuple[str, str, str]]]":
    """Parse a delta batch body into ``(op, statement)`` pairs.

    Each non-blank, non-comment line is one statement in ``fmt``
    (``"nt"`` or ``"tsv"``), optionally prefixed with ``+`` or ``-``
    (plus following whitespace) to mark an add or a remove; bare lines
    are adds. Raises the underlying parser's error on junk lines.
    """
    if fmt == "nt":
        from repro.store.ntriples import parse_ntriples_line as parse_line
    elif fmt == "tsv":
        from repro.store.tsv import parse_tsv_line as parse_line
    else:
        raise ValueError(f"unknown delta format {fmt!r} (expected nt/tsv)")
    ops: "list[tuple[str, tuple[str, str, str]]]" = []
    for line_number, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        op = "+"
        if stripped[:1] in ("+", "-") and (
            len(stripped) == 1 or stripped[1].isspace()
        ):
            op = stripped[0]
            raw = stripped[1:]
        triple = parse_line(raw, line_number)
        if triple is None:
            continue
        ops.append(
            (op, (str(triple.subject), str(triple.predicate), str(triple.object)))
        )
    return ops


def _intern_statements(
    statements: "Sequence[tuple[str, str, str]]",
    node_to_id: "dict[str, int]",
    nodes: "list[str]",
    label_to_id: "dict[str, int]",
    labels: "list[str]",
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    src = np.empty(len(statements), dtype=np.int64)
    lab = np.empty(len(statements), dtype=np.int64)
    dst = np.empty(len(statements), dtype=np.int64)
    for row, (subject, label, obj) in enumerate(statements):
        for term in (subject, obj):
            if not isinstance(term, str) or not term:
                raise ValueError(
                    f"node name must be a non-empty string, got {term!r}"
                )
            if term not in node_to_id:
                node_to_id[term] = len(nodes)
                nodes.append(term)
        if not isinstance(label, str) or not label:
            raise ValueError(f"edge label must be a non-empty string, got {label!r}")
        if label not in label_to_id:
            label_to_id[label] = len(labels)
            labels.append(label)
        src[row] = node_to_id[subject]
        lab[row] = label_to_id[label]
        dst[row] = node_to_id[obj]
    return src, lab, dst


@dataclass(frozen=True)
class DeltaRun:
    """One published delta-run file (identity + statement counts)."""

    path: str
    base_version: int
    seq: int
    adds: int
    removes: int
    bytes: int

    @property
    def file(self) -> str:
        """The run's directory-relative file name (the manifest key)."""
        return os.path.basename(self.path)

    def read(
        self,
    ) -> "tuple[tuple[tuple[str, str, str], ...], tuple[tuple[str, str, str], ...]]":
        """Decode the run back to its ``(adds, removes)`` statement sets."""
        return read_delta_run(self.path)


def write_delta_run(
    adds: "Sequence[tuple[str, str, str]]",
    removes: "Sequence[tuple[str, str, str]]",
    path: "str | os.PathLike[str]",
    *,
    base_version: int,
    seq: int,
) -> int:
    """Persist one canonical ``(adds, removes)`` batch as a run file.

    Callers are expected to have canonicalized the batch
    (:func:`canonicalize_ops`); the writer stores statements exactly as
    given. Writes via temp file + atomic rename; the ``delta.append``
    fault point fires *between* the temp write and the rename, modelling
    a crash that leaves a torn temp file which run discovery ignores.
    Returns the total bytes written.
    """
    from repro.service import faults  # lazy: avoids a service<->disk cycle

    node_to_id: "dict[str, int]" = {}
    nodes: "list[str]" = []
    label_to_id: "dict[str, int]" = {}
    labels: "list[str]" = []
    add_src, add_lab, add_dst = _intern_statements(
        adds, node_to_id, nodes, label_to_id, labels
    )
    rem_src, rem_lab, rem_dst = _intern_statements(
        removes, node_to_id, nodes, label_to_id, labels
    )
    node_offsets, node_blob = _encode_names(nodes)
    label_offsets, label_blob = _encode_names(labels)

    blocks: "list[tuple[str, np.ndarray]]" = [
        ("node_name_offsets", node_offsets),
        ("node_name_blob", node_blob),
        ("label_name_offsets", label_offsets),
        ("label_name_blob", label_blob),
        ("add_sources", add_src),
        ("add_labels", add_lab),
        ("add_targets", add_dst),
        ("remove_sources", rem_src),
        ("remove_labels", rem_lab),
        ("remove_targets", rem_dst),
    ]
    block_table: "list[tuple[str, dict]]" = []
    offset = 0
    for name, column in blocks:
        offset = _aligned(offset)
        block_table.append(
            (
                name,
                {
                    "offset": offset,
                    "length": int(column.shape[0]),
                    "dtype": column.dtype.name,
                },
            )
        )
        offset += column.nbytes
    data_bytes = offset

    header_json = json.dumps(
        {
            "base_version": base_version,
            "seq": seq,
            "adds": len(adds),
            "removes": len(removes),
            "nodes": len(nodes),
            "labels": len(labels),
            "blocks": block_table,
            "data_bytes": data_bytes,
        },
        sort_keys=True,
    ).encode("utf-8")
    data_start = _aligned(_PREAMBLE.size + len(header_json))
    total = data_start + data_bytes

    path = os.fspath(path)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(
                _PREAMBLE.pack(DELTA_MAGIC, DELTA_FORMAT_VERSION, len(header_json))
            )
            handle.write(header_json)
            specs = dict(block_table)
            for name, column in blocks:
                if column.nbytes == 0:
                    continue
                handle.seek(data_start + specs[name]["offset"])
                handle.write(memoryview(np.ascontiguousarray(column)))
            handle.truncate(total)
    except BaseException:  # pragma: no cover - only on write failure
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    # The crash model: die after the temp write, before the publishing
    # rename — the torn ``*.tmp.*`` file stays behind on purpose, and
    # run discovery must keep ignoring it.
    if faults.fire("delta.append"):
        raise DeltaLogError(
            f"fault injection: crashed before publishing delta run {path!r}"
        )
    os.replace(tmp_path, path)
    return total


def _read_header(path: str) -> dict:
    with open(path, "rb") as handle:
        preamble = handle.read(_PREAMBLE.size)
        if len(preamble) < _PREAMBLE.size:
            raise DeltaFormatError(f"{path}: file too short for a delta run")
        magic, format_version, header_length = _PREAMBLE.unpack(preamble)
        if magic != DELTA_MAGIC:
            raise DeltaFormatError(f"{path}: not a delta run (bad magic)")
        if format_version != DELTA_FORMAT_VERSION:
            raise DeltaFormatError(
                f"{path}: unsupported delta format version {format_version} "
                f"(this build reads version {DELTA_FORMAT_VERSION})"
            )
        try:
            meta = json.loads(handle.read(header_length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise DeltaFormatError(f"{path}: corrupt delta header") from error
    data_start = _aligned(_PREAMBLE.size + header_length)
    expected = data_start + meta["data_bytes"]
    actual = os.path.getsize(path)
    if actual < expected:
        raise DeltaFormatError(
            f"{path}: truncated delta run ({actual} bytes, header declares "
            f"{expected})"
        )
    missing = [
        name
        for name in (*_RUN_COLUMNS, "node_name_offsets", "node_name_blob",
                     "label_name_offsets", "label_name_blob")
        if name not in dict(meta["blocks"])
    ]
    if missing:
        raise DeltaFormatError(f"{path}: delta run is missing blocks {missing}")
    meta["_data_start"] = data_start
    return meta


def inspect_delta_run(path: "str | os.PathLike[str]") -> DeltaRun:
    """A run file's identity and counts, read from the header only."""
    path = os.path.abspath(os.fspath(path))
    meta = _read_header(path)
    return DeltaRun(
        path=path,
        base_version=meta["base_version"],
        seq=meta["seq"],
        adds=meta["adds"],
        removes=meta["removes"],
        bytes=os.path.getsize(path),
    )


def read_delta_run(
    path: "str | os.PathLike[str]",
) -> "tuple[tuple[tuple[str, str, str], ...], tuple[tuple[str, str, str], ...]]":
    """Decode one run file back to string ``(adds, removes)`` sets."""
    path = os.path.abspath(os.fspath(path))
    meta = _read_header(path)
    data_start = meta["_data_start"]
    specs = dict(meta["blocks"])
    mm = np.memmap(path, dtype=np.uint8, mode="r")

    def view(name: str) -> np.ndarray:
        spec = specs[name]
        start = data_start + spec["offset"]
        nbytes = spec["length"] * np.dtype(spec["dtype"]).itemsize
        column = mm[start : start + nbytes].view(spec["dtype"])
        if column.shape[0] != spec["length"]:  # pragma: no cover - header drift
            raise DeltaFormatError(f"{path}: block {name!r} extends past end of file")
        return column

    try:
        node_names = SharedNameTable(view("node_name_offsets"), view("node_name_blob"))
        label_names = SharedNameTable(
            view("label_name_offsets"), view("label_name_blob")
        )
        nodes = [node_names[index] for index in range(meta["nodes"])]
        labels = [label_names[index] for index in range(meta["labels"])]

        def decode(prefix: str, count: int):
            src = view(f"{prefix}_sources")
            lab = view(f"{prefix}_labels")
            dst = view(f"{prefix}_targets")
            return tuple(
                (nodes[int(src[row])], labels[int(lab[row])], nodes[int(dst[row])])
                for row in range(count)
            )

        adds = decode("add", meta["adds"])
        removes = decode("remove", meta["removes"])
    finally:
        del mm
    return adds, removes


class DeltaLog:
    """The ordered run sequence of one base version, in one directory.

    A thin, stateless façade over the run files themselves: discovery
    re-globs the directory (crash recovery is "look at the files"),
    sequence numbers are allocated past the highest published run, and
    :meth:`append` is the only writer. The registry layers the manifest
    bookkeeping (which runs the serving chain has merged) on top.
    """

    def __init__(self, directory: "str | os.PathLike[str]", base_version: int) -> None:
        self.directory = os.path.abspath(os.fspath(directory))
        if base_version < 0:
            raise ValueError(f"base version must be >= 0, got {base_version}")
        self.base_version = base_version

    def run_path(self, seq: int) -> str:
        """The absolute path a run with sequence number ``seq`` uses."""
        return os.path.join(
            self.directory, _RUN_NAME.format(base=self.base_version, seq=seq)
        )

    def runs(self) -> "list[DeltaRun]":
        """Published runs for this base, in sequence order.

        Temp files (``*.tmp.*`` from a crashed append) do not match the
        run pattern and are ignored — a torn write is invisible here.
        """
        found = []
        try:
            entries = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        for entry in entries:
            match = _RUN_PATTERN.match(entry)
            if match is None or int(match.group(1)) != self.base_version:
                continue
            found.append(inspect_delta_run(os.path.join(self.directory, entry)))
        found.sort(key=lambda run: run.seq)
        return found

    def next_seq(self) -> int:
        """One past the highest published sequence number (0 when empty)."""
        runs = self.runs()
        return runs[-1].seq + 1 if runs else 0

    def append(
        self,
        ops: "Iterable[tuple[str, tuple[str, str, str]]]",
    ) -> "DeltaRun | None":
        """Canonicalize ``ops`` and publish them as the next run.

        Returns the published :class:`DeltaRun`, or ``None`` when the
        batch nets out to nothing (nothing is written). Raises
        :class:`DeltaLogError` if the append could not be made durable
        (the ``delta.append`` crash fault surfaces here).
        """
        adds, removes = canonicalize_ops(ops)
        if not adds and not removes:
            return None
        seq = self.next_seq()
        path = self.run_path(seq)
        written = write_delta_run(
            adds, removes, path, base_version=self.base_version, seq=seq
        )
        return DeltaRun(
            path=path,
            base_version=self.base_version,
            seq=seq,
            adds=len(adds),
            removes=len(removes),
            bytes=written,
        )
