"""Markdown link/anchor checker + docstring-surface checker for the repo docs.

**Link mode** (the default) validates, for every markdown file it is
given (or the default doc set):

* **relative links** ``[text](path)`` resolve to an existing file or
  directory (relative to the file containing the link);
* **anchored links** ``[text](path#anchor)`` / ``[text](#anchor)`` point
  at a heading that actually exists in the target markdown file, using
  GitHub's heading-to-anchor slug rules (lowercase, spaces to hyphens,
  punctuation stripped);
* external links (``http://``, ``https://``, ``mailto:``) are *not*
  fetched — CI must not depend on the network — but obviously malformed
  ones (empty targets) still fail.

**Docstring mode** (``--docstrings``) mirrors the CI ruff D100–D104 job
without requiring ruff: every module in the given packages (default: the
documented ``repro.service`` / ``repro.parallel`` / ``repro.disk`` /
``repro.core`` / ``repro.graph`` surface) must carry a module docstring,
and every public class, method and function a docstring.
``tests/test_docs.py`` runs both modes, so the docs gate holds even
where only pytest is installed.

Exit status 0 when everything passes, 1 otherwise (one line per
problem). Run from the repo root::

    python tools/check_docs.py            # the default documentation set
    python tools/check_docs.py README.md docs/ARCHITECTURE.md
    python tools/check_docs.py --docstrings                 # default packages
    python tools/check_docs.py --docstrings src/repro/disk
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documentation surface checked by CI when no files are given.
DEFAULT_DOC_SET = (
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/OPERATIONS.md",
    "benchmarks/README.md",
    "src/repro/service/README.md",
)

#: The packages whose docstring surface CI enforces (ruff D100–D104 scope).
DEFAULT_DOCSTRING_PACKAGES = (
    "src/repro/service",
    "src/repro/parallel",
    "src/repro/disk",
    "src/repro/core",
    "src/repro/graph",
)

#: Inline markdown links: [text](target). Images share the syntax with a
#: leading "!", which the pattern tolerates. Nested brackets in the text
#: are not supported (the doc set doesn't use them).
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: ATX headings, the only heading style the doc set uses.
_HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's heading → anchor slug transformation.

    Lowercase, backtick/asterisk markers and punctuation removed, spaces
    turned into hyphens. Underscores are *kept* — GitHub preserves them
    (``## node_count semantics`` anchors as ``#node_count-semantics``);
    stripping them would both reject correct anchors and accept wrong
    ones.
    """
    text = re.sub(r"[`*]", "", heading.strip())
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    text = text.replace(" ", "-")
    return text


def _strip_code_blocks(markdown: str) -> str:
    """Remove fenced code blocks so example links inside them are ignored."""
    out: list[str] = []
    in_fence = False
    for line in markdown.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def heading_slugs(markdown_path: Path) -> set[str]:
    """Every anchor GitHub would generate for ``markdown_path``'s headings.

    Duplicate headings get ``-1``, ``-2`` … suffixes, exactly as GitHub
    disambiguates them.
    """
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    content = _strip_code_blocks(markdown_path.read_text(encoding="utf-8"))
    for line in content.splitlines():
        match = _HEADING_PATTERN.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def check_file(markdown_path: Path) -> list[str]:
    """All broken-link messages for one markdown file (empty = clean)."""
    problems: list[str] = []
    content = _strip_code_blocks(markdown_path.read_text(encoding="utf-8"))
    for target in _LINK_PATTERN.findall(content):
        if target.startswith(_EXTERNAL_SCHEMES):
            continue
        if target.startswith("#"):
            path_part, anchor = "", target[1:]
        elif "#" in target:
            path_part, anchor = target.split("#", 1)
        else:
            path_part, anchor = target, ""
        resolved = (
            markdown_path.parent / path_part if path_part else markdown_path
        )
        try:
            resolved = resolved.resolve()
        except OSError:  # pragma: no cover - unresolvable path
            problems.append(f"{markdown_path}: unresolvable link {target!r}")
            continue
        if path_part and not resolved.exists():
            problems.append(f"{markdown_path}: broken link {target!r}")
            continue
        if anchor:
            if resolved.suffix.lower() not in (".md", ".markdown"):
                problems.append(
                    f"{markdown_path}: anchor on non-markdown target {target!r}"
                )
                continue
            if anchor not in heading_slugs(resolved):
                problems.append(
                    f"{markdown_path}: missing anchor {target!r} "
                    f"(no heading slugs to {anchor!r} in {resolved.name})"
                )
    return problems


def _docstring_problems_in_tree(tree: ast.Module, path: Path) -> "list[str]":
    """D100/D104 (module) and D101–D103 (public defs) presence checks."""
    problems: list[str] = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}: missing module docstring (D100/D104)")

    def visit(node: ast.AST, *, inside_function: bool, inside_private: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                private = inside_private or child.name.startswith("_")
                if not private and ast.get_docstring(child) is None:
                    problems.append(
                        f"{path}:{child.lineno}: public class "
                        f"{child.name!r} has no docstring (D101)"
                    )
                visit(
                    child,
                    inside_function=inside_function,
                    inside_private=private,
                )
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested helpers are implementation detail, and members of
                # private classes inherit privacy (pydocstyle semantics:
                # every ancestor must be public for a name to be public).
                if (
                    not inside_function
                    and not inside_private
                    and not child.name.startswith("_")
                    and ast.get_docstring(child) is None
                ):
                    problems.append(
                        f"{path}:{child.lineno}: public function/method "
                        f"{child.name!r} has no docstring (D102/D103)"
                    )
                visit(child, inside_function=True, inside_private=inside_private)

    visit(tree, inside_function=False, inside_private=False)
    return problems


def check_docstrings(paths: "list[Path] | tuple[Path, ...]") -> "list[str]":
    """All docstring-surface problems under ``paths`` (empty = clean).

    Each path is a ``.py`` file or a package directory (walked
    recursively). Mirrors the CI ruff ``D100,D101,D102,D103,D104``
    selection: module docstrings everywhere, docstrings on every public
    class/function/method; private names (leading underscore) and
    function-local helpers are exempt.
    """
    problems: list[str] = []
    for base in paths:
        base = Path(base)
        if not base.exists():
            problems.append(f"{base}: path does not exist")
            continue
        files = [base] if base.suffix == ".py" else sorted(base.rglob("*.py"))
        for file in files:
            try:
                tree = ast.parse(file.read_text(encoding="utf-8"), filename=str(file))
            except SyntaxError as error:  # pragma: no cover - broken source
                problems.append(f"{file}: cannot parse ({error})")
                continue
            problems.extend(_docstring_problems_in_tree(tree, file))
    return problems


def main(argv: "list[str] | None" = None) -> int:
    """Check markdown links (default) or the docstring surface (``--docstrings``)."""
    args = list(argv) if argv is not None else sys.argv[1:]
    if "--docstrings" in args:
        args.remove("--docstrings")
        targets = [Path(arg) for arg in args] or [
            REPO_ROOT / rel for rel in DEFAULT_DOCSTRING_PACKAGES
        ]
        problems = check_docstrings(targets)
        for problem in problems:
            print(problem, file=sys.stderr)
        checked = ", ".join(str(p) for p in targets)
        if problems:
            print(
                f"FAILED: {len(problems)} docstring problem(s) across {checked}",
                file=sys.stderr,
            )
            return 1
        print(f"OK: docstring surface complete ({checked})")
        return 0
    files = [Path(arg) for arg in args] if args else [
        REPO_ROOT / rel for rel in DEFAULT_DOC_SET
    ]
    problems: list[str] = []
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file does not exist")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = ", ".join(str(p) for p in files)
    if problems:
        print(f"FAILED: {len(problems)} broken link(s) across {checked}", file=sys.stderr)
        return 1
    print(f"OK: all links resolve ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
