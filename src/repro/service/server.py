"""Stdlib HTTP JSON front-end for :class:`~repro.service.engine.NCEngine`.

The API lives under a versioned prefix — ``/v1/...`` is canonical, and
every pre-v1 unprefixed path (``/search``, ``/healthz``, ``/stats``,
``/admin/reload``) is kept as an **alias** that answers byte-identically
plus a ``Deprecation: true`` response header (RFC 8594 style), so
existing clients keep working while new ones migrate. Routing is
data-driven: :data:`ROUTES` declares ``(method, canonical path, alias,
handler)`` tuples and the dispatch table is derived from it — adding a
namespaced multi-tenant surface later (ROADMAP item 5) means adding
rows, not ``if/elif`` arms.

Endpoints (full request/response reference: ``docs/OPERATIONS.md``)
---------

``GET /v1/healthz``
    Liveness + graph summary::

        {"status": "ok", "version_id": 3, "uptime_s": 12.5,
         "snapshot_source": "registry:/srv/serving", "graph_version": 3,
         "nodes": 2188, "edges": 15466, ...}

``GET /v1/stats``
    Engine counters (requests, cache hits, coalescing, LRU stats; hot
    swaps and drained versions when serving a snapshot registry).

``GET /v1/metrics``
    Prometheus text exposition (``text/plain; version=0.0.4``) of every
    layer's counters, latency histograms and gauges
    (:mod:`repro.service.metrics`). The one route that answers text,
    not JSON.

``GET /v1/search?query=Angela_Merkel&query=Barack_Obama[&context_size=50][&alpha=0.05][&timeout_ms=500]``
``POST /v1/search`` with body ``{"query": [...], "context_size": 50, "alpha": 0.05, "timeout_ms": 500}``
    Run FindNC and return the notable characteristics. ``query`` accepts
    node names (exact or fuzzy) or integer node ids; the GET form also
    accepts one comma-separated ``query`` parameter. ``timeout_ms``
    bounds the request (overriding the engine's default deadline);
    expiry answers ``504`` with ``code: "deadline_exceeded"``. A
    saturated engine sheds with ``503``, ``code: "saturated"`` and a
    ``Retry-After`` header; every error body carries a stable
    machine-readable ``code`` next to the human-readable ``error``.

``GET /v1/debug/traces`` and ``GET /v1/debug/traces/<trace-id>``
    The tracer's ring buffer: recent retained-trace summaries (newest
    first, ``?limit=N``) and one full span tree as nested JSON. Empty
    unless tracing is on (``--trace-sample-rate`` / ``--slow-query-ms``).
    Every response echoes the request's trace id in an ``X-Trace-Id``
    header when a trace is being recorded, and inbound W3C
    ``traceparent`` headers are adopted (sampled flag forces capture).

``POST /v1/admin/reload``
    Hot-swap onto the newest registry version (``repro serve
    --snapshot-dir`` only): re-reads the manifest, and when it names a
    version newer than the pinned one, swaps the engine onto it while
    in-flight requests drain on the old pin
    (:meth:`~repro.service.engine.NCEngine.swap_snapshot`). Idempotent —
    reloading with nothing new published answers ``{"swapped": false}``.
    The same code path runs on a timer when ``--poll-interval`` is set
    (:class:`RegistryPoller` watches the manifest mtime).

``POST /v1/admin/ingest[?format=nt|tsv][&wait=1]``
    Live delta ingest (registry-backed servers only): the body is a
    batch of statements — N-Triples by default, TSV with
    ``?format=tsv`` — each line optionally prefixed ``+`` (add, the
    default) or ``-`` (remove). The batch is canonicalized and appended
    to the chain's delta log **synchronously** (durable when the
    response leaves), then merged into a fresh snapshot version and
    adopted through the same hot-swap path as ``/v1/admin/reload`` in a
    background thread — reads never block and never drop. ``?wait=1``
    runs merge + swap before responding (deterministic for tests and
    soak gates). Unparseable bodies answer ``400`` with
    ``code: "bad_batch"``; batches that net out to nothing answer
    ``{"accepted": false}`` without writing anything.

Every request is recorded in the engine's metrics registry
(``nc_http_requests_total{route,method,status}`` and the per-route
latency histogram), labeled by *canonical* route name whichever spelling
the client used.

Built on :class:`http.server.ThreadingHTTPServer` (one thread per
connection, stdlib-only); actual query concurrency is bounded by the
engine's executor, and identical concurrent requests coalesce there.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import DeadlineExceededError, EngineSaturatedError, ReproError
from repro.graph.model import KnowledgeGraph
from repro.parallel.shm import StaleSnapshotError
from repro.service import metrics as metrics_mod
from repro.service.engine import NCEngine, SearchOutcome
from repro.service.tracing import (
    get_log_format,
    log_event,
    parse_traceparent,
    trace_tree,
)
from repro.service.workers import RemoteQueryError, WorkerCrashError
from repro.walk.kernels import kernel_status

#: Stable machine-readable error codes, keyed by HTTP status, used when
#: a handler does not pass a more specific ``code``. Clients switch on
#: ``code``, never on the human-readable ``error`` message.
DEFAULT_ERROR_CODES = {
    400: "bad_request",
    404: "not_found",
    500: "internal_error",
    503: "unavailable",
    504: "deadline_exceeded",
}


@dataclass(frozen=True)
class RouteSpec:
    """One row of the route table: canonical path, legacy alias, handler.

    ``name`` is the stable route label used by the HTTP metrics series
    (and the OPERATIONS.md reference); ``handler`` names the
    :class:`NCRequestHandler` method invoked with the split URL.
    ``alias`` is the pre-v1 unprefixed path that must answer
    byte-identically (plus the ``Deprecation`` header), or ``None``
    for routes born under ``/v1/``. ``prefix`` routes match any path
    that *starts with* ``path`` (the trace-detail route embeds the
    trace id in the path), so they live outside the exact-match table.
    """

    method: str
    path: str
    alias: "str | None"
    name: str
    handler: str
    prefix: bool = False


#: The service's full HTTP surface. Dispatch is derived from this table;
#: extend it (rather than the verb methods) to add endpoints.
ROUTES: "tuple[RouteSpec, ...]" = (
    RouteSpec("GET", "/v1/healthz", "/healthz", "healthz", "_handle_healthz"),
    RouteSpec("GET", "/v1/stats", "/stats", "stats", "_handle_stats"),
    RouteSpec("GET", "/v1/metrics", "/metrics", "metrics", "_handle_metrics"),
    RouteSpec("GET", "/v1/search", "/search", "search", "_handle_search_get"),
    RouteSpec("POST", "/v1/search", "/search", "search", "_handle_search_post"),
    RouteSpec(
        "POST",
        "/v1/admin/reload",
        "/admin/reload",
        "admin_reload",
        "_handle_admin_reload",
    ),
    RouteSpec(
        "POST",
        "/v1/admin/ingest",
        None,
        "admin_ingest",
        "_handle_admin_ingest",
    ),
    RouteSpec(
        "GET",
        "/v1/debug/traces",
        None,
        "debug_traces",
        "_handle_debug_traces",
    ),
    RouteSpec(
        "GET",
        "/v1/debug/traces/",
        None,
        "debug_trace",
        "_handle_debug_trace",
        prefix=True,
    ),
)


def _build_dispatch(
    routes: "tuple[RouteSpec, ...]",
) -> "dict[tuple[str, str], tuple[RouteSpec, bool]]":
    """``(method, path) -> (route, is_deprecated_alias)`` lookup table.

    Prefix routes are excluded: they cannot be keyed by exact path and
    are scanned by :meth:`NCRequestHandler._dispatch` as a fallback.
    """
    table: "dict[tuple[str, str], tuple[RouteSpec, bool]]" = {}
    for spec in routes:
        if spec.prefix:
            continue
        table[(spec.method, spec.path)] = (spec, False)
        if spec.alias is not None:
            table[(spec.method, spec.alias)] = (spec, True)
    return table


_DISPATCH = _build_dispatch(ROUTES)
_PREFIX_ROUTES: "tuple[RouteSpec, ...]" = tuple(
    spec for spec in ROUTES if spec.prefix
)


def reload_from_registry(
    engine: NCEngine,
    registry,
    *,
    retain: "int | None" = None,
    lock: "threading.Lock | None" = None,
) -> dict:
    """Swap ``engine`` onto the registry's newest version, if newer.

    The one reload path shared by ``POST /v1/admin/reload`` and the
    :class:`RegistryPoller`: refresh the manifest, compare the latest
    version against the engine's pin, and — only when the registry moved
    forward — open the new file and
    :meth:`~repro.service.engine.NCEngine.swap_snapshot` onto it. With
    ``retain`` set, drained-out versions beyond the newest ``retain``
    are garbage-collected afterwards (the version still draining is kept
    until a later reload finds it drained). Returns the JSON-ready
    outcome dict; raises
    :class:`~repro.disk.registry.RegistryError` for a broken registry
    and ``ValueError`` for a backwards registry.
    """
    from repro.disk import open_snapshot_view

    with lock if lock is not None else threading.Lock():
        registry.refresh()
        latest = registry.latest()
        if latest is None:
            return {"swapped": False, "reason": "registry is empty"}
        current = engine.graph.version
        if latest.version <= current:
            return {
                "swapped": False,
                "version": current,
                "latest_published": latest.version,
            }
        view = open_snapshot_view(latest.path)
        try:
            outcome = engine.swap_snapshot(view)
        except BaseException:
            view.close()
            raise
        if not outcome.swapped:  # pragma: no cover - raced reload
            view.close()
        # retain < 1 is rejected at the CLI; guard here too so a
        # misconfigured embedder cannot turn a *successful* swap into a
        # reported failure by raising inside post-swap GC.
        if retain is not None and retain >= 1 and outcome.swapped:
            stats = engine.stats()
            keep = {outcome.new_version, *stats.draining_versions}
            registry.gc(retain=retain, keep=keep)
        if outcome.swapped:
            log_event(
                "snapshot_swap",
                old_version=outcome.old_version,
                new_version=outcome.new_version,
                file=latest.file,
            )
        return {
            "swapped": outcome.swapped,
            "old_version": outcome.old_version,
            "new_version": outcome.new_version,
            "file": latest.file,
        }


def run_ingest_merge(server, appended_at: "float | None" = None) -> dict:
    """Fold pending delta runs into a fresh version and adopt it.

    The merge half of live ingest, shared by the request handler's
    background thread and the synchronous ``?wait=1`` path: serialize on
    the server's ``ingest_lock``, fold every pending run
    (:meth:`~repro.disk.registry.SnapshotRegistry.merge_pending`), then
    hot-swap through the same :func:`reload_from_registry` path as
    ``POST /v1/admin/reload``. Updates the ingest-lag histogram (durable
    append → engine adoption) and the delta-depth gauge. Returns a
    JSON-ready outcome; no-op (``{"merged": None}``) when another merge
    already drained the log.
    """
    engine = server.engine
    registry = server.registry
    with server.ingest_lock:
        entry = registry.merge_pending()
        outcome = None
        if entry is not None:
            outcome = reload_from_registry(
                engine,
                registry,
                retain=server.retain,
                lock=server.reload_lock,
            )
        bundle = getattr(engine, "metrics", None)
        if bundle is not None:
            bundle.delta_depth.set(float(len(registry.pending_runs())))
            if entry is not None and appended_at is not None:
                bundle.ingest_lag.observe(
                    max(0.0, time.perf_counter() - appended_at)
                )
        if entry is not None:
            log_event(
                "ingest_merged",
                version=entry.version,
                base=entry.base,
                deltas=len(entry.deltas),
                swapped=bool(outcome and outcome.get("swapped")),
            )
        return {
            "merged_version": entry.version if entry is not None else None,
            "swap": outcome,
        }


def _ingest_merge_worker(server, appended_at: float) -> None:
    """Background-thread wrapper: a failed merge must not kill serving."""
    try:
        run_ingest_merge(server, appended_at)
    except Exception as error:  # noqa: BLE001 - keep serving on old version
        bundle = getattr(server.engine, "metrics", None)
        if bundle is not None:
            bundle.ingest_batches.inc(status="failed")
        log_event("ingest_merge_failed", error=repr(error))


class RegistryPoller(threading.Thread):
    """Watch a registry manifest and hot-swap when it advances.

    The optional push-free deployment mode of ``repro serve
    --snapshot-dir --poll-interval N``: every ``interval`` seconds the
    manifest's ``(mtime, size)`` token is compared; on change the
    poller runs the same :func:`reload_from_registry` path as
    ``POST /v1/admin/reload``. Reload failures are logged to stderr and
    retried on the next tick (a half-published registry heals itself).
    """

    def __init__(
        self,
        engine: NCEngine,
        registry,
        *,
        interval: float = 5.0,
        retain: "int | None" = None,
        lock: "threading.Lock | None" = None,
    ) -> None:
        super().__init__(name="nc-registry-poller", daemon=True)
        if interval <= 0:
            raise ValueError(f"poll interval must be > 0, got {interval}")
        self.engine = engine
        self.registry = registry
        self.interval = interval
        self.retain = retain
        self._lock = lock
        self._halt = threading.Event()
        self._token = registry.mtime_token()
        #: Reloads that swapped, for tests and ``/stats`` debugging.
        self.swapped = 0

    def run(self) -> None:
        """Poll until :meth:`stop`; swallow (and log) reload failures."""
        while not self._halt.wait(self.interval):
            token = self.registry.mtime_token()
            if token == self._token:
                continue
            try:
                outcome = reload_from_registry(
                    self.engine,
                    self.registry,
                    retain=self.retain,
                    lock=self._lock,
                )
            except Exception as error:  # noqa: BLE001 - keep serving
                # Token deliberately NOT advanced: a transient failure
                # (unreadable manifest, fd pressure) is retried on the
                # next tick instead of being skipped forever.
                log_event("registry_poll_failed", error=repr(error))
                continue
            self._token = token
            if outcome.get("swapped"):
                self.swapped += 1
                log_event(
                    "registry_poll_swapped",
                    old_version=outcome["old_version"],
                    new_version=outcome["new_version"],
                )

    def stop(self, *, timeout: float = 5.0) -> None:
        """Stop polling and join the thread."""
        self._halt.set()
        self.join(timeout=timeout)


def outcome_to_json(outcome: SearchOutcome, graph: KnowledgeGraph) -> dict:
    """The wire shape of one served search."""
    result = outcome.result
    return {
        "query": [graph.node_name(n) for n in result.query],
        "graph_version": outcome.graph_version,
        "cached": outcome.cached,
        "coalesced": outcome.coalesced,
        "context": {
            "algorithm": result.context.algorithm,
            "size": len(result.context),
        },
        "candidates_evaluated": len(result.results),
        "notable": [
            {
                "label": item.label,
                "score": item.score,
                "channel": item.channel,
                "p_value": item.p_value,
                "explanation": item.explanation(graph),
            }
            for item in result.notable
        ],
        "elapsed": {
            "context_s": result.elapsed_context,
            "discrimination_s": result.elapsed_discrimination,
            "request_s": outcome.elapsed_seconds,
        },
    }


class NCServiceServer(ThreadingHTTPServer):
    """A threading HTTP server owning one engine.

    ``registry`` (a :class:`~repro.disk.registry.SnapshotRegistry`)
    enables the ``POST /v1/admin/reload`` hot-swap endpoint; ``retain``
    is the registry's GC knob applied after each successful swap.
    ``reload_lock`` serializes handler- and poller-initiated reloads.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        engine: NCEngine,
        *,
        registry=None,
        retain: "int | None" = None,
    ) -> None:
        super().__init__(address, NCRequestHandler)
        self.engine = engine
        self.registry = registry
        self.retain = retain
        self.reload_lock = threading.Lock()
        #: Serializes merge+publish jobs so overlapping ingest batches
        #: fold into versions one at a time (appends stay concurrent).
        self.ingest_lock = threading.Lock()
        #: Live background merge threads (joined by tests / shutdown).
        self.ingest_threads: "list[threading.Thread]" = []


class NCRequestHandler(BaseHTTPRequestHandler):
    """Dispatches the :data:`ROUTES` table onto the engine."""

    server_version = "repro-nc-service/1.0"
    #: Silenced by default; ``repro serve --verbose`` re-enables it.
    quiet = True

    # -- helpers -----------------------------------------------------------

    def _engine(self) -> NCEngine:
        return self.server.engine  # type: ignore[attr-defined]

    def _send_body(
        self,
        body: bytes,
        content_type: str,
        status: int = 200,
        extra_headers: "dict[str, str] | None" = None,
    ) -> None:
        """The one response writer: every route answers through here.

        Records the status for the HTTP metrics and — when the request
        arrived on a deprecated unprefixed alias — adds the
        ``Deprecation: true`` header without touching the body, which is
        what keeps alias responses byte-identical to their ``/v1/``
        counterparts.
        """
        self._response_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace = getattr(self, "_trace", None)
        if trace is not None:
            self.send_header("X-Trace-Id", trace.trace_id)
        if getattr(self, "_deprecated_alias", False):
            self.send_header("Deprecation", "true")
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        payload: dict,
        status: int = 200,
        extra_headers: "dict[str, str] | None" = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_body(
            body,
            "application/json; charset=utf-8",
            status,
            extra_headers,
        )

    def _send_error_json(
        self,
        status: int,
        message: str,
        *,
        code: "str | None" = None,
        retry_after: "float | None" = None,
    ) -> None:
        """One JSON error shape for every failure: ``{"error", "code"}``.

        ``code`` is the stable machine-readable identifier (defaulted
        from the status via :data:`DEFAULT_ERROR_CODES`). Every 503
        carries a ``Retry-After`` header — shedding without telling
        clients when to come back just moves the retry storm earlier.
        """
        if code is None:
            code = DEFAULT_ERROR_CODES.get(status, "error")
        headers: "dict[str, str]" = {}
        if status == 503 and retry_after is None:
            retry_after = 1.0
        if retry_after is not None:
            headers["Retry-After"] = str(max(1, round(retry_after)))
        self._send_json(
            {"error": message, "code": code},
            status=status,
            extra_headers=headers or None,
        )

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Per-request stderr logging, silenced unless ``--verbose``."""
        if not self.quiet:  # pragma: no cover - exercised only with --verbose
            super().log_message(format, *args)

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        """Route one request through the table; record HTTP metrics.

        Exact-path routes resolve through :data:`_DISPATCH`; prefix
        routes (the trace-detail endpoint) are scanned as a fallback.
        The handler owns the request's root span: an inbound
        ``traceparent`` is adopted as the remote parent, the trace id
        is echoed via ``X-Trace-Id`` (:meth:`_send_body`), and the
        trace is finished — and retained when sampled, slow, or
        errored — after the response is written.
        """
        url = urlsplit(self.path)
        entry = _DISPATCH.get((method, url.path))
        if entry is None:
            for spec in _PREFIX_ROUTES:
                if spec.method == method and url.path.startswith(spec.path):
                    entry = (spec, False)
                    break
        self._deprecated_alias = entry is not None and entry[1]
        route_name = entry[0].name if entry is not None else "unknown"
        self._response_status = 0
        tracer = getattr(self._engine(), "tracer", None)
        self._trace = None
        if tracer is not None and tracer.enabled and entry is not None:
            inbound = parse_traceparent(self.headers.get("traceparent"))
            self._trace = tracer.begin(f"http.{route_name}", parent=inbound)
            if self._trace is not None:
                self._trace.root.set(method=method, path=url.path)
        started = time.perf_counter()
        try:
            if entry is None:
                self._send_error_json(404, f"unknown path {url.path!r}")
            else:
                getattr(self, entry[0].handler)(url)
        finally:
            status = self._response_status
            elapsed = time.perf_counter() - started
            trace, self._trace = self._trace, None
            bundle = getattr(self._engine(), "metrics", None)
            if bundle is not None:
                bundle.http_requests.inc(
                    route=route_name,
                    method=method,
                    status=str(status),
                )
                bundle.http_latency.observe(
                    elapsed,
                    route=route_name,
                    exemplar=(
                        {"trace_id": trace.trace_id}
                        if trace is not None
                        else None
                    ),
                )
            if trace is not None:
                trace.root.set(status=status)
                tracer.finish(trace, error=status >= 500)
            if get_log_format() == "json":
                log_event(
                    "http_request",
                    trace_id=trace.trace_id if trace is not None else None,
                    route=route_name,
                    method=method,
                    status=status,
                    latency_ms=round(elapsed * 1000.0, 3),
                )

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Dispatch GET routes (healthz, stats, metrics, search)."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Dispatch POST routes (search, admin/reload, admin/ingest)."""
        self._dispatch("POST")

    # -- route handlers ----------------------------------------------------

    def _handle_healthz(self, url) -> None:
        """``GET /v1/healthz``: liveness, provenance, and graph summary."""
        engine = self._engine()
        graph = engine.graph
        # "degraded" still answers 200: the engine is alive and
        # serving (cached + fallback paths) — load balancers should
        # keep routing; operators watch the status/reason fields.
        payload = dict(engine.health())
        version_id = engine.pinned_version
        payload.update(
            {
                "version_id": (
                    version_id if version_id is not None else graph.version
                ),
                "uptime_s": round(engine.uptime_s, 3),
                "snapshot_source": engine.snapshot_source,
                "graph": graph.name,
                "graph_version": graph.version,
                "nodes": graph.node_count,
                "edges": graph.edge_count,
                "executor": engine.executor,
                # surfaced so silent numba -> numpy degradation is
                # visible on the liveness probe, not just in metrics
                "kernel": kernel_status().as_dict(),
            }
        )
        self._send_json(payload)

    def _handle_stats(self, url) -> None:
        """``GET /v1/stats``: the engine's counter snapshot as JSON."""
        self._send_json(self._engine().stats().as_dict())

    def _handle_metrics(self, url) -> None:
        """``GET /v1/metrics``: Prometheus text exposition of the registry."""
        text = self._engine().metrics.registry.render()
        self._send_body(text.encode("utf-8"), metrics_mod.CONTENT_TYPE)

    def _handle_search_get(self, url) -> None:
        """``GET /v1/search``: query params → the shared search path."""
        raw = parse_qs(url.query)
        query = [
            part
            for value in raw.get("query", [])
            for part in value.split(",")
            if part
        ]
        params: dict = {"query": query}
        if "context_size" in raw:
            params["context_size"] = raw["context_size"][0]
        if "alpha" in raw:
            params["alpha"] = raw["alpha"][0]
        if "timeout_ms" in raw:
            params["timeout_ms"] = raw["timeout_ms"][0]
        self._run_search(params)

    def _handle_search_post(self, url) -> None:
        """``POST /v1/search``: JSON body → the shared search path."""
        try:
            length = int(self.headers.get("Content-Length", 0))
            params = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            self._send_error_json(400, "request body is not valid JSON")
            return
        if not isinstance(params, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return
        self._run_search(params)

    def _handle_admin_reload(self, url) -> None:
        """``POST /v1/admin/reload``: hot-swap onto the registry's newest
        version (no-op when nothing newer is published)."""
        registry = getattr(self.server, "registry", None)
        if registry is None:
            self._send_error_json(
                400,
                "no snapshot registry configured (serve with --snapshot-dir)",
            )
            return
        try:
            outcome = reload_from_registry(
                self._engine(),
                registry,
                retain=getattr(self.server, "retain", None),
                lock=getattr(self.server, "reload_lock", None),
            )
        except (ReproError, ValueError) as error:
            # broken manifest / missing file / non-monotonic registry
            self._send_error_json(500, str(error))
            return
        except RuntimeError as error:  # engine closed (server draining)
            self._send_error_json(503, str(error))
            return
        self._send_json(outcome)

    def _handle_admin_ingest(self, url) -> None:
        """``POST /v1/admin/ingest``: append a delta batch, merge, adopt.

        The append is synchronous — when the response leaves, the run
        file is durable and crash recovery will merge it. The merge +
        hot-swap run in a background thread (or inline with
        ``?wait=1``), so the write path never blocks the read path.
        """
        registry = getattr(self.server, "registry", None)
        if registry is None:
            self._send_error_json(
                400,
                "no snapshot registry configured (serve with --snapshot-dir)",
            )
            return
        from repro.disk.delta import parse_delta_lines

        engine = self._engine()
        bundle = getattr(engine, "metrics", None)
        raw = parse_qs(url.query)
        fmt = raw.get("format", ["nt"])[0]
        wait = raw.get("wait", ["0"])[0] not in ("", "0", "false")
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length).decode("utf-8")
        except (ValueError, UnicodeDecodeError):
            if bundle is not None:
                bundle.ingest_batches.inc(status="rejected")
            self._send_error_json(
                400, "request body is not valid UTF-8 text", code="bad_batch"
            )
            return
        try:
            ops = parse_delta_lines(body.splitlines(), fmt)
        except (ReproError, ValueError) as error:
            if bundle is not None:
                bundle.ingest_batches.inc(status="rejected")
            self._send_error_json(400, str(error), code="bad_batch")
            return
        appended_at = time.perf_counter()
        try:
            run = registry.append_delta(ops)
        except (ReproError, ValueError) as error:
            # empty registry, torn append (delta.append fault), bad names
            if bundle is not None:
                bundle.ingest_batches.inc(status="failed")
            self._send_error_json(500, str(error), code="ingest_failed")
            return
        if run is None:
            if bundle is not None:
                bundle.ingest_batches.inc(status="noop")
            self._send_json(
                {"accepted": False, "reason": "batch nets out to no change"}
            )
            return
        depth = len(registry.pending_runs())
        if bundle is not None:
            bundle.ingest_batches.inc(status="accepted")
            if run.adds:
                bundle.ingest_triples.inc(run.adds, op="add")
            if run.removes:
                bundle.ingest_triples.inc(run.removes, op="remove")
            bundle.delta_depth.set(float(depth))
        log_event(
            "ingest_append",
            run=run.file,
            base=run.base_version,
            adds=run.adds,
            removes=run.removes,
            pending=depth,
        )
        payload = {
            "accepted": True,
            "run": run.file,
            "base_version": run.base_version,
            "adds": run.adds,
            "removes": run.removes,
            "pending_runs": depth,
        }
        if wait:
            try:
                payload.update(run_ingest_merge(self.server, appended_at))
            except (ReproError, ValueError, RuntimeError) as error:
                # the run IS durable: recovery merges it on the next
                # ingest/reload, so report the merge failure honestly
                # without pretending the append failed too.
                if bundle is not None:
                    bundle.ingest_batches.inc(status="failed")
                self._send_error_json(500, str(error), code="merge_failed")
                return
            self._send_json(payload)
            return
        worker = threading.Thread(
            target=_ingest_merge_worker,
            args=(self.server, appended_at),
            name="nc-ingest-merge",
            daemon=True,
        )
        threads = self.server.ingest_threads  # type: ignore[attr-defined]
        threads[:] = [t for t in threads if t.is_alive()]
        threads.append(worker)
        worker.start()
        self._send_json(payload, status=202)

    def _handle_debug_traces(self, url) -> None:
        """``GET /v1/debug/traces``: recent retained-trace summaries."""
        raw = parse_qs(url.query)
        limit = 50
        if "limit" in raw:
            try:
                limit = int(raw["limit"][0])
            except (TypeError, ValueError):
                limit = -1
            if limit < 1:
                self._send_error_json(
                    400,
                    f"limit must be a positive integer, got {raw['limit'][0]!r}",
                )
                return
        tracer = self._engine().tracer
        self._send_json(
            {
                "traces": tracer.buffer.summaries(limit=limit),
                **tracer.stats(),
            }
        )

    def _handle_debug_trace(self, url) -> None:
        """``GET /v1/debug/traces/<id>``: one full span tree as JSON."""
        trace_id = url.path[len("/v1/debug/traces/"):]
        exported = self._engine().tracer.buffer.get(trace_id)
        if exported is None:
            self._send_error_json(
                404,
                f"no retained trace {trace_id!r} (buffer is bounded; "
                "only sampled, slow, or errored requests are kept)",
                code="trace_not_found",
            )
            return
        self._send_json({**exported, "tree": trace_tree(exported)})

    # -- search ------------------------------------------------------------

    def _run_search(self, params: dict) -> None:
        query = params.get("query")
        if isinstance(query, (str, int)):
            query = [query]
        if not isinstance(query, list) or not query:
            self._send_error_json(400, "missing or empty 'query'")
            return
        try:
            context_size = params.get("context_size")
            alpha = params.get("alpha")
            timeout_ms = params.get("timeout_ms")
            timeout = None
            if timeout_ms is not None:
                try:
                    timeout = float(timeout_ms) / 1000.0
                except (TypeError, ValueError):
                    timeout = -1.0  # rejected just below, same error shape
                if timeout <= 0:
                    self._send_error_json(
                        400,
                        f"timeout_ms must be a positive number, got {timeout_ms}",
                        code="invalid_timeout",
                    )
                    return
            outcome = self._engine().request(
                query,
                context_size=int(context_size) if context_size is not None else None,
                alpha=float(alpha) if alpha is not None else None,
                timeout=timeout,
                trace=getattr(self, "_trace", None),
            )
        except EngineSaturatedError as error:
            # admission control shed the request: bounded queueing beats
            # unbounded latency. Retry-After tells clients when.
            self._send_error_json(
                503,
                str(error),
                code="saturated",
                retry_after=getattr(error, "retry_after", 1.0),
            )
            return
        except DeadlineExceededError as error:
            self._send_error_json(504, str(error), code="deadline_exceeded")
            return
        except StaleSnapshotError as error:
            # the pinned snapshot was retired mid-request faster than the
            # engine could re-pin (retry budget exhausted) — transient
            self._send_error_json(
                503, str(error), code="snapshot_retired", retry_after=1.0
            )
            return
        except (ReproError, ValueError, TypeError) as error:
            # bad query contents (unknown entity, float ids, bad numbers)
            self._send_error_json(400, str(error))
            return
        except (RemoteQueryError, WorkerCrashError):
            # worker-backend failure: deterministic for this request, so
            # not a retry-me 503 — and the remote traceback stays out of
            # the response body (it is in the exception for server logs).
            self._send_error_json(
                500,
                "internal error while executing the query on a worker",
                code="worker_error",
            )
            return
        except RuntimeError as error:
            # engine closed (server draining) — tell the client to retry
            self._send_error_json(503, str(error))
            return
        self._send_json(outcome_to_json(outcome, self._engine().graph))


def create_server(
    engine: NCEngine,
    *,
    host: str = "127.0.0.1",
    port: int = 8099,
    registry=None,
    retain: "int | None" = None,
) -> NCServiceServer:
    """Bind an :class:`NCServiceServer` (``port=0`` picks a free port).

    Pass a :class:`~repro.disk.registry.SnapshotRegistry` as ``registry``
    to enable ``POST /v1/admin/reload`` (and ``retain`` for post-swap GC).
    """
    return NCServiceServer((host, port), engine, registry=registry, retain=retain)
