"""Tests for the multi-version snapshot registry (:mod:`repro.disk.registry`)."""

import json
import os

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.disk import (
    RegistryError,
    SnapshotRegistry,
    inspect_snapshot,
    is_snapshot_file,
    open_snapshot,
    save_graph_snapshot,
)
from repro.disk.registry import MANIFEST_NAME
from repro.graph.io import save_graph


@pytest.fixture()
def graph():
    return figure1_graph()


@pytest.fixture()
def registry(tmp_path):
    return SnapshotRegistry(tmp_path / "serving")


class TestPublish:
    def test_versions_are_monotonic(self, registry, graph):
        first = registry.publish_graph(graph)
        second = registry.publish_graph(graph)
        assert (first.version, second.version) == (1, 2)
        assert registry.latest().version == 2
        assert [e.version for e in registry.versions()] == [1, 2]

    def test_version_is_stamped_into_the_file(self, registry, graph):
        entry = registry.publish_graph(graph)
        second = registry.publish_graph(graph)
        with open_snapshot(entry.path) as snap:
            assert snap.header.version == entry.version
        with open_snapshot(second.path) as snap:
            assert snap.header.version == second.version

    def test_manifest_row_matches_the_graph(self, registry, graph):
        entry = registry.publish_graph(graph)
        assert entry.nodes == graph.node_count
        assert entry.edges == graph.edge_count
        assert entry.graph_name == graph.name
        assert entry.bytes == os.path.getsize(entry.path)
        assert os.path.basename(entry.path) == entry.file == "v000001.snap"

    def test_publish_existing_snapshot_file_restamps_version(
        self, registry, graph, tmp_path
    ):
        plain = tmp_path / "plain.snap"
        save_graph_snapshot(graph, plain)
        assert is_snapshot_file(plain)
        entry = registry.publish(plain)
        assert entry.version == 1
        with open_snapshot(entry.path) as snap:
            assert snap.header.version == 1
            assert snap.compiled.edge_count == graph.edge_count
            assert snap.transition() is not None  # blocks carried over

    def test_publish_dump_streams_through_the_ingester(
        self, registry, graph, tmp_path
    ):
        dump = tmp_path / "graph.nt"
        save_graph(graph, dump)
        entry = registry.publish(dump)
        assert entry.version == 1
        assert entry.nodes == graph.node_count
        assert entry.edges == graph.edge_count
        with open_snapshot(entry.path) as snap:
            assert snap.header.version == 1

    def test_publish_missing_source_raises(self, registry, tmp_path):
        with pytest.raises(RegistryError, match="does not exist"):
            registry.publish(tmp_path / "nope.nt")

    def test_registry_round_trips_identical_results(self, registry, graph):
        """A published version serves exactly what the live graph serves."""
        from repro.service.engine import NCEngine

        entry = registry.publish_graph(graph)
        view = registry.open_view(entry.version)
        with NCEngine(graph, context_size=3, seed=7) as live_engine, NCEngine(
            view, context_size=3, seed=7
        ) as served_engine:
            live = live_engine.search([1, 2])
            served = served_engine.search([1, 2])
        assert [(i.label, i.score) for i in live.results] == [
            (i.label, i.score) for i in served.results
        ]


class TestManifest:
    def test_reload_from_disk(self, registry, graph, tmp_path):
        registry.publish_graph(graph)
        registry.publish_graph(graph)
        reloaded = SnapshotRegistry(registry.directory, create=False)
        assert [e.version for e in reloaded.versions()] == [1, 2]
        assert reloaded.next_version() == 3

    def test_orphan_file_never_reuses_its_id(self, registry, graph):
        """A crash between file write and manifest write must not collide."""
        entry = registry.publish_graph(graph)
        # Simulate the crash: file v2 exists but the manifest never saw it.
        orphan = os.path.join(registry.directory, "v000002.snap")
        save_graph_snapshot(graph, orphan)
        assert registry.next_version() == 3
        new = registry.publish_graph(graph)
        assert new.version == 3
        assert entry.version == 1

    def test_corrupt_manifest_raises(self, registry, graph):
        registry.publish_graph(graph)
        with open(registry.manifest_path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        with pytest.raises(RegistryError, match="unreadable manifest"):
            SnapshotRegistry(registry.directory)

    def test_unsupported_manifest_format_raises(self, registry, graph):
        registry.publish_graph(graph)
        with open(registry.manifest_path, "w", encoding="utf-8") as handle:
            json.dump({"format": 99, "versions": []}, handle)
        with pytest.raises(RegistryError, match="unsupported manifest format"):
            SnapshotRegistry(registry.directory)

    def test_mtime_token_moves_on_publish(self, registry, graph):
        empty = registry.mtime_token()
        assert empty == (0, 0)
        registry.publish_graph(graph)
        first = registry.mtime_token()
        assert first != empty

    def test_empty_open_view_raises(self, registry):
        with pytest.raises(RegistryError, match="empty"):
            registry.open_view()


class TestGC:
    def test_retention_keeps_newest(self, registry, graph):
        for _ in range(4):
            registry.publish_graph(graph)
        removed = registry.gc(retain=2)
        assert [e.version for e in removed] == [1, 2]
        assert [e.version for e in registry.versions()] == [3, 4]
        assert sorted(
            name for name in os.listdir(registry.directory) if name.endswith(".snap")
        ) == ["v000003.snap", "v000004.snap"]

    def test_keep_protects_draining_versions(self, registry, graph):
        for _ in range(3):
            registry.publish_graph(graph)
        removed = registry.gc(retain=1, keep={1})
        assert [e.version for e in removed] == [2]
        assert [e.version for e in registry.versions()] == [1, 3]

    def test_gc_never_renumbers(self, registry, graph):
        for _ in range(3):
            registry.publish_graph(graph)
        registry.gc(retain=1)
        assert registry.next_version() == 4

    def test_retain_must_be_positive(self, registry):
        with pytest.raises(ValueError):
            registry.gc(retain=0)


class TestDeltaChainGC:
    """Regression: GC must treat delta-chain bases as retained roots."""

    @staticmethod
    def _chain(registry, graph, merges):
        registry.publish_graph(graph)
        entries = []
        for index in range(merges):
            registry.append_delta(
                [("+", (f"delta_n{index}", "delta_rel", f"delta_m{index}"))]
            )
            entries.append(registry.merge_pending())
        return entries

    @staticmethod
    def _delta_files(registry):
        return sorted(
            name
            for name in os.listdir(registry.directory)
            if name.endswith(".delta")
        )

    def test_gc_keeps_the_chain_base_alive(self, registry, graph):
        """retain=1 keeps the v3 tip, its v1 base, and every run file."""
        self._chain(registry, graph, merges=2)
        removed = registry.gc(retain=1)
        assert [e.version for e in removed] == [2]
        assert [e.version for e in registry.versions()] == [1, 3]
        assert os.path.exists(
            os.path.join(registry.directory, "v000001.snap")
        )
        assert self._delta_files(registry) == [
            "v000001-d0000.delta",
            "v000001-d0001.delta",
        ]
        # The surviving chain still opens end to end.
        view = registry.open_view()
        view.close()

    def test_gc_keeps_run_files_of_the_active_chain(self, registry, graph):
        """Pending (not yet merged) runs survive GC with their base."""
        registry.publish_graph(graph)
        registry.publish_graph(graph)
        registry.append_delta([("+", ("x", "r", "y"))])
        registry.gc(retain=1)
        assert [e.version for e in registry.versions()] == [2]
        assert self._delta_files(registry) == ["v000002-d0000.delta"]
        assert len(registry.pending_runs()) == 1

    def test_compaction_releases_base_and_runs(self, registry, graph):
        """After compact, nothing anchors the old chain: GC drops it all."""
        self._chain(registry, graph, merges=2)
        compacted = registry.compact()
        assert compacted.base is None and compacted.deltas == ()
        removed = registry.gc(retain=1)
        assert [e.version for e in removed] == [1, 2, 3]
        assert [e.version for e in registry.versions()] == [compacted.version]
        assert self._delta_files(registry) == []

    def test_chain_survives_a_registry_reload(self, registry, graph):
        """Chain provenance and pending runs round-trip the manifest."""
        [_, tip] = self._chain(registry, graph, merges=2)
        registry.append_delta([("+", ("late_n", "delta_rel", "late_m"))])
        reloaded = SnapshotRegistry(registry.directory, create=False)
        latest = reloaded.latest()
        assert latest.version == tip.version
        assert latest.base == 1
        assert latest.deltas == tip.deltas
        assert [run.file for run in reloaded.pending_runs()] == [
            "v000001-d0002.delta"
        ]
        merged = reloaded.merge_pending()
        assert merged.base == 1
        assert len(merged.deltas) == 3


class TestInspect:
    def test_inspect_reports_the_stored_header(self, registry, graph):
        entry = registry.publish_graph(graph)
        info = inspect_snapshot(entry.path)
        assert info["version"] == entry.version
        assert info["nodes"] == graph.node_count
        assert info["edges"] == graph.edge_count
        assert info["labels"] == entry.labels
        assert info["has_transition"] is True
        assert info["file_bytes"] == entry.bytes
        assert info["node_name_table_bytes"] > 0
        block_names = {block["name"] for block in info["blocks"]}
        assert "indptr" in block_names and "transition_data" in block_names

    def test_inspect_without_transition(self, registry, graph):
        entry = registry.publish_graph(graph, include_transition=False)
        info = inspect_snapshot(entry.path)
        assert info["has_transition"] is False

    def test_is_snapshot_file_rejects_other_files(self, registry, graph):
        registry.publish_graph(graph)
        assert not is_snapshot_file(os.path.join(registry.directory, MANIFEST_NAME))
        assert not is_snapshot_file(os.path.join(registry.directory, "absent"))
