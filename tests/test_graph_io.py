"""Round-trip tests for graph persistence."""

import pytest

from repro.graph.io import load_graph, save_graph


class TestRoundTrip:
    def test_save_load_preserves_structure(self, toy_graph, tmp_path):
        path = str(tmp_path / "toy.nt")
        written = save_graph(toy_graph, path)
        assert written == toy_graph.edge_count // 2  # forward edges only

        loaded = load_graph(path)
        assert loaded.node_count == toy_graph.node_count
        assert loaded.edge_count == toy_graph.edge_count
        for edge in toy_graph.edges():
            assert loaded.has_edge(
                toy_graph.node_name(edge.source),
                edge.label,
                toy_graph.node_name(edge.target),
            )

    def test_label_statistics_survive(self, toy_graph, tmp_path):
        path = str(tmp_path / "toy.nt")
        save_graph(toy_graph, path)
        loaded = load_graph(path)
        for label in toy_graph.edge_labels:
            assert loaded.label_frequency(label) == pytest.approx(
                toy_graph.label_frequency(label)
            )

    def test_load_without_closure(self, toy_graph, tmp_path):
        path = str(tmp_path / "toy.nt")
        written = save_graph(toy_graph, path)
        loaded = load_graph(path, add_inverse=False)
        assert loaded.edge_count == written

    def test_custom_name(self, toy_graph, tmp_path):
        path = str(tmp_path / "toy.nt")
        save_graph(toy_graph, path)
        loaded = load_graph(path, name="restored")
        assert loaded.name == "restored"

    def test_synthetic_yago_round_trip(self, tmp_path):
        from repro.datasets import synthetic_yago

        graph = synthetic_yago(scale=0.3, seed=5)
        path = str(tmp_path / "yago.nt")
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.node_count == graph.node_count
        assert loaded.edge_count == graph.edge_count
        assert loaded.has_edge("Angela_Merkel", "isLeaderOf", "Germany")
