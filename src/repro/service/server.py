"""Stdlib HTTP JSON front-end for :class:`~repro.service.engine.NCEngine`.

Endpoints
---------

``GET /healthz``
    Liveness + graph summary::

        {"status": "ok", "graph_version": 3, "nodes": 2188, "edges": 15466}

``GET /stats``
    Engine counters (requests, cache hits, coalescing, LRU stats).

``GET /search?query=Angela_Merkel&query=Barack_Obama[&context_size=50][&alpha=0.05]``
``POST /search`` with body ``{"query": [...], "context_size": 50, "alpha": 0.05}``
    Run FindNC and return the notable characteristics. ``query`` accepts
    node names (exact or fuzzy) or integer node ids; the GET form also
    accepts one comma-separated ``query`` parameter.

Built on :class:`http.server.ThreadingHTTPServer` (one thread per
connection, stdlib-only); actual query concurrency is bounded by the
engine's executor, and identical concurrent requests coalesce there.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import ReproError
from repro.graph.model import KnowledgeGraph
from repro.service.engine import NCEngine, SearchOutcome
from repro.service.workers import RemoteQueryError, WorkerCrashError


def outcome_to_json(outcome: SearchOutcome, graph: KnowledgeGraph) -> dict:
    """The wire shape of one served search."""
    result = outcome.result
    return {
        "query": [graph.node_name(n) for n in result.query],
        "graph_version": outcome.graph_version,
        "cached": outcome.cached,
        "coalesced": outcome.coalesced,
        "context": {
            "algorithm": result.context.algorithm,
            "size": len(result.context),
        },
        "candidates_evaluated": len(result.results),
        "notable": [
            {
                "label": item.label,
                "score": item.score,
                "channel": item.channel,
                "p_value": item.p_value,
                "explanation": item.explanation(graph),
            }
            for item in result.notable
        ],
        "elapsed": {
            "context_s": result.elapsed_context,
            "discrimination_s": result.elapsed_discrimination,
            "request_s": outcome.elapsed_seconds,
        },
    }


class NCServiceServer(ThreadingHTTPServer):
    """A threading HTTP server owning one engine."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], engine: NCEngine) -> None:
        super().__init__(address, NCRequestHandler)
        self.engine = engine


class NCRequestHandler(BaseHTTPRequestHandler):
    """Routes ``/search``, ``/healthz`` and ``/stats`` onto the engine."""

    server_version = "repro-nc-service/1.0"
    #: Silenced by default; ``repro serve --verbose`` re-enables it.
    quiet = True

    # -- helpers -----------------------------------------------------------

    def _engine(self) -> NCEngine:
        return self.server.engine  # type: ignore[attr-defined]

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Per-request stderr logging, silenced unless ``--verbose``."""
        if not self.quiet:  # pragma: no cover - exercised only with --verbose
            super().log_message(format, *args)

    # -- search ------------------------------------------------------------

    def _run_search(self, params: dict) -> None:
        query = params.get("query")
        if isinstance(query, (str, int)):
            query = [query]
        if not isinstance(query, list) or not query:
            self._send_error_json(400, "missing or empty 'query'")
            return
        try:
            context_size = params.get("context_size")
            alpha = params.get("alpha")
            outcome = self._engine().request(
                query,
                context_size=int(context_size) if context_size is not None else None,
                alpha=float(alpha) if alpha is not None else None,
            )
        except (ReproError, ValueError, TypeError) as error:
            # bad query contents (unknown entity, float ids, bad numbers)
            self._send_error_json(400, str(error))
            return
        except (RemoteQueryError, WorkerCrashError):
            # worker-backend failure: deterministic for this request, so
            # not a retry-me 503 — and the remote traceback stays out of
            # the response body (it is in the exception for server logs).
            self._send_error_json(
                500, "internal error while executing the query on a worker"
            )
            return
        except RuntimeError as error:
            # engine closed (server draining) — tell the client to retry
            self._send_error_json(503, str(error))
            return
        self._send_json(outcome_to_json(outcome, self._engine().graph))

    # -- HTTP verbs --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Serve ``/healthz``, ``/stats`` and the GET form of ``/search``."""
        url = urlsplit(self.path)
        if url.path == "/healthz":
            engine = self._engine()
            graph = engine.graph
            self._send_json(
                {
                    "status": "ok",
                    "graph": graph.name,
                    "graph_version": graph.version,
                    "nodes": graph.node_count,
                    "edges": graph.edge_count,
                    "executor": engine.executor,
                }
            )
        elif url.path == "/stats":
            self._send_json(self._engine().stats().as_dict())
        elif url.path == "/search":
            raw = parse_qs(url.query)
            query = [
                part
                for value in raw.get("query", [])
                for part in value.split(",")
                if part
            ]
            params: dict = {"query": query}
            if "context_size" in raw:
                params["context_size"] = raw["context_size"][0]
            if "alpha" in raw:
                params["alpha"] = raw["alpha"][0]
            self._run_search(params)
        else:
            self._send_error_json(404, f"unknown path {url.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """Serve the JSON-body form of ``/search``."""
        url = urlsplit(self.path)
        if url.path != "/search":
            self._send_error_json(404, f"unknown path {url.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            params = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            self._send_error_json(400, "request body is not valid JSON")
            return
        if not isinstance(params, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return
        self._run_search(params)


def create_server(
    engine: NCEngine, *, host: str = "127.0.0.1", port: int = 8099
) -> NCServiceServer:
    """Bind an :class:`NCServiceServer` (``port=0`` picks a free port)."""
    return NCServiceServer((host, port), engine)
