"""Future-work extensions (Section 6): complex patterns and correlations.

The paper's conclusion sketches two extensions, both implemented in
:mod:`repro.core.extensions`:

* **composite characteristics** — two-hop path patterns such as
  ``graduatedFrom -> isLocatedIn`` ("the country of one's university"),
  scored with the same multinomial machinery;
* **attribute correlations** — existence co-occurrence of label pairs,
  e.g. whether query members who win prizes also own companies more often
  than their context does.

Run:  python examples/complex_patterns.py
"""

from __future__ import annotations

from repro import ContextRW
from repro.core.extensions import CompositeCharacteristicFinder, CorrelationFinder
from repro.datasets import ACTORS_DOMAIN, load_dataset

QUERY = list(ACTORS_DOMAIN.entities[:5])


def main() -> None:
    graph = load_dataset("yago", scale=2.0)
    query = [graph.node_id(name) for name in QUERY]
    context = ContextRW(graph, rng=11).select(query, 100)

    print(f"Query:   {QUERY}")
    print(f"Context: {context.names(graph, 6)} ...\n")

    print("Composite (two-hop) characteristics, most notable first:")
    composite = CompositeCharacteristicFinder(graph, max_patterns=25, rng=11)
    for result in composite.run(query, context.nodes)[:8]:
        p = result.min_p_value if result.min_p_value is not None else 1.0
        verdict = "NOTABLE" if result.notable else "expected"
        print(f"  {result.label:<36} p={p:6.4f} -> {verdict}")

    print("\nAttribute correlations (existence co-occurrence), lowest p first:")
    correlations = CorrelationFinder(graph, max_pairs=30, rng=11)
    for result in correlations.run(query, context.nodes)[:8]:
        print(
            f"  {result.label:<36} p={result.p_value:6.4f} "
            f"query joint {result.query_joint_rate():.2f} vs "
            f"context {result.context_joint_rate():.2f}"
        )


if __name__ == "__main__":
    main()
