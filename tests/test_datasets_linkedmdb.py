"""Unit tests for the synthetic LinkedMDB generator."""

import pytest

from repro.datasets.linkedmdb import (
    FILM_ACTOR,
    FILM_DIRECTOR,
    FILM_TYPE,
    PERSON_TYPES,
    SyntheticLinkedMdb,
    synthetic_linkedmdb,
)
from repro.datasets.seeds import ACTORS_DOMAIN
from repro.graph.hierarchy import TypeHierarchy


class TestShape:
    def test_deterministic(self):
        a = synthetic_linkedmdb(scale=0.3, seed=4)
        b = synthetic_linkedmdb(scale=0.3, seed=4)
        assert a.node_count == b.node_count
        assert a.edge_count == b.edge_count

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            SyntheticLinkedMdb(scale=-1)

    def test_film_subject_orientation(self, linkedmdb_small):
        # actor edges run film -> person.
        g = linkedmdb_small
        for edge in g.edges(FILM_ACTOR):
            assert FILM_TYPE in g.types_of(edge.source)
            break
        else:
            pytest.fail("no actor edges generated")

    def test_all_roles_populated(self, linkedmdb_small):
        hierarchy = TypeHierarchy(linkedmdb_small)
        for type_name in PERSON_TYPES.values():
            assert len(hierarchy.instances(type_name, transitive=False)) >= 1, type_name

    def test_films_have_metadata(self, linkedmdb_small):
        g = linkedmdb_small
        films = list(TypeHierarchy(g).instances(FILM_TYPE, transitive=False))
        assert films
        with_genre = sum(1 for f in films if g.out_degree(f, "genre") > 0)
        assert with_genre == len(films)


class TestSeedEmbedding:
    def test_query_actors_present_with_credits(self, linkedmdb_small):
        g = linkedmdb_small
        for name in ACTORS_DOMAIN.entities:
            assert g.has_node(name), name
            credits = g.in_degree(g.node_id(name))  # film -> person edges
            assert credits >= 3, name

    def test_pitt_in_oceans_eleven(self, linkedmdb_small):
        assert linkedmdb_small.has_edge("Oceans_Eleven", FILM_ACTOR, "Brad_Pitt")

    def test_spielberg_directs(self, linkedmdb_small):
        assert linkedmdb_small.has_edge("Jaws", FILM_DIRECTOR, "Steven_Spielberg")

    def test_politicians_absent(self, linkedmdb_small):
        assert not linkedmdb_small.has_node("Angela_Merkel")
