"""Unit tests for the BGP query evaluator."""

import pytest

from repro.store.query import BGPQuery, TriplePattern, Variable
from repro.store.terms import IRI, Literal
from repro.store.triples import Triple
from repro.store.triplestore import TripleStore


@pytest.fixture()
def store():
    st = TripleStore()
    facts = [
        ("merkel", "type", "politician"),
        ("obama", "type", "politician"),
        ("pitt", "type", "actor"),
        ("merkel", "leaderOf", "germany"),
        ("obama", "leaderOf", "usa"),
        ("merkel", "studied", "physics"),
        ("obama", "studied", "law"),
        ("pitt", "actedIn", "troy"),
    ]
    for s, p, o in facts:
        st.add(Triple.of(s, p, o))
    return st


class TestVariable:
    def test_str(self):
        assert str(Variable("x")) == "?x"

    def test_rejects_question_mark_prefix(self):
        with pytest.raises(ValueError):
            Variable("?x")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Variable("")


class TestTriplePattern:
    def test_of_parses_variables(self):
        pattern = TriplePattern.of("?who", "leaderOf", "?where")
        assert pattern.variables() == {"who", "where"}

    def test_bind_substitutes(self):
        pattern = TriplePattern.of("?who", "leaderOf", "?where")
        bound = pattern.bind({"who": IRI("merkel")})
        assert bound.subject == IRI("merkel")
        assert isinstance(bound.object, Variable)


class TestBGPQuery:
    def test_single_pattern(self, store):
        query = BGPQuery([TriplePattern.of("?who", "leaderOf", "?where")])
        bindings = list(query.evaluate(store))
        assert len(bindings) == 2
        pairs = {(str(b["who"]), str(b["where"])) for b in bindings}
        assert pairs == {("merkel", "germany"), ("obama", "usa")}

    def test_join_on_shared_variable(self, store):
        query = BGPQuery(
            [
                TriplePattern.of("?who", "type", "politician"),
                TriplePattern.of("?who", "studied", "?field"),
            ]
        )
        fields = {str(b["field"]) for b in query.evaluate(store)}
        assert fields == {"physics", "law"}

    def test_three_way_join(self, store):
        query = BGPQuery(
            [
                TriplePattern.of("?who", "type", "?t"),
                TriplePattern.of("?who", "leaderOf", "?where"),
                TriplePattern.of("?who", "studied", "physics"),
            ]
        )
        bindings = list(query.evaluate(store))
        assert len(bindings) == 1
        assert str(bindings[0]["who"]) == "merkel"
        assert str(bindings[0]["t"]) == "politician"

    def test_no_results(self, store):
        query = BGPQuery(
            [
                TriplePattern.of("?who", "type", "actor"),
                TriplePattern.of("?who", "leaderOf", "?where"),
            ]
        )
        assert list(query.evaluate(store)) == []

    def test_fully_bound_pattern_acts_as_filter(self, store):
        query = BGPQuery(
            [
                TriplePattern.of("merkel", "leaderOf", "germany"),
                TriplePattern.of("?who", "type", "actor"),
            ]
        )
        bindings = list(query.evaluate(store))
        assert len(bindings) == 1
        assert str(bindings[0]["who"]) == "pitt"

    def test_variable_predicate(self, store):
        query = BGPQuery([TriplePattern.of("pitt", "?rel", "?obj")])
        relations = {str(b["rel"]) for b in query.evaluate(store)}
        assert relations == {"type", "actedIn"}

    def test_same_variable_in_two_positions(self, store):
        store.add(Triple.of("narcissus", "admires", "narcissus"))
        query = BGPQuery([TriplePattern.of("?x", "admires", "?x")])
        bindings = list(query.evaluate(store))
        assert len(bindings) == 1
        assert str(bindings[0]["x"]) == "narcissus"

    def test_literal_bound_to_subject_position_matches_nothing(self, store):
        store.add(Triple(IRI("merkel"), IRI("born"), Literal("1954")))
        query = BGPQuery(
            [
                TriplePattern.of("merkel", "born", "?when"),
                TriplePattern.of("?when", "type", "?t"),  # literal subject: dead
            ]
        )
        assert list(query.evaluate(store)) == []

    def test_empty_pattern_list_rejected(self):
        with pytest.raises(ValueError):
            BGPQuery([])

    def test_variables_union(self, store):
        query = BGPQuery(
            [
                TriplePattern.of("?a", "type", "?b"),
                TriplePattern.of("?a", "studied", "?c"),
            ]
        )
        assert query.variables() == {"a", "b", "c"}
