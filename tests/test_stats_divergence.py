"""Unit tests for KL / JS divergence."""

import math

import pytest

from repro.errors import StatisticsError
from repro.stats.divergence import js_divergence, kl_divergence


class TestKL:
    def test_zero_for_identical(self):
        assert kl_divergence([0.5, 0.5], [0.5, 0.5], smoothing=0) == pytest.approx(0.0)

    def test_known_value(self):
        # KL((1,0) || (0.5,0.5)) = log 2
        assert kl_divergence([1.0, 0.0], [0.5, 0.5], smoothing=0) == pytest.approx(
            math.log(2)
        )

    def test_asymmetry(self):
        p, q = [0.8, 0.2], [0.3, 0.7]
        assert kl_divergence(p, q, smoothing=0) != pytest.approx(
            kl_divergence(q, p, smoothing=0)
        )

    def test_counts_are_normalized(self):
        assert kl_divergence([8, 2], [3, 7], smoothing=0) == pytest.approx(
            kl_divergence([0.8, 0.2], [0.3, 0.7], smoothing=0)
        )

    def test_undefined_without_smoothing(self):
        with pytest.raises(StatisticsError):
            kl_divergence([0.5, 0.5], [1.0, 0.0], smoothing=0)

    def test_smoothing_makes_it_total(self):
        value = kl_divergence([0.5, 0.5], [1.0, 0.0], smoothing=0.1)
        assert math.isfinite(value) and value > 0

    def test_non_negative(self):
        assert kl_divergence([0.1, 0.9], [0.7, 0.3], smoothing=0) >= 0

    def test_shape_mismatch(self):
        with pytest.raises(StatisticsError):
            kl_divergence([0.5, 0.5], [1.0])

    def test_negative_input_rejected(self):
        with pytest.raises(StatisticsError):
            kl_divergence([-0.5, 1.5], [0.5, 0.5])

    def test_negative_smoothing_rejected(self):
        with pytest.raises(StatisticsError):
            kl_divergence([0.5, 0.5], [0.5, 0.5], smoothing=-1)


class TestJS:
    def test_zero_for_identical(self):
        assert js_divergence([0.3, 0.7], [0.3, 0.7]) == pytest.approx(0.0)

    def test_symmetric(self):
        p, q = [0.9, 0.1], [0.2, 0.8]
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))

    def test_bounded_by_log2(self):
        assert js_divergence([1.0, 0.0], [0.0, 1.0]) == pytest.approx(math.log(2))

    def test_defined_with_zeros(self):
        value = js_divergence([1.0, 0.0], [0.5, 0.5])
        assert 0 < value < math.log(2)
