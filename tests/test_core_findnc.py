"""Unit tests for the FindNC pipeline."""

import pytest

from repro.core.context import RandomWalkContext
from repro.core.discrimination import KLDiscriminator
from repro.core.findnc import FindNC, default_excluded_labels, rw_mult
from repro.errors import QueryError
from repro.graph.builder import GraphBuilder


@pytest.fixture()
def graph():
    builder = GraphBuilder()
    # 12 politicians, all with children and law degrees; two "query-like"
    # ones without children and studying physics.
    for i in range(12):
        name = f"pol{i}"
        builder.typed(name, "politician")
        builder.fact(name, "studied", "Law")
        builder.fact(name, "hasChild", f"child{i}")
        builder.fact(name, "leaderOf", f"country{i}")
    builder.typed("alpha", "politician")
    builder.fact("alpha", "studied", "Physics")
    builder.fact("alpha", "leaderOf", "countryA")
    builder.typed("beta", "politician")
    builder.fact("beta", "studied", "Physics")
    builder.fact("beta", "leaderOf", "countryB")
    return builder.build()


class TestResolveQuery:
    def test_accepts_names_and_ids(self, graph):
        finder = FindNC(graph, rng=1)
        resolved = finder.resolve_query(["alpha", graph.node_id("beta")])
        assert resolved == (graph.node_id("alpha"), graph.node_id("beta"))

    def test_fuzzy_name(self, graph):
        finder = FindNC(graph, rng=1)
        assert finder.resolve_query(["ALPHA"]) == (graph.node_id("alpha"),)

    def test_deduplicates_preserving_order(self, graph):
        finder = FindNC(graph, rng=1)
        resolved = finder.resolve_query(["beta", "alpha", "beta"])
        assert resolved == (graph.node_id("beta"), graph.node_id("alpha"))

    def test_empty_rejected(self, graph):
        with pytest.raises(QueryError):
            FindNC(graph, rng=1).resolve_query([])


class TestCandidateLabels:
    def test_type_labels_excluded_by_default(self, graph):
        finder = FindNC(graph, rng=1)
        labels = finder.candidate_labels(list(graph.nodes()))
        assert "type" not in labels
        assert "subclassOf" not in labels

    def test_inverse_labels_excluded_by_default(self, graph):
        finder = FindNC(graph, rng=1)
        labels = finder.candidate_labels(list(graph.nodes()))
        assert not any(label.endswith("_inv") for label in labels)

    def test_inverse_labels_opt_in(self, graph):
        finder = FindNC(graph, rng=1, include_inverse_labels=True)
        labels = finder.candidate_labels(list(graph.nodes()))
        assert any(label.endswith("_inv") for label in labels)

    def test_custom_exclusions(self, graph):
        finder = FindNC(graph, rng=1, excluded_labels={"studied"})
        labels = finder.candidate_labels(list(graph.nodes()))
        assert "studied" not in labels
        assert "type" in labels  # default exclusions replaced

    def test_default_exclusions_cover_both_directions(self):
        excluded = default_excluded_labels()
        assert {"type", "type_inv", "subclassOf", "subclassOf_inv"} <= excluded


class TestRun:
    def test_end_to_end_finds_physics_and_childlessness(self, graph):
        finder = FindNC(graph, context_size=10, rng=5)
        result = finder.run(["alpha", "beta"])
        assert result.context.nodes
        studied = result.result_for("studied")
        assert studied.notable, studied
        child = result.result_for("hasChild")
        assert child.notable, child

    def test_common_labels_not_notable(self, graph):
        finder = FindNC(graph, context_size=10, rng=5)
        result = finder.run(["alpha", "beta"])
        leader = result.result_for("leaderOf")
        # every politician leads a country: the existence pattern matches.
        assert leader.card_p_value > 0.05

    def test_results_sorted_by_score(self, graph):
        result = FindNC(graph, context_size=10, rng=5).run(["alpha", "beta"])
        scores = [r.score for r in result.results]
        assert scores == sorted(scores, reverse=True)

    def test_notable_subset_of_results(self, graph):
        result = FindNC(graph, context_size=10, rng=5).run(["alpha", "beta"])
        assert {n.label for n in result.notable} <= {
            r.label for r in result.results
        }
        assert all(n.score > 0 for n in result.notable)

    def test_injected_context_reused(self, graph):
        finder = FindNC(graph, context_size=10, rng=5)
        context = RandomWalkContext(graph).select(
            [graph.node_id("alpha"), graph.node_id("beta")], 6
        )
        result = finder.run(["alpha", "beta"], context=context)
        assert result.context is context

    def test_unknown_label_lookup_raises(self, graph):
        result = FindNC(graph, context_size=5, rng=5).run(["alpha"])
        with pytest.raises(KeyError):
            result.result_for("nope")

    def test_significance_probabilities_shape(self, graph):
        result = FindNC(graph, context_size=10, rng=5).run(["alpha", "beta"])
        probs = result.significance_probabilities()
        assert set(probs) == {r.label for r in result.results}
        assert all(0.0 <= p <= 1.0 for p in probs.values())

    def test_summary_mentions_query(self, graph):
        result = FindNC(graph, context_size=5, rng=5).run(["alpha"])
        summary = result.summary(graph)
        assert "alpha" in summary
        assert "notable" in summary

    def test_explanations_render(self, graph):
        result = FindNC(graph, context_size=10, rng=5).run(["alpha", "beta"])
        for notable in result.notable:
            text = notable.explanation(graph)
            assert notable.label in text

    def test_custom_discriminator(self, graph):
        finder = FindNC(
            graph,
            context_size=10,
            discriminator=KLDiscriminator(threshold=0.0),
            rng=5,
        )
        result = finder.run(["alpha", "beta"])
        assert result.results

    def test_context_size_validation(self, graph):
        with pytest.raises(ValueError):
            FindNC(graph, context_size=0)


class TestRwMult:
    def test_uses_randomwalk_selector(self, graph):
        finder = rw_mult(graph, context_size=8, rng=2)
        assert isinstance(finder.selector, RandomWalkContext)
        result = finder.run(["alpha", "beta"])
        assert result.context.algorithm == "RandomWalk"

    def test_elapsed_accounting(self, graph):
        result = rw_mult(graph, context_size=8, rng=2).run(["alpha"])
        assert result.elapsed_total == pytest.approx(
            result.elapsed_context + result.elapsed_discrimination
        )


class TestSnapshotPinning:
    def test_pinned_run_matches_unpinned(self, graph):
        snapshot = graph.compiled()
        pinned = rw_mult(graph, context_size=8, rng=3).run(
            ["alpha", "beta"], snapshot=snapshot
        )
        unpinned = rw_mult(graph, context_size=8, rng=3).run(["alpha", "beta"])
        assert [r.label for r in pinned.results] == [r.label for r in unpinned.results]
        assert [r.score for r in pinned.results] == [r.score for r in unpinned.results]

    def test_pinned_run_survives_concurrent_mutation(self, graph):
        # Pin snapshot AND selector (as the query service does), mutate,
        # then run: the whole pipeline must read the pre-mutation state.
        from repro.core.discrimination import MultinomialDiscriminator

        snapshot = graph.compiled()

        def pinned_finder():
            return FindNC(
                graph,
                context_selector=RandomWalkContext(graph, pin=True).warm(),
                discriminator=MultinomialDiscriminator(rng=3),
                context_size=8,
            )

        before = pinned_finder().run(["alpha", "beta"], snapshot=snapshot)
        finder = pinned_finder()  # selector frozen at the pre-mutation version
        graph.add_edge("alpha", "ownsPet", "Dog")
        graph.add_edge("gamma", "studied", "Physics")  # new nodes too
        after = finder.run(["alpha", "beta"], snapshot=snapshot)
        assert "ownsPet" not in [r.label for r in after.results]
        assert [r.label for r in after.results] == [r.label for r in before.results]
        assert [r.score for r in after.results] == [r.score for r in before.results]

    def test_query_beyond_snapshot_rejected(self, graph):
        snapshot = graph.compiled()
        graph.add_edge("newbie", "studied", "Physics")
        with pytest.raises(QueryError):
            rw_mult(graph, context_size=8, rng=3).run(["newbie"], snapshot=snapshot)

    def test_reference_path_rejects_snapshot(self, graph):
        finder = rw_mult(graph, context_size=8, rng=3, batch_distributions=False)
        with pytest.raises(ValueError):
            finder.run(["alpha"], snapshot=graph.compiled())

    def test_candidate_labels_from_snapshot_match_live(self, graph):
        finder = FindNC(graph, rng=1)
        nodes = [graph.node_id("alpha"), graph.node_id("pol0")]
        assert finder.candidate_labels(nodes) == finder.candidate_labels(
            nodes, snapshot=graph.compiled()
        )


class TestResultForThreadSafety:
    def test_shared_result_across_threads(self, graph):
        """A cached result handed to many threads must index correctly."""
        import threading

        result = rw_mult(graph, context_size=8, rng=3).run(["alpha", "beta"])
        labels = [r.label for r in result.results]
        assert labels
        errors = []
        barrier = threading.Barrier(8)

        def reader():
            try:
                barrier.wait()
                for _ in range(50):
                    for label in labels:
                        assert result.result_for(label).label == label
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []

    def test_index_rebuilds_after_in_place_mutation(self, graph):
        result = rw_mult(graph, context_size=8, rng=3).run(["alpha", "beta"])
        first = result.results[0]
        assert result.result_for(first.label) is first
        replacement = result.results[-1]
        result.results[0] = replacement
        assert result.result_for(replacement.label) is replacement
        if first.label != replacement.label:
            with pytest.raises(KeyError):
                result.result_for(first.label)

    def test_unknown_label_raises_keyerror(self, graph):
        result = rw_mult(graph, context_size=8, rng=3).run(["alpha"])
        with pytest.raises(KeyError):
            result.result_for("definitely-not-a-label")

    def test_unpinned_selector_context_rejected_cleanly(self, graph):
        # An UNpinned selector racing a writer returns new nodes the
        # snapshot never saw; run() must raise, not IndexError.
        snapshot = graph.compiled()
        graph.add_edge("alpha", "likes", "brand_new_node")
        with pytest.raises(QueryError, match="pin the context selector"):
            rw_mult(graph, context_size=8, rng=3).run(
                ["alpha", "beta"], snapshot=snapshot
            )
