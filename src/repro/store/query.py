"""Basic graph pattern (BGP) evaluation over a :class:`TripleStore`.

A tiny conjunctive-query engine in the spirit of SPARQL BGPs: a query is a
set of triple patterns whose positions may hold variables; evaluation binds
variables via index nested-loop joins, picking the most selective pattern
next (a classic greedy join order driven by the store's cardinality
estimates). This is what "traversals through Jena" amount to in the paper's
implementation.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.store.terms import IRI, Term, coerce_term
from repro.store.triplestore import TripleStore


@dataclass(frozen=True, slots=True)
class Variable:
    """A query variable such as ``?x``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or self.name.startswith("?"):
            raise ValueError("variable names are written without the '?' prefix")

    def __str__(self) -> str:
        return f"?{self.name}"


#: A position in a triple pattern: bound term or variable.
PatternTerm = "Term | Variable"

#: A variable binding produced by query evaluation.
Binding = dict[str, Term]


def _coerce_pattern_term(value: "Term | Variable | str") -> "Term | Variable":
    if isinstance(value, Variable):
        return value
    if isinstance(value, str) and value.startswith("?"):
        return Variable(value[1:])
    return coerce_term(value)  # type: ignore[arg-type]


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple whose positions may be variables.

    >>> p = TriplePattern.of("?x", "leaderOf", "germany")
    >>> sorted(p.variables())
    ['x']
    """

    subject: "Term | Variable"
    predicate: "Term | Variable"
    object: "Term | Variable"

    @classmethod
    def of(
        cls,
        subject: "Term | Variable | str",
        predicate: "Term | Variable | str",
        obj: "Term | Variable | str",
    ) -> "TriplePattern":
        return cls(
            _coerce_pattern_term(subject),
            _coerce_pattern_term(predicate),
            _coerce_pattern_term(obj),
        )

    def variables(self) -> set[str]:
        return {
            t.name
            for t in (self.subject, self.predicate, self.object)
            if isinstance(t, Variable)
        }

    def bind(self, binding: Binding) -> "TriplePattern":
        """Substitute bound variables with their terms."""

        def sub(term: "Term | Variable") -> "Term | Variable":
            if isinstance(term, Variable) and term.name in binding:
                return binding[term.name]
            return term

        return TriplePattern(sub(self.subject), sub(self.predicate), sub(self.object))

    def _bound_or_none(self, term: "Term | Variable") -> Term | None:
        return None if isinstance(term, Variable) else term


class BGPQuery:
    """A conjunction of triple patterns.

    >>> store = TripleStore()
    >>> from repro.store.triples import Triple
    >>> _ = store.add(Triple.of("merkel", "leaderOf", "germany"))
    >>> _ = store.add(Triple.of("obama", "leaderOf", "usa"))
    >>> q = BGPQuery([TriplePattern.of("?who", "leaderOf", "?where")])
    >>> len(list(q.evaluate(store)))
    2
    """

    def __init__(self, patterns: Sequence[TriplePattern]) -> None:
        if not patterns:
            raise ValueError("a BGP needs at least one pattern")
        self.patterns = list(patterns)

    def variables(self) -> set[str]:
        out: set[str] = set()
        for pattern in self.patterns:
            out |= pattern.variables()
        return out

    def evaluate(self, store: TripleStore) -> Iterator[Binding]:
        """Yield all variable bindings satisfying every pattern."""
        yield from self._evaluate(store, list(self.patterns), {})

    def _evaluate(
        self, store: TripleStore, remaining: list[TriplePattern], binding: Binding
    ) -> Iterator[Binding]:
        if not remaining:
            yield dict(binding)
            return
        index = self._most_selective(store, remaining, binding)
        pattern = remaining[index]
        rest = remaining[:index] + remaining[index + 1 :]
        bound = pattern.bind(binding)
        s = bound._bound_or_none(bound.subject)
        p = bound._bound_or_none(bound.predicate)
        o = bound._bound_or_none(bound.object)
        if p is not None and not isinstance(p, IRI):
            return  # a literal bound into predicate position can never match
        if s is not None and not isinstance(s, IRI):
            return
        for triple in store.match(s, p, o):  # type: ignore[arg-type]
            extended = dict(binding)
            consistent = True
            for var_term, value in (
                (bound.subject, triple.subject),
                (bound.predicate, triple.predicate),
                (bound.object, triple.object),
            ):
                if isinstance(var_term, Variable):
                    existing = extended.get(var_term.name)
                    if existing is None:
                        extended[var_term.name] = value
                    elif existing != value:
                        consistent = False
                        break
            if consistent:
                yield from self._evaluate(store, rest, extended)

    def _most_selective(
        self, store: TripleStore, patterns: list[TriplePattern], binding: Binding
    ) -> int:
        """Greedy join order: evaluate the lowest-cardinality pattern next."""
        best_index = 0
        best_cost: float = float("inf")
        for i, pattern in enumerate(patterns):
            bound = pattern.bind(binding)
            s = bound._bound_or_none(bound.subject)
            p = bound._bound_or_none(bound.predicate)
            o = bound._bound_or_none(bound.object)
            if (s is not None and not isinstance(s, IRI)) or (
                p is not None and not isinstance(p, IRI)
            ):
                return i  # dead pattern: zero results, pick it to prune early
            # S+O (P free) has no O(1) estimate; approximate with min of sides.
            if s is not None and o is not None and p is None:
                cost = min(store.count(subject=s), store.count(obj=o))
            else:
                cost = store.count(s, p, o)  # type: ignore[arg-type]
            if cost < best_cost:
                best_cost = cost
                best_index = i
        return best_index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BGPQuery({self.patterns!r})"
