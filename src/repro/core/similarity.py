"""Structural node-similarity helpers.

These are *not* the paper's sigma (that is the metapath score inside
:class:`repro.core.context.ContextRW`); they are the simple structural
measures (shared neighbours, Jaccard) that Section 5 surveys, used by the
ground-truth simulator to derive latent relevance and by tests as sanity
oracles.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.model import KnowledgeGraph, NodeRef


def _neighbor_set(graph: KnowledgeGraph, node: NodeRef) -> set[int]:
    return set(graph.neighbors(node, direction="out"))


def shared_neighbor_count(
    graph: KnowledgeGraph, node_a: NodeRef, node_b: NodeRef
) -> int:
    """Number of common (out-)neighbours — structural-equivalence flavour."""
    return len(_neighbor_set(graph, node_a) & _neighbor_set(graph, node_b))


def jaccard_neighbors(
    graph: KnowledgeGraph, node_a: NodeRef, node_b: NodeRef
) -> float:
    """Jaccard similarity of the neighbour sets (0 when both isolated)."""
    a = _neighbor_set(graph, node_a)
    b = _neighbor_set(graph, node_b)
    union = a | b
    if not union:
        return 0.0
    return len(a & b) / len(union)


def mean_query_similarity(
    graph: KnowledgeGraph, node: NodeRef, query: Iterable[NodeRef]
) -> float:
    """Average Jaccard similarity between ``node`` and the query nodes.

    A cheap instance of the paper's generic ``sigma : V x 2^V -> R``
    signature; the ground-truth simulator mixes it with type overlap.
    """
    query_list = list(query)
    if not query_list:
        raise ValueError("query must not be empty")
    total = sum(jaccard_neighbors(graph, node, q) for q in query_list)
    return total / len(query_list)
