"""Unit tests for the YAGO-style TSV fact reader/writer."""

import pytest

from repro.errors import ParseError
from repro.store.terms import IRI, Literal
from repro.store.triples import Triple
from repro.store.tsv import (
    load_tsv_file,
    parse_tsv_facts,
    parse_tsv_line,
    serialize_tsv_facts,
)


class TestParse:
    def test_plain_three_column(self):
        (triple,) = parse_tsv_facts("Angela_Merkel\tisLeaderOf\tGermany")
        assert triple == Triple(IRI("Angela_Merkel"), IRI("isLeaderOf"), IRI("Germany"))

    def test_four_column_fact_id_skipped(self):
        (triple,) = parse_tsv_facts("#42\tAngela_Merkel\tisLeaderOf\tGermany")
        assert triple.subject == IRI("Angela_Merkel")

    def test_angle_brackets_stripped(self):
        (triple,) = parse_tsv_facts("<merkel>\t<leads>\t<germany>")
        assert triple.subject == IRI("merkel")

    def test_quoted_value_is_literal(self):
        (triple,) = parse_tsv_facts('Angela_Merkel\twasBornOnDate\t"1954-07-17"')
        assert triple.object == Literal("1954-07-17")

    def test_blank_lines_and_comments(self):
        text = "# facts\n\na\tb\tc\n"
        assert len(list(parse_tsv_facts(text))) == 1

    def test_wrong_column_count(self):
        with pytest.raises(ParseError):
            list(parse_tsv_facts("only\ttwo"))
        with pytest.raises(ParseError):
            list(parse_tsv_facts("a\tb\tc\td\te"))

    def test_literal_subject_rejected(self):
        with pytest.raises(ParseError):
            parse_tsv_line('"literal"\tb\tc')

    def test_line_numbers_in_errors(self):
        with pytest.raises(ParseError) as excinfo:
            list(parse_tsv_facts("a\tb\tc\nbroken"))
        assert excinfo.value.line_number == 2


class TestRoundTrip:
    def test_serialize_parse(self):
        triples = [
            Triple.of("a", "b", "c"),
            Triple(IRI("a"), IRI("attr"), Literal("value")),
        ]
        text = serialize_tsv_facts(triples)
        assert list(parse_tsv_facts(text)) == triples

    def test_file_loading(self, tmp_path):
        path = tmp_path / "facts.tsv"
        path.write_text("a\tb\tc\nx\ty\t\"z\"\n", encoding="utf-8")
        triples = list(load_tsv_file(str(path)))
        assert len(triples) == 2
        assert triples[1].object == Literal("z")
