"""Datasets: synthetic YAGO / LinkedMDB, the Figure-1 example, Table-1
query domains, and the simulated crowdsourced ground truth.

See DESIGN.md section 2 for the substitution rationale (the real dumps and
the CrowdFlower platform are unavailable offline; these generators
reproduce the distributional facts the evaluation relies on).
"""

from repro.datasets.figure1 import FIGURE1_CONTEXT, FIGURE1_QUERY, figure1_graph
from repro.datasets.groundtruth import CrowdConfig, CrowdSimulator, GroundTruth
from repro.datasets.linkedmdb import SyntheticLinkedMdb, synthetic_linkedmdb
from repro.datasets.loader import (
    clear_dataset_cache,
    dataset_names,
    load_dataset,
    to_snapshot,
)
from repro.datasets.seeds import (
    ACTORS_DOMAIN,
    AUTHORS_QUERY,
    MOVIE_CONTRIBUTORS_DOMAIN,
    POLITICIANS_DOMAIN,
    TABLE1_DOMAINS,
    QueryDomain,
    SeedPerson,
    domain_by_name,
    seed_person,
)
from repro.datasets.yago import SyntheticYago, synthetic_yago

__all__ = [
    "ACTORS_DOMAIN",
    "AUTHORS_QUERY",
    "CrowdConfig",
    "CrowdSimulator",
    "FIGURE1_CONTEXT",
    "FIGURE1_QUERY",
    "GroundTruth",
    "MOVIE_CONTRIBUTORS_DOMAIN",
    "POLITICIANS_DOMAIN",
    "QueryDomain",
    "SeedPerson",
    "SyntheticLinkedMdb",
    "SyntheticYago",
    "TABLE1_DOMAINS",
    "clear_dataset_cache",
    "dataset_names",
    "domain_by_name",
    "figure1_graph",
    "load_dataset",
    "seed_person",
    "synthetic_linkedmdb",
    "synthetic_yago",
    "to_snapshot",
]
