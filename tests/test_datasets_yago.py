"""Unit tests for the synthetic YAGO generator."""

import pytest

from repro.datasets import schema as s
from repro.datasets.seeds import (
    ACTORS_DOMAIN,
    AUTHORS_QUERY,
    MOVIE_CONTRIBUTORS_DOMAIN,
    POLITICIANS_DOMAIN,
)
from repro.datasets.yago import SyntheticYago, synthetic_yago
from repro.graph.hierarchy import TypeHierarchy
from repro.graph.statistics import GraphStatistics


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = synthetic_yago(scale=0.3, seed=5)
        b = synthetic_yago(scale=0.3, seed=5)
        assert a.node_count == b.node_count
        assert a.edge_count == b.edge_count
        edges_a = {(a.node_name(e.source), e.label, a.node_name(e.target)) for e in a.edges()}
        edges_b = {(b.node_name(e.source), e.label, b.node_name(e.target)) for e in b.edges()}
        assert edges_a == edges_b

    def test_different_seed_different_graph(self):
        a = synthetic_yago(scale=0.3, seed=5)
        b = synthetic_yago(scale=0.3, seed=6)
        edges_a = {(a.node_name(e.source), e.label, a.node_name(e.target)) for e in a.edges()}
        edges_b = {(b.node_name(e.source), e.label, b.node_name(e.target)) for e in b.edges()}
        assert edges_a != edges_b

    def test_scale_grows_graph(self):
        small = synthetic_yago(scale=0.3, seed=5)
        large = synthetic_yago(scale=1.0, seed=5)
        assert large.node_count > small.node_count
        assert large.edge_count > small.edge_count

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            SyntheticYago(scale=0)


class TestSeedEntities:
    def test_all_domain_entities_present(self, yago_small):
        for domain in (POLITICIANS_DOMAIN, ACTORS_DOMAIN, MOVIE_CONTRIBUTORS_DOMAIN):
            for name in domain.entities:
                assert yago_small.has_node(name), name
        for name in AUTHORS_QUERY:
            assert yago_small.has_node(name)

    def test_merkel_facts(self, yago_small):
        g = yago_small
        assert g.out_degree("Angela_Merkel", s.HAS_CHILD) == 0
        assert g.has_edge("Angela_Merkel", s.STUDIED, "Physics")
        assert g.has_edge("Angela_Merkel", s.HAS_ACADEMIC_DEGREE, "Doctorate")
        assert g.has_edge("Angela_Merkel", s.IS_LEADER_OF, "Germany")
        assert g.has_edge("Angela_Merkel", s.GENDER, s.FEMALE)

    def test_pitt_owns_plan_b(self, yago_small):
        assert yago_small.has_edge("Brad_Pitt", s.OWNS, "Plan_B_Entertainment")
        assert yago_small.has_edge("Brad_Pitt", s.CREATED, "Plan_B_Entertainment")

    def test_johansson_created_nothing(self, yago_small):
        assert yago_small.out_degree("Scarlett_Johansson", s.CREATED) == 0

    def test_other_query_actors_created_one_company(self, yago_small):
        for name in ("Brad_Pitt", "George_Clooney", "Leonardo_DiCaprio", "Johnny_Depp"):
            assert yago_small.out_degree(name, s.CREATED) == 1, name

    def test_authors_influence_gaiman(self, yago_small):
        g = yago_small
        assert g.has_edge("Douglas_Adams", s.INFLUENCES, "Neil_Gaiman")
        assert g.has_edge("Terry_Pratchett", s.INFLUENCES, "Neil_Gaiman")

    def test_authors_are_prolific(self, yago_small):
        assert yago_small.out_degree("Douglas_Adams", s.CREATED) >= 5
        assert yago_small.out_degree("Terry_Pratchett", s.CREATED) >= 6

    def test_seeds_can_be_disabled(self):
        graph = synthetic_yago(scale=0.3, seed=5, include_seed_entities=False)
        assert not graph.has_node("Angela_Merkel")


class TestPopulationShape:
    def test_all_professions_populated(self, yago_small):
        hierarchy = TypeHierarchy(yago_small)
        for profession in s.PROFESSIONS:
            assert len(hierarchy.instances(profession, transitive=False)) >= 2

    def test_type_hierarchy_wired(self, yago_small):
        hierarchy = TypeHierarchy(yago_small)
        assert hierarchy.is_subtype(s.POLITICIAN, s.PERSON)
        assert hierarchy.is_subtype(s.MOVIE, s.CREATIVE_WORK)

    def test_politicians_mostly_have_children(self, yago_small):
        hierarchy = TypeHierarchy(yago_small)
        politicians = hierarchy.instances(s.POLITICIAN, transitive=False)
        with_children = sum(
            1 for p in politicians if yago_small.out_degree(p, s.HAS_CHILD) > 0
        )
        assert with_children / len(politicians) > 0.6

    def test_actors_created_rate_near_figure7(self, yago_small):
        hierarchy = TypeHierarchy(yago_small)
        actors = hierarchy.instances(s.ACTOR, transitive=False)
        without_created = sum(
            1 for a in actors if yago_small.out_degree(a, s.CREATED) == 0
        )
        # Figure 7: the created edge is absent for a large minority.
        assert 0.35 <= without_created / len(actors) <= 0.80

    def test_actors_win_film_prizes(self, yago_small):
        from repro.datasets.names import FILM_PRIZES

        hierarchy = TypeHierarchy(yago_small)
        actors = hierarchy.instances(s.ACTOR, transitive=False)
        prize_values = set()
        for actor in actors:
            for prize in yago_small.neighbors(actor, s.HAS_WON_PRIZE):
                prize_values.add(yago_small.node_name(prize))
        assert prize_values <= set(FILM_PRIZES)

    def test_at_most_one_leader_per_country(self, yago_small):
        leaders_of = {}
        for edge in yago_small.edges(s.IS_LEADER_OF):
            country = yago_small.node_name(edge.target)
            leaders_of.setdefault(country, []).append(edge.source)
        for country, leaders in leaders_of.items():
            assert len(leaders) == 1, country

    def test_degree_skew_exists(self, yago_small):
        summary = GraphStatistics(yago_small).out_degree_summary()
        assert summary.maximum > 5 * summary.median

    def test_every_node_typed_or_type(self, yago_small):
        # Every generated node is reachable from the type system: it either
        # has a type edge or receives one / subclassOf (being a type).
        untyped = [
            yago_small.node_name(n)
            for n in yago_small.nodes()
            if not yago_small.types_of(n)
            and yago_small.in_degree(n, "type") == 0
            and yago_small.out_degree(n, "subclassOf") == 0
        ]
        assert untyped in ([], ["entity"])  # only the hierarchy root may remain
