"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_cls",
        [
            errors.StoreError,
            errors.ParseError,
            errors.TermError,
            errors.GraphError,
            errors.NodeNotFoundError,
            errors.EdgeLabelNotFoundError,
            errors.EntityResolutionError,
            errors.QueryError,
            errors.StatisticsError,
            errors.ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_cls):
        assert issubclass(exc_cls, errors.ReproError)

    def test_node_not_found_is_keyerror(self):
        assert issubclass(errors.NodeNotFoundError, KeyError)

    def test_parse_error_line_numbers(self):
        err = errors.ParseError("bad syntax", line_number=7)
        assert "line 7" in str(err)
        assert err.line_number == 7

    def test_parse_error_without_line(self):
        err = errors.ParseError("bad syntax")
        assert err.line_number is None
        assert "bad syntax" in str(err)

    def test_entity_resolution_hint(self):
        err = errors.EntityResolutionError("merkle", ("Angela_Merkel",))
        assert "Angela_Merkel" in str(err)
        assert err.candidates == ("Angela_Merkel",)

    def test_node_not_found_payload(self):
        err = errors.NodeNotFoundError("ghost")
        assert err.node == "ghost"


class TestCatchability:
    def test_single_except_clause_catches_library_errors(self):
        caught = []
        for exc in (
            errors.QueryError("q"),
            errors.StatisticsError("s"),
            errors.TermError("t"),
        ):
            try:
                raise exc
            except errors.ReproError as e:
                caught.append(e)
        assert len(caught) == 3
