"""Tests for resilient query execution: deadlines, retries, breaker, shedding."""

from __future__ import annotations

import time

import pytest

import threading

from repro.datasets.figure1 import figure1_graph
from repro.errors import DeadlineExceededError, EngineSaturatedError
from repro.parallel.shm import publish_graph
from repro.service import faults
from repro.service.engine import CircuitBreaker, NCEngine
from repro.service.workers import ProcessWorkerPool, WorkerConfig

QUERY = ["Angela_Merkel", "Barack_Obama"]


@pytest.fixture(autouse=True)
def _disarmed(monkeypatch):
    """Every test starts and ends with no faults armed."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture()
def graph():
    return figure1_graph()


class _Clock:
    """An injectable monotonic clock the breaker tests can advance."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=2, reset_s=10.0, clock=_Clock())
        breaker.record_failure("boom 1")
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure("boom 2")
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1
        assert breaker.reason == "boom 2"

    def test_success_clears_the_streak(self):
        breaker = CircuitBreaker(threshold=2, reset_s=10.0, clock=_Clock())
        breaker.record_failure("boom")
        breaker.record_success()
        breaker.record_failure("boom")
        assert breaker.state == "closed"

    def test_half_open_allows_one_probe_per_window(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=1, reset_s=10.0, clock=clock)
        breaker.record_failure("boom")
        assert not breaker.allow()
        clock.now += 10.0
        assert breaker.allow()  # the half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # second caller inside the probe window
        clock.now += 10.0
        assert breaker.allow()  # a stalled probe can't wedge the breaker

    def test_probe_success_closes(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=1, reset_s=10.0, clock=clock)
        breaker.record_failure("boom")
        clock.now += 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.reason == ""

    def test_probe_failure_reopens(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=1, reset_s=10.0, clock=clock)
        breaker.record_failure("boom")
        clock.now += 10.0
        assert breaker.allow()
        breaker.record_failure("still broken")
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert not breaker.allow()

    def test_as_dict_shape(self):
        breaker = CircuitBreaker(threshold=1, reset_s=10.0, clock=_Clock())
        breaker.record_failure("boom")
        assert breaker.as_dict() == {
            "state": "open",
            "consecutive_failures": 1,
            "trips": 1,
            "reason": "boom",
        }

    @pytest.mark.parametrize(
        "kwargs", [{"threshold": 0}, {"reset_s": 0.0}, {"reset_s": -1.0}]
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


class TestEngineValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"request_timeout": 0.0},
            {"request_timeout": -1.0},
            {"max_pending": 0},
            {"retries": -1},
            {"retry_backoff": -0.1},
            {"breaker_threshold": 0},
            {"breaker_reset_s": 0.0},
        ],
    )
    def test_rejects_bad_resilience_kwargs(self, graph, kwargs):
        with pytest.raises(ValueError):
            NCEngine(graph, context_size=3, **kwargs)

    def test_submit_rejects_nonpositive_timeout(self, graph):
        with NCEngine(graph, context_size=3, seed=5) as engine:
            with pytest.raises(ValueError, match="timeout"):
                engine.submit(QUERY, timeout=0.0)


class TestThreadDeadlines:
    def test_request_timeout_surfaces_within_the_deadline(self, graph):
        with NCEngine(graph, context_size=3, max_workers=1, seed=5) as engine:
            faults.set_injector(
                faults.FaultInjector(
                    [faults.FaultRule("engine.slow", delay_s=0.6, limit=1)]
                )
            )
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError) as exc:
                engine.request(QUERY, timeout=0.15)
            assert time.monotonic() - started < 0.5
            assert exc.value.timeout == 0.15
            assert engine.stats().timeouts == 1
            # The pure computation cannot be interrupted: it finishes in
            # the background and lands in the cache.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if engine.request(QUERY).cached:
                    break
                time.sleep(0.02)
            assert engine.request(QUERY).cached

    def test_engine_default_request_timeout_applies(self, graph):
        with NCEngine(
            graph, context_size=3, max_workers=1, seed=5, request_timeout=0.1
        ) as engine:
            faults.set_injector(
                faults.FaultInjector(
                    [faults.FaultRule("engine.slow", delay_s=0.6, limit=1)]
                )
            )
            with pytest.raises(DeadlineExceededError):
                engine.request(QUERY)

    def test_queued_job_cancelled_at_the_deadline(self, graph):
        with NCEngine(graph, context_size=3, max_workers=1, seed=5) as engine:
            # The only executor thread is held by a slow compute, so the
            # second query expires while still queued — its _compute must
            # refuse to start rather than charge a dead request.
            faults.set_injector(
                faults.FaultInjector(
                    [faults.FaultRule("engine.slow", delay_s=0.6, limit=1)]
                )
            )
            blocker, *_ = engine.submit(QUERY)
            queued, *_ = engine.submit(["Vladimir_Putin"], timeout=0.15)
            with pytest.raises(DeadlineExceededError, match="queued"):
                queued.result(timeout=5.0)
            assert engine.stats().timeouts == 1
            blocker.result(timeout=5.0)


class TestAdmissionControl:
    def test_sheds_beyond_the_pending_budget(self, graph):
        with NCEngine(
            graph, context_size=3, max_workers=1, seed=5, max_pending=1
        ) as engine:
            faults.set_injector(
                faults.FaultInjector(
                    [faults.FaultRule("engine.slow", delay_s=0.6, limit=1)]
                )
            )
            blocker, *_ = engine.submit(QUERY)
            with pytest.raises(EngineSaturatedError) as exc:
                engine.submit(["Vladimir_Putin"])
            assert exc.value.retry_after == 1.0
            assert engine.stats().shed == 1
            blocker.result(timeout=5.0)
            # Budget freed: the shed query is admitted now.
            future, *_ = engine.submit(["Vladimir_Putin"])
            assert future.result(timeout=5.0).results

    def test_coalescing_beats_shedding(self, graph):
        with NCEngine(
            graph, context_size=3, max_workers=1, seed=5, max_pending=1
        ) as engine:
            faults.set_injector(
                faults.FaultInjector(
                    [faults.FaultRule("engine.slow", delay_s=0.4, limit=1)]
                )
            )
            blocker, *_ = engine.submit(QUERY)
            # An identical in-flight query attaches to the existing
            # computation instead of being shed.
            future, cached, coalesced, _ = engine.submit(QUERY)
            assert coalesced and not cached
            assert future is blocker
            assert engine.stats().shed == 0
            blocker.result(timeout=5.0)


def _fast_pool(engine: NCEngine, workers: int, **kwargs) -> ProcessWorkerPool:
    """Pre-build the engine's pool with chaos-grade detection latency.

    Building it here (rather than at first dispatch) also pins *when*
    the workers spawn — i.e. which ``REPRO_FAULTS`` value they inherit.
    ``kwargs`` pass through (e.g. the micro-batching knobs).
    """
    pool = ProcessWorkerPool(
        workers, watchdog_tick=0.05, crash_grace_s=0.2, **kwargs
    )
    engine._pool = pool  # noqa: SLF001 - test harness
    return pool


class TestProcessResilience:
    pytestmark = pytest.mark.chaos

    def test_crash_retried_on_a_healthy_worker(self, graph, monkeypatch):
        with NCEngine(graph, context_size=3, max_workers=1, seed=5) as thread_engine:
            expected = thread_engine.search(QUERY)
        monkeypatch.setenv(faults.FAULTS_ENV, "worker.crash=1")
        with NCEngine(
            graph,
            context_size=3,
            max_workers=1,
            executor="process",
            seed=5,
            retries=2,
            retry_backoff=0.01,
        ) as engine:
            _fast_pool(engine, 1)  # spawns the (armed) worker now
            monkeypatch.delenv(faults.FAULTS_ENV)
            # First dispatch crashes; the watchdog replaces the worker
            # (healthy: the env var is gone) and the retry succeeds.
            result = engine.search(QUERY)
            assert [r.score for r in result.results] == [
                r.score for r in expected.results
            ]
            stats = engine.stats()
            assert stats.retries >= 1
            assert stats.fallbacks == 0
            assert stats.breaker["state"] == "closed"
            assert engine.health() == {"status": "ok"}

    def test_breaker_trips_to_degraded_then_revives(self, graph, monkeypatch):
        with NCEngine(graph, context_size=3, max_workers=1, seed=5) as thread_engine:
            expected = thread_engine.search(QUERY)
        monkeypatch.setenv(faults.FAULTS_ENV, "worker.crash=1")
        with NCEngine(
            graph,
            context_size=3,
            max_workers=1,
            executor="process",
            seed=5,
            retries=0,
            breaker_threshold=1,
            breaker_reset_s=60.0,
        ) as engine:
            pool = _fast_pool(engine, 1)
            # Every dispatch crashes (respawns re-read the env var, so
            # replacements are armed too): the single-attempt budget
            # exhausts, the breaker trips, and the degraded local
            # fallback still answers — identically.
            degraded = engine.search(QUERY)
            assert [r.score for r in degraded.results] == [
                r.score for r in expected.results
            ]
            stats = engine.stats()
            assert stats.fallbacks == 1
            assert stats.breaker["state"] == "open"
            assert stats.breaker["trips"] == 1
            health = engine.health()
            assert health["status"] == "degraded"
            assert "circuit breaker is open" in health["reason"]

            # Open breaker: the pool is bypassed entirely (no new
            # crashes), requests keep completing from the fallback.
            dispatched_before = pool.stats().dispatched
            engine.cache.clear()
            engine.search(QUERY)
            assert pool.stats().dispatched == dispatched_before
            assert engine.stats().fallbacks == 2

            # Operator recovery: disarm the fault, kill the (still armed)
            # idle worker, revive. Traffic flows to the pool again.
            monkeypatch.delenv(faults.FAULTS_ENV)
            victim = pool._processes[0]  # noqa: SLF001
            victim.kill()
            victim.join(timeout=10)
            assert engine.revive_workers() == 1
            assert engine.health() == {"status": "ok"}
            engine.cache.clear()
            recovered = engine.search(QUERY)
            assert [r.score for r in recovered.results] == [
                r.score for r in expected.results
            ]
            assert pool.stats().dispatched == dispatched_before + 1
            assert engine.stats().breaker["state"] == "closed"

    def test_process_deadline_abandons_the_job(self, graph, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "worker.slow=1:1.5:1")
        with NCEngine(
            graph, context_size=3, max_workers=1, executor="process", seed=5
        ) as engine:
            pool = _fast_pool(engine, 1)
            monkeypatch.delenv(faults.FAULTS_ENV)
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError, match="abandoned"):
                engine.request(QUERY, timeout=0.3)
            # Surfaced within the deadline plus one watchdog tick (plus
            # scheduler slack), not after the worker's 1.5s stall.
            assert time.monotonic() - started < 1.0
            stats = engine.stats()
            assert stats.timeouts == 1
            assert stats.workers["deadline_abandons"] == 1
            # The stalled worker finishes its sleep, its late result is
            # dropped, and the next request is served normally.
            outcome = engine.request(QUERY)
            assert outcome.result.results
            assert pool.stats().inflight == 0


def _worker_config() -> WorkerConfig:
    return WorkerConfig(
        damping=0.8,
        iterations=10,
        excluded_labels=None,
        include_inverse_labels=False,
        none_bucket=True,
        discriminator_params=(),
    )


class TestBatchWindowDeadlines:
    """A deadline expiring inside the batch window sheds only that member."""

    def test_expiry_in_the_window_sheds_that_member_only(self, graph):
        shared = publish_graph(graph)
        try:
            with ProcessWorkerPool(
                1, watchdog_tick=0.05, batch_window_ms=600.0, max_batch=8
            ) as pool:
                survivor: dict = {}

                def _survivor() -> None:
                    survivor["result"] = pool.run(
                        header=shared.header,
                        query_ids=(2,),
                        context_size=3,
                        alpha=0.05,
                        rng_seed=123,
                        config=_worker_config(),
                    )

                thread = threading.Thread(target=_survivor)
                thread.start()
                time.sleep(0.1)  # the survivor is queued, the window is open
                started = time.monotonic()
                with pytest.raises(
                    DeadlineExceededError, match="queued in the batch window"
                ):
                    pool.run(
                        header=shared.header,
                        query_ids=(3,),
                        context_size=3,
                        alpha=0.05,
                        rng_seed=123,
                        config=_worker_config(),
                        deadline=time.monotonic() + 0.15,
                    )
                # Surfaced at its own deadline, not at window close.
                assert time.monotonic() - started < 0.45
                thread.join(timeout=15)
                stats = pool.stats()
        finally:
            shared.unlink()
        # The batchmate was not shed with it: it dispatched (alone) and
        # completed after the window closed.
        assert survivor["result"].query == (2,)
        assert stats.deadline_abandons == 1
        assert stats.batches == 1
        assert stats.batched_members == 1  # the shed member never dispatched
        assert stats.completed == 1
        assert stats.inflight == 0


class TestBatchChaos:
    """Fault injection against the micro-batched process backend."""

    pytestmark = pytest.mark.chaos

    def test_crash_mid_batch_retries_every_member_correctly(
        self, graph, monkeypatch
    ):
        queries = [["Angela_Merkel"], ["Barack_Obama"], ["Vladimir_Putin"]]
        with NCEngine(graph, context_size=3, max_workers=1, seed=5) as thread_engine:
            expected = [thread_engine.search(q) for q in queries]
        monkeypatch.setenv(faults.FAULTS_ENV, "worker.crash=1")
        with NCEngine(
            graph,
            context_size=3,
            max_workers=1,
            executor="process",
            seed=5,
            retries=3,
            retry_backoff=0.05,
            batch_window_ms=80.0,
            max_batch=4,
        ) as engine:
            pool = _fast_pool(
                engine, 1, batch_window_ms=80.0, max_batch=4
            )  # spawns the (armed) worker now
            monkeypatch.delenv(faults.FAULTS_ENV)
            # The whole first batch dies with its worker; every member is
            # retried on the (healthy) replacement and must answer exactly
            # what a solo thread engine computes — zero wrong answers.
            futures = [engine.submit(q)[0] for q in queries]
            results = [future.result(timeout=30) for future in futures]
            for got, exp in zip(results, expected):
                assert [r.score for r in got.results] == [
                    r.score for r in exp.results
                ]
                assert got.notable_labels() == exp.notable_labels()
            stats = engine.stats()
            assert stats.retries >= 1
            assert stats.fallbacks == 0
            pool_stats = pool.stats()
            assert pool_stats.respawns >= 1
            assert pool_stats.inflight == 0

    def test_slow_batch_timeout_accounted_per_member(self, graph, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "worker.slow=1:1.2:1")
        with NCEngine(
            graph,
            context_size=3,
            max_workers=1,
            executor="process",
            seed=5,
            batch_window_ms=250.0,
            max_batch=4,
        ) as engine:
            pool = _fast_pool(
                engine, 1, batch_window_ms=250.0, max_batch=4
            )
            monkeypatch.delenv(faults.FAULTS_ENV)
            # Both members join one batch; the worker stalls 1.2s on it.
            # The victim's 0.4s deadline expires mid-batch: it must 504
            # (timeouts + deadline_abandons move by exactly one) while its
            # batchmate rides out the stall and completes normally.
            victim, *_ = engine.submit(QUERY, timeout=0.4)
            survivor, *_ = engine.submit(["Vladimir_Putin"])
            with pytest.raises(DeadlineExceededError):
                victim.result(timeout=10)
            assert survivor.result(timeout=10).results
            stats = engine.stats()
            assert stats.timeouts == 1
            assert stats.workers["deadline_abandons"] == 1
            assert stats.workers["batches"] == 1
            assert stats.workers["batched_members"] == 2
            assert stats.workers["completed"] == 1
