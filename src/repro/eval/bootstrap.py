"""Seeded bootstrap confidence intervals for latency quantiles.

The statistical backbone of the load-profile bench phase and of
``tools/bench_compare.py``: latency distributions are heavy-tailed and
small-sample, so single-number quantiles move run to run even when
nothing changed. The percentile bootstrap (resample with replacement,
re-estimate, take the empirical interval of the re-estimates) puts an
honest uncertainty band around each quantile without assuming a
distribution — two runs "differ" only when their bands do not overlap.

Everything here is deterministic for a fixed ``seed`` (plain
``random.Random``, no global state), so bench reports and comparison
verdicts are reproducible.
"""

from __future__ import annotations

import math
import random


def quantile(samples: "list[float]", q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation on sorted data.

    Matches ``statistics.quantiles(..., method="inclusive")`` at the
    interior cut points and extends cleanly to q=0/q=1. NaN on empty
    input rather than raising — bench phases with zero completed
    requests should render as missing, not crash the report.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile q must be in [0, 1], got {q}")
    if not samples:
        return math.nan
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def bootstrap_quantile_ci(
    samples: "list[float]",
    q: float,
    *,
    iterations: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> "tuple[float, float, float]":
    """``(point, lo, hi)``: the ``q``-quantile and its bootstrap interval.

    Percentile bootstrap: ``iterations`` resamples (with replacement,
    same size as ``samples``), the ``q``-quantile of each, and the
    ``(1-confidence)/2`` / ``1-(1-confidence)/2`` quantiles of those
    re-estimates as the band. Deterministic for a fixed ``seed``.

    With fewer than two samples the band collapses onto the point
    estimate (there is nothing to resample); NaN point on empty input.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    point = quantile(samples, q)
    if len(samples) < 2:
        return point, point, point
    rng = random.Random(seed)
    size = len(samples)
    estimates = []
    for _ in range(iterations):
        resample = [samples[rng.randrange(size)] for _ in range(size)]
        estimates.append(quantile(resample, q))
    tail = (1.0 - confidence) / 2.0
    return point, quantile(estimates, tail), quantile(estimates, 1.0 - tail)


def quantile_report(
    samples: "list[float]",
    *,
    quantiles: "tuple[float, ...]" = (0.50, 0.90, 0.99),
    iterations: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> dict:
    """The JSON-ready ``{"p50": {"value", "ci_lo", "ci_hi"}, ...}`` block.

    One bootstrap per quantile, seeds offset per quantile index so the
    bands are independent draws yet the whole block is deterministic.
    """
    block = {}
    for index, q in enumerate(quantiles):
        point, lo, hi = bootstrap_quantile_ci(
            samples,
            q,
            iterations=iterations,
            confidence=confidence,
            seed=seed + index,
        )
        label = f"p{round(q * 100):02d}" if q < 1.0 else "p100"
        block[label] = {"value": point, "ci_lo": lo, "ci_hi": hi}
    return block
