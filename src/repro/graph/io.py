"""Knowledge-graph persistence.

Graphs round-trip through the N-Triples substrate: forward edges only are
written (the inverse closure is re-derived on load), node names that are
not IRI-safe are written as literals. This is the same convention the
store bridges in :mod:`repro.graph.builder` use.
"""

from __future__ import annotations

from repro.graph.builder import graph_from_store, store_from_graph
from repro.graph.model import KnowledgeGraph
from repro.store.ntriples import load_ntriples_file, save_ntriples_file
from repro.store.triplestore import TripleStore


def save_graph(graph: KnowledgeGraph, path: str) -> int:
    """Write ``graph`` to ``path`` as N-Triples; return the triple count.

    Only forward (non-inverse) edges are serialized; the closure is an
    invariant of the model and restored by :func:`load_graph`.
    """
    store = store_from_graph(graph, include_inverse=False)
    return save_ntriples_file(path, sorted(store.match()))


def load_graph(
    path: str, *, name: str | None = None, add_inverse: bool = True
) -> KnowledgeGraph:
    """Load a graph previously written by :func:`save_graph`.

    ``add_inverse`` re-applies the Section-2 closure (default); disable it
    only for files that already contain both directions.
    """
    store = TripleStore(load_ntriples_file(path))
    graph = graph_from_store(store, name=name or path, add_inverse=add_inverse)
    return graph
