"""Streaming bulk ingest: dump → CSR snapshot, no dict graph in between.

The legacy cold start materializes a :class:`~repro.graph.model.KnowledgeGraph`
— per-node dicts of Python sets — just to throw it away after
:func:`~repro.graph.compiled.compile_graph` runs. On public-KB-scale
dumps (tens of millions of triples) that dict graph dominates both
memory and boot time. This module compiles a triple stream **directly**
into the eight :data:`~repro.graph.compiled.ARRAY_FIELDS` arrays:

* **pass 1 — the edge stream**: each parsed triple is interned on the
  fly (subject, object, then forward/inverse label — the exact
  first-mention order :meth:`KnowledgeGraph.add_edge` uses, so ids come
  out identical to the dict-graph build) and appended to three compact
  ``int64`` id buffers. Per-edge state is 24 bytes, not a dict entry in
  a set in a list.
* **pass 2 — the id buffers**: one ``lexsort`` puts edges in the
  snapshot's canonical ``(source, label, target)`` order, a vectorized
  neighbour-compare drops duplicate statements (triples are idempotent,
  Definition 1), and ``bincount``/``cumsum`` produce the CSR index
  arrays, label-major slices and Equation-1 weights — the same counting
  :func:`compile_graph` does per-node in Python, done once over flat
  arrays.

The output is **byte-identical** to ``graph_from_store(...)`` followed
by ``graph.compiled()`` on every array (``tests/test_disk_ingest.py``
pins this), which is what lets :func:`repro.datasets.loader.to_snapshot`
and ``repro compile`` feed the same serving stack as a live graph.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.disk.store import _take, save_snapshot
from repro.graph.compiled import CompiledGraph
from repro.graph.labels import LabelTable, inverse_label

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    import os
    from collections.abc import Iterable, Sequence

#: str(subject), str(label), str(object) — the shape the parsers yield
#: after term stringification (identical to graph_from_store's input).
TripleNames = "tuple[str, str, str]"


@dataclass(frozen=True)
class IngestStats:
    """What one bulk ingest produced (and how much input it chewed)."""

    nodes: int
    edges: int
    labels: int
    #: Statements read from the stream (before closure and dedup).
    triples: int
    #: Duplicate edges dropped by the canonicalization pass.
    duplicates: int
    #: Snapshot file size, when the compile was written to disk.
    bytes_written: int = 0
    #: Edges deleted by a delta merge (always 0 for a bulk ingest).
    removed: int = 0


def _compile_canonical(
    sources: np.ndarray,
    label_ids: np.ndarray,
    targets: np.ndarray,
    n: int,
    label_count: int,
    *,
    version: int,
) -> CompiledGraph:
    """CSR index arrays + Equation-1 weights from canonical edge columns.

    ``sources`` / ``label_ids`` / ``targets`` must already be in the
    snapshot's canonical ``(source, label, target)`` order with
    duplicates dropped. Both the bulk compile (:meth:`StreamingCompiler.
    finalize`) and the incremental merge (:meth:`StreamingCompiler.
    merge_delta`) funnel through here, which is what makes "same edge
    set in, same bytes out" a structural guarantee rather than a test
    hope.
    """
    edge_total = int(sources.shape[0])

    indptr = np.zeros(n + 1, dtype=np.int64)
    if edge_total:
        np.cumsum(np.bincount(sources, minlength=n), out=indptr[1:])

    label_order = np.argsort(label_ids, kind="stable").astype(np.int64, copy=False)
    label_counts = (
        np.bincount(label_ids, minlength=label_count)
        if edge_total
        else np.zeros(label_count, dtype=np.int64)
    )
    label_indptr = np.zeros(label_count + 1, dtype=np.int64)
    np.cumsum(label_counts, out=label_indptr[1:])

    label_weights = np.zeros(label_count, dtype=np.float64)
    if edge_total:
        live = label_counts > 0
        label_weights[live] = 1.0 - label_counts[live] / edge_total
    out_weight = (
        np.bincount(sources, weights=label_weights[label_ids], minlength=n)
        if edge_total
        else np.zeros(n, dtype=np.float64)
    )

    arrays = {
        "indptr": indptr,
        "sources": sources,
        "label_ids": label_ids,
        "targets": targets,
        "label_indptr": label_indptr,
        "label_order": label_order,
        "label_weights": label_weights,
        "out_weight": out_weight,
    }
    return CompiledGraph.from_arrays(
        version=version,
        node_count=n,
        label_count=label_count,
        arrays=arrays,
    )


class StreamingCompiler:
    """Accumulates a triple stream and compiles it straight to CSR.

    Feed string triples with :meth:`add`, then call :meth:`finalize`
    once. ``node_names`` / ``label_names`` optionally pre-intern the
    vocabulary in a caller-fixed id order — how
    :func:`~repro.datasets.loader.to_snapshot` reproduces an existing
    graph's ids exactly; without them, ids follow first mention in the
    stream (matching the dict-graph build from the same stream).
    """

    def __init__(
        self,
        *,
        add_inverse: bool = True,
        node_names: "Sequence[str] | None" = None,
        label_names: "Sequence[str] | None" = None,
    ) -> None:
        self._add_inverse = add_inverse
        self._names: list[str] = []
        self._name_to_id: dict[str, int] = {}
        self._labels = LabelTable()
        # Compact per-edge buffers: 8 bytes per column per edge.
        self._src = array("q")
        self._lab = array("q")
        self._dst = array("q")
        self._triples = 0
        if node_names is not None:
            for name in node_names:
                self._intern_node(name)
        if label_names is not None:
            for label in label_names:
                self._labels.intern(label)

    def _intern_node(self, name: str) -> int:
        existing = self._name_to_id.get(name)
        if existing is not None:
            return existing
        if not isinstance(name, str) or not name:
            raise ValueError(f"node name must be a non-empty string, got {name!r}")
        node_id = len(self._names)
        self._names.append(name)
        self._name_to_id[name] = node_id
        return node_id

    def add(self, subject: str, label: str, obj: str) -> None:
        """Ingest one statement (plus its inverse-closure edge by default)."""
        src = self._intern_node(subject)
        dst = self._intern_node(obj)
        label_id = self._labels.intern(label)
        self._src.append(src)
        self._lab.append(label_id)
        self._dst.append(dst)
        if self._add_inverse:
            inverse_id = self._labels.intern(inverse_label(label))
            self._src.append(dst)
            self._lab.append(inverse_id)
            self._dst.append(src)
        self._triples += 1

    def extend(self, triples: "Iterable[tuple[str, str, str]]") -> None:
        """Ingest many statements (the streaming entry point)."""
        for subject, label, obj in triples:
            self.add(subject, label, obj)

    def finalize(
        self, *, version: int = 0
    ) -> "tuple[CompiledGraph, list[str], LabelTable, IngestStats]":
        """Sort, dedupe, and count the id buffers into a snapshot.

        Returns ``(compiled, node_names, label_table, stats)``. The
        arrays are constructed exactly as
        :func:`~repro.graph.compiled.compile_graph` constructs them from
        a dict graph — same ordering, same dtypes, same weight formulas
        — so the two paths are byte-interchangeable.
        """
        src = np.frombuffer(self._src, dtype=np.int64) if self._src else (
            np.empty(0, dtype=np.int64)
        )
        lab = np.frombuffer(self._lab, dtype=np.int64) if self._lab else (
            np.empty(0, dtype=np.int64)
        )
        dst = np.frombuffer(self._dst, dtype=np.int64) if self._dst else (
            np.empty(0, dtype=np.int64)
        )
        n = len(self._names)
        label_count = len(self._labels)

        # Canonical order: (source, label, target) — the node-major row
        # order of compile_graph (labels ascending per node, targets
        # ascending per label).
        order = np.lexsort((dst, lab, src))
        sources = src[order]
        label_ids = lab[order]
        targets = dst[order]
        if sources.shape[0]:
            # Duplicate statements collapse (idempotent triples): a row
            # equal to its predecessor in all three columns is dropped.
            keep = np.empty(sources.shape[0], dtype=bool)
            keep[0] = True
            keep[1:] = (
                (sources[1:] != sources[:-1])
                | (label_ids[1:] != label_ids[:-1])
                | (targets[1:] != targets[:-1])
            )
            sources = np.ascontiguousarray(sources[keep])
            label_ids = np.ascontiguousarray(label_ids[keep])
            targets = np.ascontiguousarray(targets[keep])
        edge_total = int(sources.shape[0])
        duplicates = int(src.shape[0]) - edge_total

        compiled = _compile_canonical(
            sources, label_ids, targets, n, label_count, version=version
        )
        stats = IngestStats(
            nodes=n,
            edges=edge_total,
            labels=label_count,
            triples=self._triples,
            duplicates=duplicates,
        )
        return compiled, self._names, self._labels, stats

    @classmethod
    def merge_delta(
        cls,
        compiled: CompiledGraph,
        node_names: "Sequence[str]",
        label_names: "Iterable[str]",
        adds: "Sequence[tuple[str, str, str]]",
        removes: "Sequence[tuple[str, str, str]]",
        *,
        add_inverse: bool = True,
        version: int = 0,
    ) -> "tuple[CompiledGraph, list[str], LabelTable, IngestStats]":
        """Fold one delta batch into an existing snapshot's arrays.

        The incremental write path: instead of re-running the whole
        triple stream, the existing canonical edge columns are merged
        with the batch's add/remove edges in one lexsort over
        ``E + adds + removes`` rows. The existing vocabulary is copied
        verbatim (ids never move, nothing is re-interned); ``adds``
        intern any *new* names in statement order with the exact
        first-mention sequence :meth:`add` uses, so the result is
        byte-identical to a full recompile of the final statement set
        with the chain's accumulated vocabulary pre-interned
        (``tests/test_delta_parity.py`` pins this differentially).

        ``adds`` / ``removes`` must be a canonical batch
        (:func:`repro.disk.delta.canonicalize_ops`): disjoint under
        inversion closure, deduplicated, sorted. Removes are
        lookup-only — a remove naming an unknown node or label is a
        no-op, and removal always targets both orientations of the
        statement (matching how ``add_inverse`` compiled them in).

        Returns ``(compiled, node_names, label_table, stats)`` exactly
        like :meth:`finalize`; ``stats.removed`` counts the edge rows
        deleted, ``stats.duplicates`` the added rows that already
        existed.
        """
        names = _take(node_names, compiled.node_count)
        name_to_id = {name: index for index, name in enumerate(names)}
        labels = LabelTable()
        for label in label_names:
            if len(labels) == compiled.label_count:
                break
            labels.intern(label)
        if len(labels) != compiled.label_count:
            raise ValueError(
                f"need {compiled.label_count} label names, got {len(labels)}"
            )

        def intern_node(name: str) -> int:
            existing = name_to_id.get(name)
            if existing is not None:
                return existing
            if not isinstance(name, str) or not name:
                raise ValueError(
                    f"node name must be a non-empty string, got {name!r}"
                )
            node_id = len(names)
            names.append(name)
            name_to_id[name] = node_id
            return node_id

        # Added edges: intern in the exact add() order (subject, object,
        # forward label, inverse label), both directions when the base
        # was compiled with inverse closure.
        add_src = array("q")
        add_lab = array("q")
        add_dst = array("q")
        for subject, label, obj in adds:
            src = intern_node(subject)
            dst = intern_node(obj)
            label_id = labels.intern(label)
            add_src.append(src)
            add_lab.append(label_id)
            add_dst.append(dst)
            if add_inverse:
                inverse_id = labels.intern(inverse_label(label))
                add_src.append(dst)
                add_lab.append(inverse_id)
                add_dst.append(src)

        # Removed edges: lookups only — removes never grow the
        # vocabulary, and each orientation is resolved independently.
        rem_src = array("q")
        rem_lab = array("q")
        rem_dst = array("q")
        for subject, label, obj in removes:
            oriented = [(subject, label, obj)]
            if add_inverse:
                oriented.append((obj, inverse_label(label), subject))
            for edge_subject, edge_label, edge_object in oriented:
                src = name_to_id.get(edge_subject)
                dst = name_to_id.get(edge_object)
                label_id = labels.lookup(edge_label)
                if src is None or dst is None or label_id is None:
                    continue
                rem_src.append(src)
                rem_lab.append(label_id)
                rem_dst.append(dst)

        base = compiled.arrays()
        base_edges = int(base["sources"].shape[0])
        added_rows = len(add_src)
        removed_rows = len(rem_src)

        def column(base_column: np.ndarray, add_buf, rem_buf) -> np.ndarray:
            parts = [np.asarray(base_column, dtype=np.int64)]
            parts.append(
                np.frombuffer(add_buf, dtype=np.int64)
                if add_buf
                else np.empty(0, dtype=np.int64)
            )
            parts.append(
                np.frombuffer(rem_buf, dtype=np.int64)
                if rem_buf
                else np.empty(0, dtype=np.int64)
            )
            return np.concatenate(parts)

        all_src = column(base["sources"], add_src, rem_src)
        all_lab = column(base["label_ids"], add_lab, rem_lab)
        all_dst = column(base["targets"], add_dst, rem_dst)
        flag = np.zeros(all_src.shape[0], dtype=np.int64)
        flag[base_edges + added_rows :] = 1

        n = len(names)
        label_count = len(labels)
        deleted = 0
        if all_src.shape[0]:
            # One lexsort groups equal (source, label, target) rows with
            # remove markers (flag 1) sorted after keep candidates
            # (flag 0). A group containing a marker is deleted wholesale;
            # surviving groups collapse to their first row — the same
            # neighbour-compare dedup finalize() applies.
            order = np.lexsort((flag, all_dst, all_lab, all_src))
            row_src = all_src[order]
            row_lab = all_lab[order]
            row_dst = all_dst[order]
            row_flag = flag[order]
            total = row_src.shape[0]
            new_group = np.empty(total, dtype=bool)
            new_group[0] = True
            new_group[1:] = (
                (row_src[1:] != row_src[:-1])
                | (row_lab[1:] != row_lab[:-1])
                | (row_dst[1:] != row_dst[:-1])
            )
            group_id = np.cumsum(new_group) - 1
            last_of_group = np.empty(total, dtype=bool)
            last_of_group[:-1] = new_group[1:]
            last_of_group[-1] = True
            # Within a group flags are sorted, so the last row carries
            # the group's "has a remove marker" bit.
            group_removed = row_flag[last_of_group] == 1
            keep = new_group & (row_flag == 0) & ~group_removed[group_id]
            deleted = int(
                np.count_nonzero((row_flag == 0) & group_removed[group_id])
            )
            sources = np.ascontiguousarray(row_src[keep])
            label_ids = np.ascontiguousarray(row_lab[keep])
            targets = np.ascontiguousarray(row_dst[keep])
        else:
            sources = np.empty(0, dtype=np.int64)
            label_ids = np.empty(0, dtype=np.int64)
            targets = np.empty(0, dtype=np.int64)

        edge_total = int(sources.shape[0])
        duplicates = base_edges + added_rows - edge_total - deleted
        merged = _compile_canonical(
            sources, label_ids, targets, n, label_count, version=version
        )
        stats = IngestStats(
            nodes=n,
            edges=edge_total,
            labels=label_count,
            triples=len(adds) + len(removes),
            duplicates=duplicates,
            removed=deleted,
        )
        return merged, names, labels, stats


def merge_snapshot_file(
    base_path: "str | os.PathLike[str]",
    batches: "Iterable[tuple[Sequence[tuple[str, str, str]], Sequence[tuple[str, str, str]]]]",
    out_path: "str | os.PathLike[str]",
    *,
    version: int,
    graph_name: "str | None" = None,
    add_inverse: bool = True,
    include_transition: bool = True,
) -> IngestStats:
    """Apply delta batches to a snapshot file, writing a fresh snapshot.

    Opens ``base_path``, folds each ``(adds, removes)`` batch in
    sequence via :meth:`StreamingCompiler.merge_delta`, and persists the
    result (with a rebuilt frozen transition by default, like the bulk
    path). The registry's merge and compaction jobs both funnel through
    here — an incrementally merged snapshot *is* a full snapshot, the
    chain bookkeeping lives purely in the manifest.
    """
    from repro.disk.store import open_snapshot

    snapshot = open_snapshot(base_path)
    try:
        compiled = snapshot.compiled
        names: "Sequence[str]" = snapshot.node_names
        labels: "Iterable[str]" = snapshot.label_table
        stats = None
        triples = duplicates = removed = 0
        for adds, removes in batches:
            compiled, names, labels, stats = StreamingCompiler.merge_delta(
                compiled,
                names,
                labels,
                adds,
                removes,
                add_inverse=add_inverse,
                version=version,
            )
            triples += stats.triples
            duplicates += stats.duplicates
            removed += stats.removed
        if stats is None:
            # No batches: re-stamp the base as-is under the new version.
            compiled, names, labels, stats = StreamingCompiler.merge_delta(
                compiled, names, labels, (), (), add_inverse=add_inverse,
                version=version,
            )
        transition = None
        if include_transition:
            from repro.graph.matrix import transition_from_snapshot

            transition = transition_from_snapshot(compiled)
        written = save_snapshot(
            compiled,
            list(names),
            [labels.name(label_id) for label_id in range(len(labels))],
            out_path,
            graph_name=graph_name or snapshot.header.graph_name,
            transition=transition,
        )
    finally:
        snapshot.close()
    # Counters aggregate across batches; sizes come from the final merge.
    return IngestStats(
        nodes=stats.nodes,
        edges=stats.edges,
        labels=stats.labels,
        triples=triples,
        duplicates=duplicates,
        bytes_written=written,
        removed=removed,
    )


def compile_triples(
    triples: "Iterable[tuple[str, str, str]]",
    *,
    add_inverse: bool = True,
    node_names: "Sequence[str] | None" = None,
    label_names: "Sequence[str] | None" = None,
    version: int = 0,
) -> "tuple[CompiledGraph, list[str], LabelTable, IngestStats]":
    """Compile a string-triple stream to a snapshot in one call."""
    compiler = StreamingCompiler(
        add_inverse=add_inverse, node_names=node_names, label_names=label_names
    )
    compiler.extend(triples)
    return compiler.finalize(version=version)


def ingest_triples(
    triples: "Iterable[tuple[str, str, str]]",
    path: "str | os.PathLike[str]",
    *,
    graph_name: str = "knowledge-graph",
    add_inverse: bool = True,
    include_transition: bool = True,
    node_names: "Sequence[str] | None" = None,
    label_names: "Sequence[str] | None" = None,
    version: int = 0,
) -> IngestStats:
    """Compile a triple stream and persist it as a snapshot file.

    With ``include_transition`` (default) the frozen Equation-2
    transition matrix is derived from the fresh arrays and baked into
    the file, so the first ``repro serve --snapshot`` pays no warm-up.
    """
    compiled, names, labels, stats = compile_triples(
        triples,
        add_inverse=add_inverse,
        node_names=node_names,
        label_names=label_names,
        version=version,
    )
    transition = None
    if include_transition:
        from repro.graph.matrix import transition_from_snapshot

        transition = transition_from_snapshot(compiled)
    written = save_snapshot(
        compiled,
        names,
        [labels.name(label_id) for label_id in range(len(labels))],
        path,
        graph_name=graph_name,
        transition=transition,
    )
    return IngestStats(
        nodes=stats.nodes,
        edges=stats.edges,
        labels=stats.labels,
        triples=stats.triples,
        duplicates=stats.duplicates,
        bytes_written=written,
    )


def detect_format(path: "str | os.PathLike[str]") -> str:
    """``"nt"`` or ``"tsv"`` from the dump's file extension."""
    import os as _os

    suffix = _os.path.splitext(_os.fspath(path))[1].lower()
    if suffix in (".nt", ".ntriples", ".n3"):
        return "nt"
    if suffix in (".tsv", ".txt"):
        return "tsv"
    raise ValueError(
        f"cannot infer dump format from {path!r} (expected .nt/.ntriples or "
        f".tsv); pass format explicitly"
    )


def ingest_file(
    dump_path: "str | os.PathLike[str]",
    snapshot_path: "str | os.PathLike[str]",
    *,
    fmt: str = "auto",
    graph_name: "str | None" = None,
    add_inverse: bool = True,
    include_transition: bool = True,
    version: int = 0,
) -> IngestStats:
    """Stream an N-Triples or YAGO-TSV dump into a snapshot file.

    The whole ``repro compile`` path: parse each line, stringify terms
    exactly as :func:`~repro.graph.builder.graph_from_store` does, feed
    the :class:`StreamingCompiler` — never building the dict graph.
    ``fmt`` is ``"nt"``, ``"tsv"``, or ``"auto"`` (by extension).
    ``version`` is stamped into the snapshot header — the registry
    (:mod:`repro.disk.registry`) passes its monotonic id here so hot
    swaps key result caches correctly.
    """
    import os as _os

    if fmt == "auto":
        fmt = detect_format(dump_path)
    if fmt == "nt":
        from repro.store.ntriples import load_ntriples_file

        parsed = load_ntriples_file(_os.fspath(dump_path))
    elif fmt == "tsv":
        from repro.store.tsv import load_tsv_file

        parsed = load_tsv_file(_os.fspath(dump_path))
    else:
        raise ValueError(f"unknown dump format {fmt!r} (expected nt/tsv/auto)")
    return ingest_triples(
        (
            (str(triple.subject), str(triple.predicate), str(triple.object))
            for triple in parsed
        ),
        snapshot_path,
        graph_name=graph_name or _os.fspath(dump_path),
        add_inverse=add_inverse,
        include_transition=include_transition,
        version=version,
    )
