"""Concurrent NC query service: engine, result cache, HTTP front-end.

The step from algorithm to system: :class:`NCEngine` serves many
concurrent FindNC requests over one live :class:`~repro.graph.model.KnowledgeGraph`
by pinning immutable compiled snapshots per request, caching results in a
version-keyed LRU, and coalescing identical in-flight queries. Two
execution backends share that front: ``executor="thread"`` computes on
the engine's thread pool; ``executor="process"`` dispatches to a
:class:`~repro.service.workers.ProcessWorkerPool` over the shared-memory
snapshot (:mod:`repro.parallel`), scaling distinct-query throughput with
cores. The stdlib HTTP server (:mod:`repro.service.server`) exposes it
as a JSON API (``repro serve``); :mod:`repro.service.bench` measures it
(``repro bench-serve``). Snapshot-backed engines additionally hot-swap
between registry versions while serving
(:meth:`NCEngine.swap_snapshot`, ``POST /v1/admin/reload``,
``repro serve --snapshot-dir``). The HTTP surface lives under the
versioned ``/v1/`` prefix; :mod:`repro.service.metrics` exports every
layer's counters/histograms in Prometheus text format at
``GET /v1/metrics``, and :mod:`repro.service.loadgen` replays
Zipf-skewed, entity-centric traffic against it (``repro loadgen``).
See ``src/repro/service/README.md``, ``docs/ARCHITECTURE.md``, and the
operator guide ``docs/OPERATIONS.md``.
"""

from repro.service.cache import CacheStats, ResultCache
from repro.service.engine import (
    CircuitBreaker,
    EngineConfig,
    EngineStats,
    NCEngine,
    SearchOutcome,
    SwapOutcome,
)
from repro.service.faults import FaultInjector, FaultRule
from repro.service.loadgen import (
    LoadEvent,
    LoadProfile,
    LoadReport,
    build_schedule,
    run_load,
)
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
    validate_exposition,
)
from repro.service.server import (
    NCServiceServer,
    RegistryPoller,
    create_server,
    outcome_to_json,
    reload_from_registry,
)
from repro.service.workers import ProcessWorkerPool, WorkerPoolStats

__all__ = [
    "CacheStats",
    "CircuitBreaker",
    "Counter",
    "EngineConfig",
    "EngineStats",
    "FaultInjector",
    "FaultRule",
    "Gauge",
    "Histogram",
    "LoadEvent",
    "LoadProfile",
    "LoadReport",
    "MetricsRegistry",
    "NCEngine",
    "NCServiceServer",
    "ProcessWorkerPool",
    "RegistryPoller",
    "ResultCache",
    "SearchOutcome",
    "ServiceMetrics",
    "SwapOutcome",
    "WorkerPoolStats",
    "build_schedule",
    "create_server",
    "outcome_to_json",
    "reload_from_registry",
    "run_load",
    "validate_exposition",
]
