"""Table 3 — F1 as a function of the number of kept metapaths |M| and |C|.

Paper claims asserted:
* "The number of paths does not affect the score" — at each |C| >= 100 the
  spread of F1 across |M| in {5, 10, 15, 20} stays small;
* quality at |C| >= 100 is not worse than at |C| = 50 (the paper's table
  grows from 0.15-ish at 50 to 0.22-0.23 at 100+).
"""

from conftest import run_once

from repro.eval.experiments import path_count_sweep
from repro.eval.metrics import mean


def test_table3_f1_vs_num_paths(benchmark, setting):
    table = run_once(benchmark, path_count_sweep, setting)
    print()
    print(table.render())

    by_context: dict[int, list[float]] = {}
    for context_size, _num_paths, f1 in table.rows:
        by_context.setdefault(context_size, []).append(f1)

    for context_size, values in by_context.items():
        if context_size >= 100:
            spread = max(values) - min(values)
            assert spread <= 0.15, (
                f"|M| should barely matter at |C|={context_size} "
                f"(spread {spread:.3f})"
            )
    assert mean(by_context[100]) >= mean(by_context[50]) - 0.02
