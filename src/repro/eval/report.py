"""Rendering and persisting experiment results.

`run_all` executes every registered experiment with the given setting and
returns the rendered report; the CLI and the EXPERIMENTS.md refresh script
both go through here.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.eval import experiments as exp
from repro.util.tables import Table


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: id, description, runner."""

    experiment_id: str
    description: str
    runner: Callable[..., Table]


def _fig3(setting=None, **kwargs) -> Table:
    return exp.average_f1_by_context_size(exp.context_size_sweep(setting, **kwargs))


REGISTRY: tuple[ExperimentSpec, ...] = (
    ExperimentSpec("table1", "Query entities per domain", exp.domains_table),
    ExperimentSpec("fig2", "F1 vs context size per query set", exp.context_size_sweep),
    ExperimentSpec("fig3", "Average F1 vs context size", _fig3),
    ExperimentSpec("fig4", "Average F1 vs query size", exp.query_size_sweep),
    ExperimentSpec("fig5", "Time vs query size", exp.time_vs_query_size),
    ExperimentSpec("fig6", "Time vs max metapath length", exp.time_vs_path_length),
    ExperimentSpec("table2", "ContextRW on YAGO vs LinkedMDB", exp.dataset_comparison),
    ExperimentSpec("table3", "F1 vs number of paths and context size", exp.path_count_sweep),
    ExperimentSpec("fig7", "Instance distribution of 'created'", exp.distribution_figure),
    ExperimentSpec(
        "fig8",
        "Cardinality distribution of 'hasWonPrize'",
        lambda setting=None, **kw: exp.distribution_figure(
            setting, label="hasWonPrize", channel="cardinality", **kw
        ),
    ),
    ExperimentSpec("fig9", "FindNC vs RWMult significance", exp.significance_comparison),
    ExperimentSpec("metrics", "Ranking switches vs expert ranking", exp.metrics_comparison),
    ExperimentSpec("authors", "Adams/Pratchett test case", exp.authors_testcase),
)


def experiment_ids() -> list[str]:
    return [spec.experiment_id for spec in REGISTRY]


def get_experiment(experiment_id: str) -> ExperimentSpec:
    for spec in REGISTRY:
        if spec.experiment_id == experiment_id:
            return spec
    raise KeyError(
        f"unknown experiment {experiment_id!r}; available: {', '.join(experiment_ids())}"
    )


def run_experiment(
    experiment_id: str, setting: "exp.ExperimentSetting | None" = None, **kwargs
) -> Table:
    """Run one experiment by id and return its table."""
    return get_experiment(experiment_id).runner(setting, **kwargs)


def render_report(
    experiment_ids_to_run: Sequence[str],
    setting: "exp.ExperimentSetting | None" = None,
    *,
    markdown: bool = False,
) -> str:
    """Run several experiments and concatenate their rendered tables."""
    sections: list[str] = []
    for experiment_id in experiment_ids_to_run:
        spec = get_experiment(experiment_id)
        table = spec.runner(setting)
        sections.append(f"## {spec.experiment_id} — {spec.description}")
        sections.append(table.render(markdown=markdown))
        sections.append("")
    return "\n".join(sections)
