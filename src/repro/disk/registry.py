"""Multi-version snapshot registry: the directory layout behind hot swaps.

One :class:`~repro.disk.store` snapshot file holds one graph version;
this module manages a **directory** of them so a server can keep serving
version *N* while version *N+1* is published, then swap atomically and
let *N* drain (see :meth:`repro.service.engine.NCEngine.swap_snapshot`).
The layout::

    <dir>/
      MANIFEST.json      - registry index: latest version + per-version rows
      v000001.snap       - snapshot files, one per published version
      v000002.snap
      v000001-d0000.delta - delta runs appended against base v1 (live ingest)
      ...

**Delta chains.** Live ingest (:mod:`repro.disk.delta`) appends
immutable run files against a chain *base* — the newest full publish.
Merged snapshots record their provenance in the manifest row (``base`` +
``deltas``: which runs produced them); :meth:`SnapshotRegistry.
append_delta` writes a run, :meth:`SnapshotRegistry.merge_pending`
folds unmerged runs into a fresh serving snapshot, and
:meth:`SnapshotRegistry.compact` collapses the chain into a fresh full
version with no provenance, after which GC can drop the old base and
its runs. Every merged snapshot is physically self-contained — the
chain is bookkeeping, not a read-path indirection.

**Monotonic version ids.** Every publish allocates ``latest + 1`` and
bakes it into the snapshot file's own header (the ``version`` field the
engine keys its result cache on), so two registry versions can never
collide in the cache even when they hold identical graph content. The
id space is append-only: versions are never renumbered or reused, even
after GC.

**Atomic publish.** The snapshot file is written first (temp file +
``os.replace``, inherited from :func:`~repro.disk.store.save_snapshot`),
the manifest second (same temp + rename). A reader therefore never
observes a manifest row whose file is missing or torn; a crash between
the two steps leaves an orphaned file that the next publish simply
skips past (version allocation also scans the directory).

**Retention / GC.** :meth:`SnapshotRegistry.gc` keeps the newest
``retain`` versions (plus anything in ``keep`` — the version a server is
still draining, say — plus every chain base a surviving row still
references, and the runs of every retained base) and unlinks the rest. POSIX semantics make this
safe under load: a process with the old file mapped keeps reading it
after the unlink; only *new* opens fail, which the worker pool already
surfaces as a retriable :class:`~repro.parallel.shm.StaleSnapshotError`.

The serving integration — ``repro serve --snapshot-dir``, the
``POST /admin/reload`` endpoint and the manifest-mtime poller — lives in
:mod:`repro.service.server`; ``repro publish`` is the CLI entry point.
Operator documentation: ``docs/OPERATIONS.md``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING

try:  # POSIX advisory locks; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.errors import ReproError
from repro.disk.store import (
    MAGIC,
    DiskSnapshot,
    open_snapshot,
    save_snapshot,
)
from repro.graph.compiled import CompiledGraph

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from collections.abc import Iterable

    from repro.disk.delta import DeltaLog, DeltaRun
    from repro.graph.model import KnowledgeGraph
    from repro.parallel.shm import SnapshotGraphView

#: The manifest's own format version; bump on incompatible layout changes.
MANIFEST_FORMAT = 1

#: The registry index file name inside a snapshot directory.
MANIFEST_NAME = "MANIFEST.json"


class RegistryError(ReproError):
    """The snapshot directory is missing, malformed, or inconsistent."""


def is_snapshot_file(path: "str | os.PathLike[str]") -> bool:
    """Whether ``path`` starts with the snapshot store's magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


@dataclass(frozen=True)
class RegistryEntry:
    """One published version: the manifest row, plus its resolved path."""

    version: int
    file: str
    path: str
    graph_name: str
    nodes: int
    edges: int
    labels: int
    bytes: int
    published_unix: int
    #: The chain base this version was incrementally merged from, or
    #: ``None`` for a self-standing publish/compact product.
    base: "int | None" = None
    #: Run file names (chain order) folded into this version so far.
    deltas: "tuple[str, ...]" = ()

    def as_dict(self) -> dict:
        """The JSON shape stored in the manifest (``path`` is derived)."""
        row = {
            "version": self.version,
            "file": self.file,
            "graph_name": self.graph_name,
            "nodes": self.nodes,
            "edges": self.edges,
            "labels": self.labels,
            "bytes": self.bytes,
            "published_unix": self.published_unix,
        }
        if self.base is not None:
            row["base"] = self.base
            row["deltas"] = list(self.deltas)
        return row


def _version_filename(version: int) -> str:
    return f"v{version:06d}.snap"


class SnapshotRegistry:
    """A directory of versioned snapshot files with an atomic manifest.

    >>> # registry = SnapshotRegistry("serving/")         # doctest stub
    >>> # entry = registry.publish_graph(graph)           # -> v1
    >>> # entry = registry.publish("delta-dump.nt")       # -> v2
    >>> # registry.latest().version
    >>> # registry.gc(retain=2)

    The registry object is cheap: it holds the directory path and the
    parsed manifest; :meth:`refresh` re-reads the manifest so several
    processes (a publisher CLI and a serving process, say) can share one
    directory. Manifest **writers** — publishes and :meth:`gc` (which a
    ``--retain`` server runs after each swap) — serialize on a
    cross-process advisory lock (``.registry.lock`` via ``flock``) and
    re-read the manifest before mutating it, so a publisher and a
    GC'ing server compose without losing each other's rows. Readers
    never need the lock (atomic renames). On platforms without
    ``fcntl`` the lock degrades to best-effort single-process safety —
    there, run one writer at a time.
    """

    def __init__(self, directory: "str | os.PathLike[str]", *, create: bool = True) -> None:
        self.directory = os.path.abspath(os.fspath(directory))
        if not os.path.isdir(self.directory):
            if not create:
                raise RegistryError(f"{self.directory}: not a directory")
            os.makedirs(self.directory, exist_ok=True)
        self._entries: "list[RegistryEntry]" = []
        self.refresh()

    # -- manifest ----------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        """Absolute path of the registry's ``MANIFEST.json``."""
        return os.path.join(self.directory, MANIFEST_NAME)

    @contextmanager
    def _writer_lock(self):
        """Cross-process exclusion for manifest writers (publish / GC).

        An ``flock`` on ``.registry.lock`` in the directory: writers
        block each other (a big publish holds it for the whole snapshot
        write, which is the point — version allocation happens under
        it), readers never take it. Yields without locking where
        ``fcntl`` does not exist.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        lock_path = os.path.join(self.directory, ".registry.lock")
        handle = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(handle, fcntl.LOCK_EX)
            yield
        finally:
            os.close(handle)  # closing releases the flock

    def refresh(self) -> None:
        """Re-read the manifest from disk (no-op for a fresh directory)."""
        from repro.service import faults  # lazy: avoids a service<->disk cycle

        path = self.manifest_path
        if faults.fire("registry.manifest"):
            raise RegistryError(
                f"fault injection: manifest {path} is corrupt"
            )
        if not os.path.exists(path):
            self._entries = []
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise RegistryError(f"{path}: unreadable manifest ({error})") from error
        if manifest.get("format") != MANIFEST_FORMAT:
            raise RegistryError(
                f"{path}: unsupported manifest format {manifest.get('format')!r} "
                f"(this build reads format {MANIFEST_FORMAT})"
            )
        entries = []
        for row in manifest.get("versions", []):
            # Explicit field-by-field construction: a manifest written by
            # a newer build may carry keys this build does not know, and
            # an older build's rows lack the chain fields entirely.
            entries.append(
                RegistryEntry(
                    version=row["version"],
                    file=row["file"],
                    path=os.path.join(self.directory, row["file"]),
                    graph_name=row["graph_name"],
                    nodes=row["nodes"],
                    edges=row["edges"],
                    labels=row["labels"],
                    bytes=row["bytes"],
                    published_unix=row["published_unix"],
                    base=row.get("base"),
                    deltas=tuple(row.get("deltas", ())),
                )
            )
        entries.sort(key=lambda entry: entry.version)
        self._entries = entries

    def _write_manifest(self) -> None:
        """Persist the manifest atomically (temp file + rename)."""
        manifest = {
            "format": MANIFEST_FORMAT,
            "latest": self._entries[-1].version if self._entries else 0,
            "versions": [entry.as_dict() for entry in self._entries],
        }
        tmp_path = f"{self.manifest_path}.tmp.{os.getpid()}"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, self.manifest_path)

    def mtime_token(self) -> "tuple[int, int]":
        """A cheap change token for pollers: manifest ``(mtime_ns, size)``.

        ``(0, 0)`` for a directory with no manifest yet. The serve-side
        poller re-checks this between polls and only opens the manifest
        when the token moved.
        """
        try:
            stat = os.stat(self.manifest_path)
        except OSError:
            return (0, 0)
        return (stat.st_mtime_ns, stat.st_size)

    # -- introspection -----------------------------------------------------

    def versions(self) -> "tuple[RegistryEntry, ...]":
        """Every published version still in the manifest, oldest first."""
        return tuple(self._entries)

    def latest(self) -> "RegistryEntry | None":
        """The newest published version, or ``None`` for an empty registry."""
        return self._entries[-1] if self._entries else None

    def entry_for(self, version: int) -> RegistryEntry:
        """The manifest row of ``version`` (raises for unknown/GC'd ones)."""
        for entry in self._entries:
            if entry.version == version:
                return entry
        raise RegistryError(
            f"version {version} is not in the registry at {self.directory}"
        )

    def next_version(self) -> int:
        """The id the next publish will be assigned (monotonic, gap-free
        in the common case; orphaned files from a crashed publish are
        skipped past so ids are never reused)."""
        highest = self._entries[-1].version if self._entries else 0
        for name in os.listdir(self.directory):
            if name.startswith("v") and name.endswith(".snap"):
                try:
                    highest = max(highest, int(name[1:-5]))
                except ValueError:
                    continue
        return highest + 1

    def open_view(self, version: "int | None" = None) -> "SnapshotGraphView":
        """An mmapped :class:`~repro.parallel.shm.SnapshotGraphView` of
        ``version`` (default: the latest) — the object the engine serves
        or swaps onto."""
        from repro.parallel.shm import SnapshotGraphView

        entry = self.latest() if version is None else self.entry_for(version)
        if entry is None:
            raise RegistryError(f"registry at {self.directory} is empty")
        return SnapshotGraphView(open_snapshot(entry.path))

    # -- publishing --------------------------------------------------------

    def publish(
        self,
        source: "str | os.PathLike[str] | KnowledgeGraph",
        *,
        fmt: str = "auto",
        graph_name: "str | None" = None,
        add_inverse: bool = True,
        include_transition: bool = True,
    ) -> RegistryEntry:
        """Publish ``source`` as the next version (the do-what-I-mean door).

        ``source`` may be a live :class:`~repro.graph.model.KnowledgeGraph`,
        an existing snapshot file (recognized by its magic bytes and
        re-stamped with the registry's version id), or an N-Triples/TSV
        dump (streamed through the bulk ingester). Returns the new
        manifest row.
        """
        if hasattr(source, "compiled") and hasattr(source, "version"):
            return self.publish_graph(
                source, include_transition=include_transition  # type: ignore[arg-type]
            )
        path = os.fspath(source)  # type: ignore[arg-type]
        if not os.path.exists(path):
            raise RegistryError(f"publish source {path!r} does not exist")
        if is_snapshot_file(path):
            return self.publish_snapshot_file(path, graph_name=graph_name)
        return self.publish_dump(
            path,
            fmt=fmt,
            graph_name=graph_name,
            add_inverse=add_inverse,
            include_transition=include_transition,
        )

    def publish_graph(
        self,
        graph: "KnowledgeGraph",
        *,
        include_transition: bool = True,
    ) -> RegistryEntry:
        """Publish a live graph's current compiled snapshot as the next
        version (the graph itself is left untouched)."""
        compiled = graph.compiled()
        table = graph._label_table()  # noqa: SLF001 - label ids only grow
        label_names = [table.name(label_id) for label_id in range(compiled.label_count)]
        transition = None
        if include_transition:
            from repro.graph.matrix import transition_from_snapshot

            transition = transition_from_snapshot(compiled)
        return self._publish_compiled(
            compiled,
            graph._node_names_list(),  # noqa: SLF001 - sliced inside save
            label_names,
            graph_name=graph.name,
            transition=transition,
        )

    def publish_snapshot_file(
        self,
        path: "str | os.PathLike[str]",
        *,
        graph_name: "str | None" = None,
    ) -> RegistryEntry:
        """Publish an existing compiled snapshot file as the next version.

        The blocks are copied byte-for-byte; only the header's ``version``
        field is re-stamped with the registry's monotonic id (the engine
        keys its result cache on it, so a re-published file must not keep
        its original version).
        """
        with open_snapshot(path) as source:
            return self._publish_compiled(
                source.compiled,
                source.node_names,
                [
                    source.label_table.name(label_id)
                    for label_id in range(source.header.label_count)
                ],
                graph_name=graph_name or source.header.graph_name,
                transition=source.transition(),
            )

    def publish_dump(
        self,
        dump_path: "str | os.PathLike[str]",
        *,
        fmt: str = "auto",
        graph_name: "str | None" = None,
        add_inverse: bool = True,
        include_transition: bool = True,
    ) -> RegistryEntry:
        """Stream an N-Triples/TSV dump straight into the next version
        (the ``repro publish dump.nt <dir>`` path — never builds the
        dict graph)."""
        from repro.disk.ingest import ingest_file

        with self._writer_lock():
            self.refresh()
            version = self.next_version()
            path = os.path.join(self.directory, _version_filename(version))
            ingest_file(
                dump_path,
                path,
                fmt=fmt,
                graph_name=graph_name,
                add_inverse=add_inverse,
                include_transition=include_transition,
                version=version,
            )
            return self._record(version, path)

    def _publish_compiled(
        self,
        compiled: CompiledGraph,
        node_names,
        label_names,
        *,
        graph_name: str,
        transition,
    ) -> RegistryEntry:
        """Write ``compiled`` re-stamped with the next registry version."""
        with self._writer_lock():
            self.refresh()
            version = self.next_version()
            stamped = CompiledGraph.from_arrays(
                version=version,
                node_count=compiled.node_count,
                label_count=compiled.label_count,
                arrays=compiled.arrays(),
            )
            path = os.path.join(self.directory, _version_filename(version))
            save_snapshot(
                stamped,
                node_names,
                label_names,
                path,
                graph_name=graph_name,
                transition=transition,
            )
            return self._record(version, path)

    def _record(
        self,
        version: int,
        path: str,
        *,
        base: "int | None" = None,
        deltas: "tuple[str, ...]" = (),
    ) -> RegistryEntry:
        """Append the manifest row for a freshly written snapshot file."""
        snap: DiskSnapshot = open_snapshot(path)
        try:
            entry = RegistryEntry(
                version=version,
                file=os.path.basename(path),
                path=path,
                graph_name=snap.header.graph_name,
                nodes=snap.header.node_count,
                edges=snap.compiled.edge_count,
                labels=snap.header.label_count,
                bytes=os.path.getsize(path),
                published_unix=int(time.time()),
                base=base,
                deltas=deltas,
            )
        finally:
            snap.close()
        self._entries.append(entry)
        self._entries.sort(key=lambda item: item.version)
        self._write_manifest()
        return entry

    # -- delta chains ------------------------------------------------------

    def chain_base(self) -> int:
        """The version live-ingest runs append against.

        The newest version's own base when it was merged from a chain,
        else the newest version itself. Raises for an empty registry —
        deltas need a base to be deltas *of*.
        """
        tip = self.latest()
        if tip is None:
            raise RegistryError(
                f"registry at {self.directory} is empty; publish a base "
                f"snapshot before ingesting deltas"
            )
        return tip.base if tip.base is not None else tip.version

    def delta_log(self) -> "DeltaLog":
        """The active chain's :class:`~repro.disk.delta.DeltaLog`."""
        from repro.disk.delta import DeltaLog

        return DeltaLog(self.directory, self.chain_base())

    def pending_runs(self) -> "list[DeltaRun]":
        """Published runs the newest version has not folded in yet.

        Run files whose names are absent from the tip's ``deltas`` list
        — exactly the set :meth:`merge_pending` would merge. Crash
        recovery falls out of this definition: a run published right
        before a crash is still on disk, still unlisted, and therefore
        still pending on restart.
        """
        tip = self.latest()
        if tip is None:
            return []
        merged = set(tip.deltas)
        return [run for run in self.delta_log().runs() if run.file not in merged]

    def append_delta(
        self, ops: "Iterable[tuple[str, tuple[str, str, str]]]"
    ) -> "DeltaRun | None":
        """Durably record a batch of statement ops as the next delta run.

        ``ops`` is a sequence of ``("+" | "-", (subject, label, object))``
        pairs; the batch is canonicalized (net effect per inversion
        class) and published as one immutable run file. Returns the
        :class:`~repro.disk.delta.DeltaRun`, or ``None`` when the batch
        nets out to nothing. The manifest is untouched — a run only
        enters it when a merge folds it in, so a crash here never leaves
        the manifest pointing at a torn file.
        """
        with self._writer_lock():
            self.refresh()
            return self.delta_log().append(ops)

    def merge_pending(
        self,
        *,
        graph_name: "str | None" = None,
        include_transition: bool = True,
    ) -> "RegistryEntry | None":
        """Fold every pending run into a fresh snapshot version.

        Incremental: merges into the *newest* snapshot's arrays (which
        already contain the chain's earlier runs) rather than replaying
        from the base. The new manifest row keeps the chain provenance
        (``base`` + the cumulative run list). Returns the new entry, or
        ``None`` when nothing is pending.
        """
        from repro.disk.ingest import merge_snapshot_file

        with self._writer_lock():
            self.refresh()
            tip = self.latest()
            if tip is None:
                raise RegistryError(
                    f"registry at {self.directory} is empty; publish a base "
                    f"snapshot before merging deltas"
                )
            pending = self.pending_runs()
            if not pending:
                return None
            base_version = tip.base if tip.base is not None else tip.version
            version = self.next_version()
            path = os.path.join(self.directory, _version_filename(version))
            merge_snapshot_file(
                tip.path,
                [run.read() for run in pending],
                path,
                version=version,
                graph_name=graph_name,
                include_transition=include_transition,
            )
            return self._record(
                version,
                path,
                base=base_version,
                deltas=tuple(tip.deltas) + tuple(run.file for run in pending),
            )

    def compact(
        self,
        *,
        graph_name: "str | None" = None,
        include_transition: bool = True,
    ) -> "RegistryEntry | None":
        """Collapse the active chain into a fresh full version.

        Folds any still-pending runs and publishes the result *without*
        chain provenance — the new version is a self-standing root, so
        once older chained rows age out of retention, :meth:`gc` can
        finally drop the old base and every run file. Returns the new
        entry, or ``None`` when the registry is already compact (no
        chain, nothing pending).

        The ``registry.compact`` fault point fires between writing the
        snapshot and recording it: a crash there leaves an orphaned
        ``v*.snap`` the next version allocation skips past, never a
        manifest row for a missing file.
        """
        from repro.disk.ingest import merge_snapshot_file
        from repro.service import faults  # lazy: avoids a service<->disk cycle

        with self._writer_lock():
            self.refresh()
            tip = self.latest()
            if tip is None:
                raise RegistryError(
                    f"registry at {self.directory} is empty; nothing to compact"
                )
            pending = self.pending_runs()
            if tip.base is None and not pending:
                return None
            version = self.next_version()
            path = os.path.join(self.directory, _version_filename(version))
            merge_snapshot_file(
                tip.path,
                [run.read() for run in pending],
                path,
                version=version,
                graph_name=graph_name,
                include_transition=include_transition,
            )
            if faults.fire("registry.compact"):
                raise RegistryError(
                    f"fault injection: crashed before recording compacted "
                    f"version {version}"
                )
            return self._record(version, path)

    # -- retention ---------------------------------------------------------

    def gc(
        self, *, retain: int = 2, keep: "Iterable[int]" = ()
    ) -> "list[RegistryEntry]":
        """Unlink drained versions, keeping the newest ``retain`` plus
        ``keep``.

        ``keep`` names versions that must survive regardless of age —
        typically the version a serving process is still draining.
        A surviving row's chain ``base`` is a retained *root*: it
        survives too, however old, because it anchors the run files'
        provenance and the chain's crash-recovery replay. Run files
        (``v*-d*.delta``) of bases no surviving row references — and
        that the active chain no longer appends to — are unlinked along
        with the snapshots.

        Returns the removed entries. Removing a file that a process still
        has mapped is safe (POSIX keeps the pages readable); a *new*
        attach of a removed version fails and is surfaced to the engine
        as a retriable stale-snapshot condition.
        """
        from repro.disk.delta import _RUN_PATTERN

        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        pinned = set(keep)
        with self._writer_lock():
            # Re-read under the lock: a publish that landed since this
            # object's last refresh must survive the manifest rewrite.
            self.refresh()
            survivors = {entry.version for entry in self._entries[-retain:]}
            survivors |= pinned
            # Chain bases referenced by surviving rows are retained
            # roots (bases are always self-standing rows, so one pass
            # suffices — chains never nest).
            survivors |= {
                entry.base
                for entry in self._entries
                if entry.version in survivors and entry.base is not None
            }
            removed: "list[RegistryEntry]" = []
            kept: "list[RegistryEntry]" = []
            for entry in self._entries:
                if entry.version in survivors:
                    kept.append(entry)
                    continue
                try:
                    os.unlink(entry.path)
                except FileNotFoundError:
                    pass
                removed.append(entry)
            if removed:
                self._entries = kept
                self._write_manifest()
            # Delta runs live as long as their base is a live chain
            # anchor: the base of any remaining chained row, or the
            # version new runs are currently appended against.
            retained_bases = {
                entry.base for entry in self._entries if entry.base is not None
            }
            tip = self._entries[-1] if self._entries else None
            if tip is not None:
                retained_bases.add(
                    tip.base if tip.base is not None else tip.version
                )
            for name in os.listdir(self.directory):
                match = _RUN_PATTERN.match(name)
                if match is None or int(match.group(1)) in retained_bases:
                    continue
                try:
                    os.unlink(os.path.join(self.directory, name))
                except FileNotFoundError:
                    pass
        return removed

    def summary(self) -> str:
        """One-line digest for logs and the CLI."""
        latest = self.latest()
        if latest is None:
            return f"snapshot registry {self.directory}: empty"
        chain = ""
        if latest.base is not None:
            chain = f", chain base v{latest.base} + {len(latest.deltas)} delta(s)"
        pending = len(self.pending_runs())
        if pending:
            chain += f", {pending} pending run(s)"
        return (
            f"snapshot registry {self.directory}: {len(self._entries)} "
            f"version(s), latest v{latest.version} "
            f"(|V|={latest.nodes}, |E|={latest.edges}){chain}"
        )
