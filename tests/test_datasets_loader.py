"""Unit tests for the dataset registry."""

import pytest

from repro.datasets.loader import clear_dataset_cache, dataset_names, load_dataset


class TestLoader:
    def test_dataset_names(self):
        assert set(dataset_names()) == {"yago", "linkedmdb", "figure1"}

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("wikidata")

    def test_memoization(self):
        a = load_dataset("figure1")
        b = load_dataset("figure1")
        assert a is b

    def test_cache_clear(self):
        a = load_dataset("figure1")
        clear_dataset_cache()
        b = load_dataset("figure1")
        assert a is not b

    def test_scale_is_part_of_key(self):
        a = load_dataset("yago", scale=0.3)
        b = load_dataset("yago", scale=0.4)
        assert a is not b
        assert b.node_count > a.node_count

    def test_explicit_seed(self):
        a = load_dataset("yago", scale=0.3, seed=1)
        b = load_dataset("yago", scale=0.3, seed=2)
        assert a is not b
