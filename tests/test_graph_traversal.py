"""Unit tests for graph traversal helpers."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.traversal import (
    bfs_distances,
    ego_nodes,
    follow_label,
    follow_label_counted,
    nodes_with_label,
    to_networkx,
)


@pytest.fixture()
def chain():
    # a -> b -> c -> d  (with inverse closure)
    return (
        GraphBuilder()
        .fact("a", "next", "b")
        .fact("b", "next", "c")
        .fact("c", "next", "d")
        .build()
    )


class TestBfs:
    def test_distances_from_single_source(self, chain):
        distances = bfs_distances(chain, ["a"])
        by_name = {chain.node_name(n): d for n, d in distances.items()}
        assert by_name == {"a": 0, "b": 1, "c": 2, "d": 3}

    def test_max_depth_cuts(self, chain):
        distances = bfs_distances(chain, ["a"], max_depth=1)
        assert len(distances) == 2

    def test_multi_source(self, chain):
        distances = bfs_distances(chain, ["a", "d"])
        by_name = {chain.node_name(n): d for n, d in distances.items()}
        assert by_name["b"] == 1
        assert by_name["c"] == 1

    def test_direction_in(self):
        graph = GraphBuilder(add_inverse=False).fact("a", "r", "b").build()
        distances = bfs_distances(graph, ["b"], direction="in")
        assert len(distances) == 2

    def test_ego_nodes(self, chain):
        ego = ego_nodes(chain, "b", radius=1)
        names = {chain.node_name(n) for n in ego}
        assert names == {"a", "b", "c"}


class TestLabelSteps:
    def test_follow_label(self, chain):
        targets = follow_label(chain, [chain.node_id("a")], "next")
        assert {chain.node_name(n) for n in targets} == {"b"}

    def test_follow_label_counted_accumulates(self):
        # diamond: s -> m1 -> t and s -> m2 -> t  => two paths to t
        graph = (
            GraphBuilder()
            .fact("s", "r", "m1")
            .fact("s", "r", "m2")
            .fact("m1", "r", "t")
            .fact("m2", "r", "t")
            .build()
        )
        step1 = follow_label_counted(graph, {graph.node_id("s"): 1}, "r")
        step2 = follow_label_counted(graph, step1, "r")
        assert step2[graph.node_id("t")] == 2

    def test_follow_label_counted_multiplies_path_counts(self):
        graph = GraphBuilder().fact("a", "r", "b").build()
        counts = follow_label_counted(graph, {graph.node_id("a"): 5}, "r")
        assert counts[graph.node_id("b")] == 5

    def test_nodes_with_label(self, chain):
        sources = nodes_with_label(chain, "next")
        assert {chain.node_name(n) for n in sources} == {"a", "b", "c"}

    def test_unknown_label_empty(self, chain):
        assert follow_label(chain, [0], "nope") == set()
        assert follow_label_counted(chain, {0: 1}, "nope") == {}


class TestNetworkxExport:
    def test_export_counts(self, chain):
        nx_graph = to_networkx(chain)
        assert nx_graph.number_of_nodes() == chain.node_count
        assert nx_graph.number_of_edges() == chain.edge_count

    def test_edge_labels_preserved(self, chain):
        nx_graph = to_networkx(chain)
        labels = {d["label"] for _u, _v, d in nx_graph.edges(data=True)}
        assert labels == {"next", "next_inv"}
