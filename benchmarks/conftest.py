"""Shared fixtures for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper via
:mod:`repro.eval.experiments` and asserts its qualitative claims (who
wins, which labels are notable). Benchmarks run single-shot
(``benchmark.pedantic(rounds=1)``): the measured quantity is the full
experiment, not a micro-kernel.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import ExperimentSetting

#: The evaluation-scale setting shared by every benchmark. Scale 2 gives a
#: ~4k-node / ~30k-edge synthetic YAGO — large enough for stable metapath
#: statistics, small enough for minutes-long total runtime.
BENCH_SETTING = ExperimentSetting(scale=2.0)


@pytest.fixture(scope="session")
def setting() -> ExperimentSetting:
    return BENCH_SETTING


@pytest.fixture(scope="session")
def yago_graph(setting):
    """Pre-built synthetic YAGO (memoized by the dataset loader)."""
    return setting.graph()


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
