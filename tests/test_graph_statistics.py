"""Unit tests for GraphStatistics."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.statistics import DegreeSummary, GraphStatistics


@pytest.fixture()
def graph():
    return (
        GraphBuilder()
        .fact("a", "common", "b")
        .fact("b", "common", "c")
        .fact("c", "common", "d")
        .fact("a", "rare", "d")
        .build()
    )


class TestLabelStatistics:
    def test_frequencies(self, graph):
        stats = GraphStatistics(graph)
        freqs = stats.label_frequencies()
        assert freqs["common"] == pytest.approx(3 / 8)
        assert freqs["rare"] == pytest.approx(1 / 8)
        assert sum(freqs.values()) == pytest.approx(1.0)

    def test_weights_equation1(self, graph):
        stats = GraphStatistics(graph)
        weights = stats.label_weights()
        assert weights["common"] == pytest.approx(1 - 3 / 8)
        assert weights["rare"] == pytest.approx(1 - 1 / 8)

    def test_rare_labels_more_informative(self, graph):
        stats = GraphStatistics(graph)
        assert stats.weight("rare") > stats.weight("common")

    def test_most_frequent_and_informative(self, graph):
        stats = GraphStatistics(graph)
        most_frequent = stats.most_frequent_labels(1)
        assert most_frequent[0][0] in ("common", "common_inv")
        most_informative = stats.most_informative_labels(1)
        assert most_informative[0][0] in ("rare", "rare_inv")

    def test_unknown_label_raises(self, graph):
        with pytest.raises(KeyError):
            GraphStatistics(graph).weight("nope")

    def test_cache_invalidates_on_mutation(self, graph):
        stats = GraphStatistics(graph)
        before = stats.label_frequencies()["rare"]
        graph.add_edge("b", "rare", "d")
        after = stats.label_frequencies()["rare"]
        assert after > before


class TestDegreeStatistics:
    def test_out_degree_summary(self, graph):
        summary = GraphStatistics(graph).out_degree_summary()
        assert summary.minimum >= 1  # every node has at least an inverse edge
        assert summary.maximum >= summary.mean >= summary.minimum

    def test_degree_summary_from_values(self):
        summary = DegreeSummary.from_values([1, 2, 3, 4])
        assert summary.minimum == 1
        assert summary.maximum == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)

    def test_degree_summary_odd_median(self):
        assert DegreeSummary.from_values([5, 1, 3]).median == 3

    def test_degree_summary_empty(self):
        summary = DegreeSummary.from_values([])
        assert summary == DegreeSummary(0, 0, 0.0, 0.0)

    def test_degree_histogram_counts_nodes(self, graph):
        histogram = GraphStatistics(graph).degree_histogram()
        assert sum(histogram.values()) == graph.node_count


class TestDescribe:
    def test_type_population(self):
        graph = (
            GraphBuilder()
            .typed("a", "t1")
            .typed("b", "t1")
            .typed("c", "t2")
            .build()
        )
        population = GraphStatistics(graph).type_population()
        assert population["t1"] == 2
        assert population["t2"] == 1

    def test_describe_card(self, graph):
        card = GraphStatistics(graph).describe()
        assert card["nodes"] == graph.node_count
        assert card["edges_forward"] == 4
        assert card["edges_with_inverse"] == 8
        assert card["edge_labels_forward"] == 2
