"""Unit tests for the N-Triples parser/serializer."""

import pytest

from repro.errors import ParseError
from repro.store.ntriples import (
    load_ntriples_file,
    parse_ntriples,
    parse_ntriples_line,
    save_ntriples_file,
    serialize_ntriples,
)
from repro.store.terms import IRI, Literal
from repro.store.triples import Triple


class TestParse:
    def test_iri_object(self):
        (triple,) = parse_ntriples("<a> <b> <c> .")
        assert triple == Triple(IRI("a"), IRI("b"), IRI("c"))

    def test_plain_literal(self):
        (triple,) = parse_ntriples('<a> <b> "hello" .')
        assert triple.object == Literal("hello")

    def test_language_literal(self):
        (triple,) = parse_ntriples('<a> <b> "hallo"@de .')
        assert triple.object == Literal("hallo", language="de")

    def test_datatyped_literal(self):
        (triple,) = parse_ntriples('<a> <b> "5"^^<http://ex/int> .')
        assert triple.object == Literal("5", datatype="http://ex/int")

    def test_escaped_literal(self):
        (triple,) = parse_ntriples('<a> <b> "line\\nbreak \\"q\\"" .')
        assert triple.object == Literal('line\nbreak "q"')

    def test_comments_and_blanks_skipped(self):
        text = "\n# a comment\n<a> <b> <c> .\n\n   \n<d> <e> <f> .\n"
        assert len(list(parse_ntriples(text))) == 2

    def test_invalid_line_raises_with_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            list(parse_ntriples("<a> <b> <c> .\nnot a triple"))
        assert excinfo.value.line_number == 2

    def test_missing_dot_rejected(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("<a> <b> <c>")

    def test_blank_nodes_rejected(self):
        with pytest.raises(ParseError):
            parse_ntriples_line("_:b1 <b> <c> .")

    def test_whitespace_tolerance(self):
        (triple,) = parse_ntriples("   <a>\t<b>   <c>  .  ")
        assert triple.subject == IRI("a")


class TestRoundTrip:
    def test_serialize_parse_round_trip(self):
        triples = [
            Triple(IRI("s1"), IRI("p"), IRI("o")),
            Triple(IRI("s2"), IRI("p"), Literal("plain")),
            Triple(IRI("s3"), IRI("p"), Literal("tagged", language="en")),
            Triple(IRI("s4"), IRI("p"), Literal("7", datatype="http://ex/int")),
            Triple(IRI("s5"), IRI("p"), Literal('tricky\n"\\')),
        ]
        text = serialize_ntriples(triples)
        assert list(parse_ntriples(text)) == triples

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "facts.nt"
        triples = [Triple.of("a", "b", "c"), Triple(IRI("a"), IRI("x"), Literal("v"))]
        written = save_ntriples_file(str(path), triples)
        assert written == 2
        assert list(load_ntriples_file(str(path))) == triples
