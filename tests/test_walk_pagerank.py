"""Unit tests for Personalized PageRank (Equation 2)."""

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.matrix import personalization_vector, transition_matrix
from repro.walk.pagerank import (
    PersonalizedPageRank,
    personalized_pagerank,
    power_iteration,
    power_iteration_python,
)


@pytest.fixture()
def graph():
    return (
        GraphBuilder()
        .fact("a", "r", "b")
        .fact("b", "r", "c")
        .fact("c", "r", "a")
        .fact("c", "r", "d")
        .fact("d", "s", "a")
        .build()
    )


class TestPowerIteration:
    def test_result_is_distribution(self, graph):
        p = personalized_pagerank(graph, [graph.node_id("a")])
        assert p.shape == (graph.node_count,)
        assert p.sum() == pytest.approx(1.0)
        assert (p >= 0).all()

    def test_personalized_node_gets_extra_mass(self, graph):
        a = graph.node_id("a")
        p = personalized_pagerank(graph, [a])
        assert p[a] == max(p)

    def test_damping_zero_returns_personalization(self, graph):
        a = graph.node_id("a")
        p = personalized_pagerank(graph, [a], damping=0.0)
        assert p[a] == pytest.approx(1.0)

    def test_tolerance_early_stop_close_to_full_run(self, graph):
        v = personalization_vector(graph, [graph.node_id("a")])
        t = transition_matrix(graph)
        full = power_iteration(t, v, iterations=100)
        early = power_iteration(t, v, iterations=100, tolerance=1e-12)
        assert np.abs(full - early).max() < 1e-6

    def test_invalid_damping(self, graph):
        v = personalization_vector(graph, [0])
        t = transition_matrix(graph)
        with pytest.raises(ValueError):
            power_iteration(t, v, damping=1.5)

    def test_invalid_iterations(self, graph):
        v = personalization_vector(graph, [0])
        t = transition_matrix(graph)
        with pytest.raises(ValueError):
            power_iteration(t, v, iterations=0)

    def test_zero_personalization_rejected(self, graph):
        t = transition_matrix(graph)
        with pytest.raises(ValueError):
            power_iteration(t, np.zeros(graph.node_count))

    def test_dangling_mass_reinjected(self):
        # b is a sink (no inverse closure): mass must not leak.
        graph = GraphBuilder(add_inverse=False).fact("a", "r", "b").build()
        p = personalized_pagerank(graph, [graph.node_id("a")])
        assert p.sum() == pytest.approx(1.0)


class TestPythonBackend:
    def test_matches_scipy_backend(self, graph):
        v = personalization_vector(graph, [graph.node_id("a")])
        t = transition_matrix(graph)
        scipy_p = power_iteration(t, v, damping=0.8, iterations=10)
        python_p = power_iteration_python(graph, v, damping=0.8, iterations=10)
        assert np.abs(scipy_p - python_p).max() < 1e-9

    def test_matches_on_dangling_graph(self):
        graph = GraphBuilder(add_inverse=False).fact("a", "r", "b").build()
        v = personalization_vector(graph, [graph.node_id("a")])
        t = transition_matrix(graph)
        scipy_p = power_iteration(t, v, iterations=8)
        python_p = power_iteration_python(graph, v, iterations=8)
        assert np.abs(scipy_p - python_p).max() < 1e-9


class TestPersonalizedPageRankClass:
    def test_scores_per_node_is_sum(self, graph):
        ppr = PersonalizedPageRank(graph)
        a, b = graph.node_id("a"), graph.node_id("b")
        combined = ppr.scores_per_node([a, b])
        individual = ppr.scores([a]) + ppr.scores([b])
        assert np.abs(combined - individual).max() < 1e-12

    def test_top_k_excludes_query(self, graph):
        ppr = PersonalizedPageRank(graph)
        a = graph.node_id("a")
        top = ppr.top_k([a], 3)
        assert a not in [node for node, _ in top]

    def test_top_k_sorted_descending(self, graph):
        ppr = PersonalizedPageRank(graph)
        top = ppr.top_k([graph.node_id("a")], graph.node_count)
        scores = [s for _, s in top]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_k_zero(self, graph):
        ppr = PersonalizedPageRank(graph)
        assert ppr.top_k([0], 0) == []

    def test_invalid_backend(self, graph):
        with pytest.raises(ValueError):
            PersonalizedPageRank(graph, backend="julia")

    def test_transition_cache_invalidation(self, graph):
        ppr = PersonalizedPageRank(graph)
        t1 = ppr.transition()
        graph.add_edge("d", "r", "b")
        t2 = ppr.transition()
        assert t1.shape != t2.shape or (t1 != t2).nnz > 0

    def test_empty_personalization_rejected(self, graph):
        ppr = PersonalizedPageRank(graph)
        with pytest.raises(ValueError):
            ppr.scores_per_node([])


class TestPinnedTransition:
    def test_pinned_matrix_ignores_mutation(self, graph):
        ppr = PersonalizedPageRank(graph, pin=True)
        t1 = ppr.transition()
        graph.add_edge("zz_new_node", "r", "b")
        assert ppr.transition() is t1  # frozen at the pinned version

    def test_pinned_scores_stay_in_pinned_node_space(self, graph):
        ppr = PersonalizedPageRank(graph, pin=True)
        ppr.transition()
        n_before = graph.node_count
        new_id = graph.add_node("zz_late_arrival")
        scores = ppr.scores_per_node([0])
        assert scores.shape == (n_before,)
        with pytest.raises(ValueError):
            ppr.scores_per_node([new_id])

    def test_unpinned_matrix_still_invalidates(self, graph):
        ppr = PersonalizedPageRank(graph)
        t1 = ppr.transition()
        graph.add_edge("zz_other", "r", "b")
        assert ppr.transition() is not t1
