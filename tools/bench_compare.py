"""Statistical comparison of two service-bench JSON reports.

``BENCH_PR*.json`` numbers wobble run to run — scheduler noise, cache
warmth, CPU frequency — so "p99 went from 41ms to 44ms" alone says
nothing. This tool puts seeded bootstrap confidence intervals
(:mod:`repro.eval.bootstrap`) around the latency quantiles of each
report's ``load_profile`` phase (which embeds its raw per-request
samples for exactly this purpose) and calls a **regression** only when
the intervals separate: the candidate's lower CI bound must exceed the
baseline's upper bound *and* the point estimate must be more than
``--threshold`` (default 10%) worse. Throughput-style scalar metrics
(req/s phases) are compared by relative delta against the same
threshold, flagged — not failed — because single numbers carry no
uncertainty estimate.

Exit status: 0 when no latency regression is detected, 1 when one is,
2 for malformed input. CI runs ``--self-check`` (deterministic internal
tests of the bootstrap + verdict logic, no input files needed) so the
comparator itself cannot bitrot silently.

``--saturated`` is the single-report mode for the PR-8 acceptance gate:
it reads one report's ``saturated_batch`` phase (micro-batched vs
per-query process workers on the same saturated distinct-query traffic,
same machine, same run) and prints ``verdict: improvement`` when the
throughput ratio clears ``--min-ratio`` (default 2.0) *and* the phase's
result-parity assertion held; anything else is ``verdict: regression``
(exit 1). Within one run both arms see identical noise conditions, so
the ratio is a paired comparison rather than a cross-run scalar.

``--trace-overhead`` is the matching single-report gate for the PR-9
``trace_overhead`` phase: 1% head sampling must cost neither throughput
nor p99 more than ``--threshold`` vs the tracing-disabled arm of the
same run, and the forced-slow trace must carry the worker-side
``worker.ppr``/``worker.sweep`` spans bounded by the request span.

``--live-ingest`` is the single-report gate for the PR-10
``live_ingest`` phase: sustained reads across >= 2 live
append → merge → swap cycles must complete with **zero** failures and
byte-identical post-ingest results, and the during-ingest read p99 must
stay within ``--max-p99-ratio`` (default 2.0x) of the like-for-like
quiescent control window from the same run (the control pays the same
cache-invalidation storms, so the ratio isolates the merge/swap cost).

Usage (from the repo root)::

    python tools/bench_compare.py BENCH_PR7.json BENCH_PR8.json
    python tools/bench_compare.py old.json new.json --threshold 0.15 --json
    python tools/bench_compare.py --saturated BENCH_PR8.json
    python tools/bench_compare.py --trace-overhead BENCH_PR9.json
    python tools/bench_compare.py --live-ingest BENCH_PR10.json
    python tools/bench_compare.py --self-check
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.bootstrap import bootstrap_quantile_ci, quantile  # noqa: E402

#: ``(report key, sub-key, label)`` of scalar throughput metrics worth a
#: delta line. Missing keys are skipped — older reports lack newer phases.
SCALAR_METRICS = (
    ("sequential", "throughput_rps", "sequential req/s"),
    ("concurrent", "throughput_rps", "concurrent req/s"),
    ("backends", "process_throughput_rps", "process backend req/s"),
    ("snapshot_serving", "throughput_rps", "snapshot serving req/s"),
    ("cold_start", "speedup", "cold-start speedup"),
    ("saturated_batch", "batched_rps", "micro-batched req/s"),
    ("saturated_batch", "ratio", "micro-batch speedup ratio"),
    ("trace_overhead", "sampled_rps", "traced (sampled) req/s"),
)

#: Latency quantiles compared with bootstrap CIs (label, q).
QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


def load_report(path: str) -> dict:
    """Read one bench JSON; raises ``ValueError`` with the path on junk."""
    try:
        report = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"{path}: cannot read bench report: {error}") from None
    if not isinstance(report, dict):
        raise ValueError(f"{path}: bench report must be a JSON object")
    return report


def latency_samples(report: dict, run: str = "open") -> "list[float]":
    """The raw load-profile latency samples, or ``[]`` when absent."""
    samples = (
        report.get("load_profile", {}).get(run, {}).get("latencies_s", [])
    )
    return [float(value) for value in samples]


def compare_quantiles(
    baseline: "list[float]",
    candidate: "list[float]",
    *,
    threshold: float = 0.10,
    iterations: int = 1000,
    seed: int = 0,
) -> "list[dict]":
    """Per-quantile verdicts for two latency sample sets.

    A quantile **regressed** when the candidate's CI lower bound clears
    the baseline's CI upper bound (the intervals separate — not noise)
    *and* the point estimate moved more than ``threshold`` relative.
    The symmetric condition reports an improvement; everything else is
    a wash. Deterministic for fixed ``seed``.
    """
    rows = []
    for index, (label, q) in enumerate(QUANTILES):
        base_point, base_lo, base_hi = bootstrap_quantile_ci(
            baseline, q, iterations=iterations, seed=seed + index
        )
        cand_point, cand_lo, cand_hi = bootstrap_quantile_ci(
            candidate, q, iterations=iterations, seed=seed + index
        )
        if math.isnan(base_point) or math.isnan(cand_point):
            verdict = "no-data"
            delta = math.nan
        else:
            delta = (cand_point - base_point) / base_point if base_point else 0.0
            if cand_lo > base_hi and delta > threshold:
                verdict = "regression"
            elif cand_hi < base_lo and delta < -threshold:
                verdict = "improvement"
            else:
                verdict = "unchanged"
        rows.append(
            {
                "quantile": label,
                "baseline": {"value": base_point, "ci_lo": base_lo, "ci_hi": base_hi},
                "candidate": {"value": cand_point, "ci_lo": cand_lo, "ci_hi": cand_hi},
                "delta_rel": delta,
                "verdict": verdict,
            }
        )
    return rows


def compare_scalars(baseline: dict, candidate: dict, *, threshold: float = 0.10):
    """Relative-delta rows for the scalar throughput metrics (flag-only)."""
    rows = []
    for key, sub, label in SCALAR_METRICS:
        old = baseline.get(key, {}).get(sub)
        new = candidate.get(key, {}).get(sub)
        if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
            continue
        delta = (new - old) / old if old else 0.0
        # Throughput-style: lower is worse. One sample each, so this is
        # advisory — only the CI-backed latency rows drive the verdict.
        flag = "slower" if delta < -threshold else ("faster" if delta > threshold else "~")
        rows.append(
            {
                "metric": label,
                "baseline": old,
                "candidate": new,
                "delta_rel": delta,
                "flag": flag,
            }
        )
    return rows


def compare_reports(
    baseline: dict,
    candidate: dict,
    *,
    threshold: float = 0.10,
    iterations: int = 1000,
    seed: int = 0,
) -> dict:
    """The full comparison document; ``regressed`` drives the exit code."""
    quantile_rows = compare_quantiles(
        latency_samples(baseline),
        latency_samples(candidate),
        threshold=threshold,
        iterations=iterations,
        seed=seed,
    )
    return {
        "baseline_pr": baseline.get("pr"),
        "candidate_pr": candidate.get("pr"),
        "threshold": threshold,
        "load_profile_open": quantile_rows,
        "scalars": compare_scalars(baseline, candidate, threshold=threshold),
        "regressed": any(r["verdict"] == "regression" for r in quantile_rows),
    }


def check_saturated(report: dict, *, min_ratio: float = 2.0) -> dict:
    """The PR-8 gate over one report's ``saturated_batch`` phase.

    ``improvement`` when batched throughput beat the per-query process
    backend by at least ``min_ratio`` with byte-identical results;
    ``regression`` when the phase ran but missed either bar; ``no-data``
    when the report predates the phase. The two arms come from the same
    run on the same machine, so the ratio is already a paired
    comparison — no cross-run bootstrap needed.
    """
    phase = report.get("saturated_batch")
    if not isinstance(phase, dict):
        return {
            "pr": report.get("pr"),
            "min_ratio": min_ratio,
            "verdict": "no-data",
        }
    ratio = phase.get("ratio")
    identical = phase.get("identical_results")
    ok = (
        isinstance(ratio, (int, float))
        and ratio >= min_ratio
        and identical is True
    )
    return {
        "pr": report.get("pr"),
        "min_ratio": min_ratio,
        "ratio": ratio,
        "per_query_rps": phase.get("per_query_rps"),
        "batched_rps": phase.get("batched_rps"),
        "mean_batch_size": phase.get("mean_batch_size"),
        "identical_results": identical,
        "verdict": "improvement" if ok else "regression",
    }


def check_trace_overhead(report: dict, *, threshold: float = 0.10) -> dict:
    """The PR-9 gate over one report's ``trace_overhead`` phase.

    ``ok`` when 1% head sampling cost neither throughput nor p99 more
    than ``threshold`` relative to the tracing-disabled arm of the same
    run, *and* the forced-slow trace carried the worker-side
    ``worker.ppr``/``worker.sweep`` spans with durations bounded by the
    request span. ``regression`` when any bar is missed; ``no-data``
    for reports that predate the phase. Both arms come from the same
    run on the same machine — a paired comparison, like --saturated.
    """
    phase = report.get("trace_overhead")
    if not isinstance(phase, dict):
        return {
            "pr": report.get("pr"),
            "threshold": threshold,
            "verdict": "no-data",
        }
    disabled_rps = phase.get("disabled_rps")
    sampled_rps = phase.get("sampled_rps")
    disabled_p99 = phase.get("disabled_p99_s")
    sampled_p99 = phase.get("sampled_p99_s")
    slow_trace = phase.get("slow_trace") or {}
    numbers = (disabled_rps, sampled_rps, disabled_p99, sampled_p99)
    if not all(isinstance(v, (int, float)) for v in numbers):
        return {
            "pr": report.get("pr"),
            "threshold": threshold,
            "verdict": "no-data",
        }
    throughput_ok = sampled_rps >= disabled_rps * (1.0 - threshold)
    p99_ok = sampled_p99 <= disabled_p99 * (1.0 + threshold)
    phases = set(slow_trace.get("phases") or ())
    worker_ms = slow_trace.get("worker_ppr_sweep_ms")
    request_ms = slow_trace.get("request_ms")
    trace_ok = (
        {"worker.ppr", "worker.sweep"} <= phases
        and isinstance(worker_ms, (int, float))
        and isinstance(request_ms, (int, float))
        and worker_ms <= request_ms
    )
    return {
        "pr": report.get("pr"),
        "threshold": threshold,
        "disabled_rps": disabled_rps,
        "sampled_rps": sampled_rps,
        "disabled_p99_s": disabled_p99,
        "sampled_p99_s": sampled_p99,
        "throughput_ok": throughput_ok,
        "p99_ok": p99_ok,
        "slow_trace_ok": trace_ok,
        "verdict": (
            "ok" if throughput_ok and p99_ok and trace_ok else "regression"
        ),
    }


def check_live_ingest(report: dict, *, max_ratio: float = 2.0) -> dict:
    """The PR-10 gate over one report's ``live_ingest`` phase.

    ``ok`` when the phase sustained reads across at least two live
    append → merge → swap cycles with **zero** failed reads, the
    post-ingest results were byte-identical to a fresh engine on the
    merged snapshot, and the during-ingest read p99 stayed within
    ``max_ratio`` of the quiescent control window. ``regression`` when
    any bar is missed; ``no-data`` for reports that predate the phase.
    Both windows come from the same run under the same cache-miss
    cadence — a paired comparison, like --saturated.
    """
    phase = report.get("live_ingest")
    if not isinstance(phase, dict):
        return {
            "pr": report.get("pr"),
            "max_ratio": max_ratio,
            "verdict": "no-data",
        }
    quiescent_p99 = phase.get("quiescent_p99_s")
    ingest_p99 = phase.get("ingest_p99_s")
    ratio = phase.get("p99_ratio")
    numbers = (quiescent_p99, ingest_p99, ratio)
    if not all(isinstance(v, (int, float)) for v in numbers):
        return {
            "pr": report.get("pr"),
            "max_ratio": max_ratio,
            "verdict": "no-data",
        }
    cycles = phase.get("cycles") or []
    failures = phase.get("failures")
    identical = phase.get("identical_results")
    cycles_ok = len(cycles) >= 2
    failures_ok = failures == 0
    p99_ok = ratio <= max_ratio
    ok = cycles_ok and failures_ok and identical is True and p99_ok
    return {
        "pr": report.get("pr"),
        "max_ratio": max_ratio,
        "cycles": len(cycles),
        "failures": failures,
        "quiescent_p99_s": quiescent_p99,
        "ingest_p99_s": ingest_p99,
        "p99_ratio": ratio,
        "cycles_ok": cycles_ok,
        "failures_ok": failures_ok,
        "p99_ok": p99_ok,
        "identical_results": identical,
        "verdict": "ok" if ok else "regression",
    }


def print_live_ingest(result: dict) -> None:
    """Human-readable rendering of :func:`check_live_ingest`."""
    if result["verdict"] == "no-data":
        print(
            f"live ingest (PR {result['pr']}): no live_ingest phase "
            f"in this report"
        )
        print("verdict: no-data")
        return
    print(
        f"live ingest (PR {result['pr']}, max p99 ratio "
        f"{result['max_ratio']:.2f}x): {result['cycles']} "
        f"append->merge->swap cycle(s), {result['failures']} failed reads, "
        f"p99 quiescent {result['quiescent_p99_s'] * 1e3:.1f}ms -> "
        f"during ingest {result['ingest_p99_s'] * 1e3:.1f}ms "
        f"({result['p99_ratio']:.2f}x, ok: {result['p99_ok']}, identical "
        f"results: {result['identical_results']})"
    )
    print("verdict: " + result["verdict"])


def print_trace_overhead(result: dict) -> None:
    """Human-readable rendering of :func:`check_trace_overhead`."""
    if result["verdict"] == "no-data":
        print(
            f"trace overhead (PR {result['pr']}): no trace_overhead phase "
            f"in this report"
        )
        print("verdict: no-data")
        return
    print(
        f"trace overhead (PR {result['pr']}, tolerance "
        f"{result['threshold']:.0%}): "
        f"off {result['disabled_rps']:.2f} req/s / "
        f"p99 {result['disabled_p99_s'] * 1e3:.1f}ms -> "
        f"on {result['sampled_rps']:.2f} req/s / "
        f"p99 {result['sampled_p99_s'] * 1e3:.1f}ms "
        f"(throughput ok: {result['throughput_ok']}, p99 ok: "
        f"{result['p99_ok']}, slow trace ok: {result['slow_trace_ok']})"
    )
    print("verdict: " + result["verdict"])


def print_saturated(result: dict) -> None:
    """Human-readable rendering of :func:`check_saturated`."""
    if result["verdict"] == "no-data":
        print(
            f"saturated batch (PR {result['pr']}): no saturated_batch phase "
            f"in this report"
        )
        print("verdict: no-data")
        return
    print(
        f"saturated batch (PR {result['pr']}): "
        f"per-query {result['per_query_rps']:.2f} req/s -> "
        f"micro-batched {result['batched_rps']:.2f} req/s "
        f"({result['ratio']:.2f}x, need >= {result['min_ratio']:.2f}x, "
        f"mean batch {result['mean_batch_size']:.1f}, identical results: "
        f"{result['identical_results']})"
    )
    print("verdict: " + result["verdict"])


def print_comparison(result: dict) -> None:
    """Human-readable rendering of :func:`compare_reports`."""
    print(
        f"bench compare: PR {result['baseline_pr']} -> "
        f"PR {result['candidate_pr']} "
        f"(threshold {result['threshold']:.0%})"
    )
    for row in result["load_profile_open"]:
        base, cand = row["baseline"], row["candidate"]
        if row["verdict"] == "no-data":
            print(f"  {row['quantile']}: no load-profile samples to compare")
            continue
        print(
            f"  {row['quantile']}: {base['value'] * 1e3:.2f}ms "
            f"[{base['ci_lo'] * 1e3:.2f}, {base['ci_hi'] * 1e3:.2f}] -> "
            f"{cand['value'] * 1e3:.2f}ms "
            f"[{cand['ci_lo'] * 1e3:.2f}, {cand['ci_hi'] * 1e3:.2f}]  "
            f"{row['delta_rel']:+.1%}  {row['verdict']}"
        )
    for row in result["scalars"]:
        print(
            f"  {row['metric']}: {row['baseline']:.2f} -> "
            f"{row['candidate']:.2f}  {row['delta_rel']:+.1%}  {row['flag']}"
        )
    print("verdict: " + ("REGRESSION" if result["regressed"] else "ok"))


def self_check() -> int:
    """Deterministic internal tests of the bootstrap + verdict logic.

    No input files needed; CI runs this so the comparator cannot bitrot.
    Returns 0 on success, raises ``AssertionError`` otherwise.
    """
    # quantile: interpolation + edges
    assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
    assert quantile([5.0], 0.99) == 5.0
    assert math.isnan(quantile([], 0.5))

    # bootstrap: deterministic, ordered, brackets the point estimate
    samples = [float(i % 17) / 16.0 + 0.01 for i in range(120)]
    first = bootstrap_quantile_ci(samples, 0.9, iterations=300, seed=7)
    second = bootstrap_quantile_ci(samples, 0.9, iterations=300, seed=7)
    assert first == second, "bootstrap must be deterministic for a fixed seed"
    point, lo, hi = first
    assert lo <= point <= hi, f"CI must bracket the estimate: {first}"
    shifted = bootstrap_quantile_ci(samples, 0.9, iterations=300, seed=8)
    assert first != shifted, "different seeds should resample differently"

    # verdicts: a clear 2x slowdown regresses, noise does not
    base = [0.010 + (i % 10) * 0.0002 for i in range(200)]
    slow = [value * 2.0 for value in base]
    rows = compare_quantiles(base, slow, threshold=0.10, iterations=300)
    assert all(r["verdict"] == "regression" for r in rows), rows
    rows = compare_quantiles(slow, base, threshold=0.10, iterations=300)
    assert all(r["verdict"] == "improvement" for r in rows), rows
    jitter = [value * 1.001 for value in base]
    rows = compare_quantiles(base, jitter, threshold=0.10, iterations=300)
    assert all(r["verdict"] == "unchanged" for r in rows), rows
    rows = compare_quantiles([], base, iterations=10)
    assert all(r["verdict"] == "no-data" for r in rows), rows

    # end-to-end over synthetic reports, including missing-phase scalars
    baseline = {
        "pr": 6,
        "sequential": {"throughput_rps": 100.0},
        "load_profile": {"open": {"latencies_s": base}},
    }
    candidate = {
        "pr": 7,
        "sequential": {"throughput_rps": 50.0},
        "load_profile": {"open": {"latencies_s": slow}},
    }
    result = compare_reports(baseline, candidate, threshold=0.10, iterations=300)
    assert result["regressed"] is True
    assert result["scalars"][0]["flag"] == "slower"
    result = compare_reports(baseline, baseline, threshold=0.10, iterations=300)
    assert result["regressed"] is False

    # saturated gate: ratio + parity both required; old reports are no-data
    good = {
        "pr": 8,
        "saturated_batch": {
            "ratio": 2.3,
            "per_query_rps": 40.0,
            "batched_rps": 92.0,
            "mean_batch_size": 8.0,
            "identical_results": True,
        },
    }
    assert check_saturated(good)["verdict"] == "improvement"
    assert check_saturated(good, min_ratio=2.5)["verdict"] == "regression"
    slow_phase = dict(good["saturated_batch"], ratio=1.4)
    assert check_saturated({"saturated_batch": slow_phase})["verdict"] == "regression"
    broken = dict(good["saturated_batch"], identical_results=False)
    assert check_saturated({"saturated_batch": broken})["verdict"] == "regression"
    assert check_saturated({"pr": 7})["verdict"] == "no-data"

    # trace-overhead gate: throughput, p99, and slow-trace bars all required
    traced = {
        "pr": 9,
        "trace_overhead": {
            "disabled_rps": 100.0,
            "sampled_rps": 98.0,
            "disabled_p99_s": 0.050,
            "sampled_p99_s": 0.052,
            "slow_trace": {
                "phases": ["bench.request", "worker.ppr", "worker.sweep"],
                "worker_ppr_sweep_ms": 30.0,
                "request_ms": 50.0,
            },
        },
    }
    assert check_trace_overhead(traced)["verdict"] == "ok"
    slow_arm = dict(traced["trace_overhead"], sampled_rps=80.0)
    assert (
        check_trace_overhead({"trace_overhead": slow_arm})["verdict"]
        == "regression"
    )
    fat_p99 = dict(traced["trace_overhead"], sampled_p99_s=0.070)
    assert (
        check_trace_overhead({"trace_overhead": fat_p99})["verdict"]
        == "regression"
    )
    torn = dict(
        traced["trace_overhead"],
        slow_trace={"phases": ["bench.request"], "worker_ppr_sweep_ms": 1.0,
                    "request_ms": 2.0},
    )
    assert (
        check_trace_overhead({"trace_overhead": torn})["verdict"]
        == "regression"
    )
    assert check_trace_overhead({"pr": 8})["verdict"] == "no-data"

    # live-ingest gate: cycles, zero failures, parity, p99 ratio all required
    live = {
        "pr": 10,
        "live_ingest": {
            "cycles": [{"merged_version": 2}, {"merged_version": 3}],
            "failures": 0,
            "quiescent_p99_s": 0.020,
            "ingest_p99_s": 0.030,
            "p99_ratio": 1.5,
            "identical_results": True,
        },
    }
    assert check_live_ingest(live)["verdict"] == "ok"
    assert check_live_ingest(live, max_ratio=1.2)["verdict"] == "regression"
    dropped = dict(live["live_ingest"], failures=3)
    assert check_live_ingest({"live_ingest": dropped})["verdict"] == "regression"
    lone = dict(live["live_ingest"], cycles=[{"merged_version": 2}])
    assert check_live_ingest({"live_ingest": lone})["verdict"] == "regression"
    skewed = dict(live["live_ingest"], identical_results=False)
    assert check_live_ingest({"live_ingest": skewed})["verdict"] == "regression"
    assert check_live_ingest({"pr": 9})["verdict"] == "no-data"
    print("bench_compare self-check: ok")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """Parse arguments; compare two reports or run the self-check."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline bench JSON")
    parser.add_argument("candidate", nargs="?", help="candidate bench JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative change below which differences are ignored (0.10 = 10%%)",
    )
    parser.add_argument(
        "--iterations", type=int, default=1000, help="bootstrap resamples"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--json", action="store_true", help="emit the comparison as JSON"
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="run the deterministic internal tests and exit",
    )
    parser.add_argument(
        "--saturated",
        action="store_true",
        help="single-report mode: gate BASELINE's saturated_batch phase "
        "(micro-batched vs per-query workers) on --min-ratio + parity",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=2.0,
        help="minimum micro-batch throughput ratio for --saturated (2.0 = 2x)",
    )
    parser.add_argument(
        "--trace-overhead",
        action="store_true",
        help="single-report mode: gate BASELINE's trace_overhead phase "
        "(1%% sampling vs tracing off) on --threshold + slow-trace "
        "completeness",
    )
    parser.add_argument(
        "--live-ingest",
        action="store_true",
        help="single-report mode: gate BASELINE's live_ingest phase "
        "(reads across live append->merge->swap cycles) on zero "
        "failures, parity, and --max-p99-ratio",
    )
    parser.add_argument(
        "--max-p99-ratio",
        type=float,
        default=2.0,
        help="maximum during-ingest/quiescent read p99 ratio for "
        "--live-ingest (2.0 = 2x)",
    )
    args = parser.parse_args(argv)
    if args.self_check:
        return self_check()
    if args.live_ingest:
        if not args.baseline:
            parser.error("--live-ingest needs one report path")
        if args.candidate:
            parser.error("--live-ingest takes a single report, not two")
        try:
            report = load_report(args.baseline)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        result = check_live_ingest(report, max_ratio=args.max_p99_ratio)
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True))
        else:
            print_live_ingest(result)
        return 0 if result["verdict"] == "ok" else 1
    if args.trace_overhead:
        if not args.baseline:
            parser.error("--trace-overhead needs one report path")
        if args.candidate:
            parser.error("--trace-overhead takes a single report, not two")
        try:
            report = load_report(args.baseline)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        result = check_trace_overhead(report, threshold=args.threshold)
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True))
        else:
            print_trace_overhead(result)
        return 0 if result["verdict"] == "ok" else 1
    if args.saturated:
        if not args.baseline:
            parser.error("--saturated needs one report path")
        if args.candidate:
            parser.error("--saturated takes a single report, not two")
        try:
            report = load_report(args.baseline)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        result = check_saturated(report, min_ratio=args.min_ratio)
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True))
        else:
            print_saturated(result)
        return 0 if result["verdict"] == "improvement" else 1
    if not args.baseline or not args.candidate:
        parser.error("need BASELINE and CANDIDATE report paths (or --self-check)")
    try:
        baseline = load_report(args.baseline)
        candidate = load_report(args.candidate)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    result = compare_reports(
        baseline,
        candidate,
        threshold=args.threshold,
        iterations=args.iterations,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print_comparison(result)
    return 1 if result["regressed"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
