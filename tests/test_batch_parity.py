"""Differential parity suite for cross-request micro-batching.

The contract under test: batching NEVER changes bits. A query's FindNC
answer must be byte-identical whether it ran alone or shared a worker's
``power_iteration_batch`` sweep with arbitrary other queries, whatever the
batch composition, the kernel (``REPRO_KERNEL``), or the snapshot version
mix. Every layer of the batching stack is pinned against its solo
counterpart:

* ``power_iteration_batch`` on concatenated columns vs. per-group runs
  (bitwise, both tolerance modes) — hypothesis-driven;
* ``PersonalizedPageRank.top_k_many`` vs. ``top_k``;
* ``RandomWalkContext.select_many`` vs. ``select``;
* a micro-batched ``ProcessWorkerPool`` vs. a solo pool (full result
  payloads), including batches spanning two snapshot versions;
* the kernel seam: ``csr_matmat`` / ``unique_counts`` parity and the
  guarded numpy fallback when numba is missing or the name is unknown.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import RandomWalkContext
from repro.datasets.figure1 import figure1_graph
from repro.graph.matrix import transition_matrix
from repro.parallel.shm import publish_graph
from repro.service.workers import ProcessWorkerPool, WorkerConfig
from repro.walk import kernels
from repro.walk.pagerank import (
    PersonalizedPageRank,
    _personalization_columns,
    power_iteration_batch,
)

# --------------------------------------------------------------------------
# Shared graphs and strategies
# --------------------------------------------------------------------------

_GRAPHS: dict = {}


def _graph(name: str):
    """Build each test graph once per process (hypothesis reruns examples)."""
    if name not in _GRAPHS:
        if name == "figure1":
            _GRAPHS[name] = figure1_graph()
        else:
            from repro.datasets.yago import synthetic_yago

            _GRAPHS[name] = synthetic_yago(scale=0.5, seed=11)
    return _GRAPHS[name]


_RUNNERS: dict = {}


def _runner(name: str, tolerance: "float | None") -> PersonalizedPageRank:
    key = (name, tolerance)
    if key not in _RUNNERS:
        runner = PersonalizedPageRank(_graph(name), tolerance=tolerance)
        runner.transition()  # warm: the matrix build is not under test
        _RUNNERS[key] = runner
    return _RUNNERS[key]


@st.composite
def batch_cases(draw):
    """A graph, a tolerance mode, and 1-5 query groups of width 1-3."""
    name = draw(st.sampled_from(["figure1", "yago"]))
    tolerance = draw(st.sampled_from([None, 1e-6]))
    n = _graph(name).node_count
    groups = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=1,
                max_size=3,
                unique=True,
            ),
            min_size=1,
            max_size=5,
        )
    )
    ks = draw(
        st.lists(
            st.integers(min_value=0, max_value=8),
            min_size=len(groups),
            max_size=len(groups),
        )
    )
    return name, tolerance, groups, ks


# --------------------------------------------------------------------------
# Layer 1: the numerical core
# --------------------------------------------------------------------------


class TestPowerIterationBatchParity:
    @settings(max_examples=25, deadline=None)
    @given(batch_cases())
    def test_concatenated_batch_is_bitwise_equal_to_solo_runs(self, case):
        name, tolerance, groups, _ = case
        runner = _runner(name, tolerance)
        transition = runner.transition()
        n = transition.shape[0]
        per_group = [_personalization_columns(n, g) for g in groups]
        batched = power_iteration_batch(
            transition,
            np.concatenate(per_group, axis=1),
            tolerance=tolerance,
        )
        offset = 0
        for cols in per_group:
            solo = power_iteration_batch(transition, cols, tolerance=tolerance)
            width = cols.shape[1]
            got = batched[:, offset : offset + width]
            # Bitwise: not allclose. Batchmates must not move a single ulp.
            assert np.array_equal(got, solo), (
                f"batched columns [{offset}:{offset + width}] diverge from a "
                f"solo run (graph={name}, tolerance={tolerance})"
            )
            offset += width

    @settings(max_examples=25, deadline=None)
    @given(batch_cases())
    def test_member_score_reduction_matches_solo(self, case):
        """The per-member row-sum fan-out is bitwise too (not just columns)."""
        name, tolerance, groups, _ = case
        runner = _runner(name, tolerance)
        transition = runner.transition()
        n = transition.shape[0]
        per_group = [_personalization_columns(n, g) for g in groups]
        batched = power_iteration_batch(
            transition,
            np.concatenate(per_group, axis=1),
            tolerance=tolerance,
        )
        offset = 0
        for group, cols in zip(groups, per_group):
            width = cols.shape[1]
            fanned = np.ascontiguousarray(
                batched[:, offset : offset + width]
            ).sum(axis=1)
            solo = power_iteration_batch(
                transition, cols, tolerance=tolerance
            ).sum(axis=1)
            assert np.array_equal(fanned, solo)
            offset += width


class TestTopKManyParity:
    @settings(max_examples=25, deadline=None)
    @given(batch_cases())
    def test_top_k_many_equals_per_group_top_k(self, case):
        name, tolerance, groups, ks = case
        runner = _runner(name, tolerance)
        batched = runner.top_k_many(groups, ks)
        for group, k, got in zip(groups, ks, batched):
            assert got == runner.top_k(group, k)

    def test_empty_batch(self):
        assert _runner("figure1", None).top_k_many([], []) == []

    def test_k_zero_members_cost_no_columns_and_return_empty(self):
        runner = _runner("figure1", None)
        out = runner.top_k_many([[1], [2], [3]], [0, 3, 0])
        assert out[0] == [] and out[2] == []
        assert out[1] == runner.top_k([2], 3)

    def test_mismatched_lengths_rejected(self):
        runner = _runner("figure1", None)
        with pytest.raises(ValueError, match="same length"):
            runner.top_k_many([[1], [2]], [3])
        with pytest.raises(ValueError, match="same length"):
            runner.top_k_many([[1]], [3], excludes=[None, None])

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError, match="k must be"):
            _runner("figure1", None).top_k_many([[1]], [-1])


class TestSelectManyParity:
    @settings(max_examples=15, deadline=None)
    @given(batch_cases())
    def test_select_many_equals_per_query_select(self, case):
        name, tolerance, groups, _ = case
        selector = RandomWalkContext(_graph(name), tolerance=tolerance)
        batched = selector.select_many(groups, 5)
        for query, got in zip(groups, batched):
            solo = selector.select(query, 5)
            assert got.query == solo.query
            assert got.ranked_nodes == solo.ranked_nodes
            assert got.scores == solo.scores  # exact float equality
            assert got.algorithm == solo.algorithm


# --------------------------------------------------------------------------
# Layer 2: the kernel seam
# --------------------------------------------------------------------------


def _numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


KERNEL_PARAMS = [
    "numpy",
    pytest.param(
        "numba",
        marks=pytest.mark.skipif(
            not _numba_available(), reason="numba is not installed"
        ),
    ),
]


class TestKernelSeam:
    @pytest.mark.parametrize("kernel", KERNEL_PARAMS)
    def test_csr_matmat_parity(self, kernel, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, kernel)
        assert kernels.active_kernel() == kernel
        transition = transition_matrix(_graph("figure1"))
        rng = np.random.default_rng(3)
        dense = rng.random((transition.shape[0], 4))
        assert np.array_equal(
            kernels.csr_matmat(transition, dense), transition @ dense
        )

    @pytest.mark.parametrize("kernel", KERNEL_PARAMS)
    def test_unique_counts_parity(self, kernel, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, kernel)
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 50, size=500)
        unique, counts = kernels.unique_counts(keys)
        expected_unique, expected_counts = np.unique(keys, return_counts=True)
        assert np.array_equal(unique, expected_unique)
        assert np.array_equal(counts, expected_counts)

    @pytest.mark.parametrize("kernel", KERNEL_PARAMS)
    def test_batch_parity_holds_under_each_kernel(self, kernel, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, kernel)
        transition = transition_matrix(_graph("figure1"))
        n = transition.shape[0]
        groups = [[1], [2, 3], [4]]
        cols = [_personalization_columns(n, g) for g in groups]
        batched = power_iteration_batch(transition, np.concatenate(cols, axis=1))
        offset = 0
        for c in cols:
            solo = power_iteration_batch(transition, c)
            assert np.array_equal(batched[:, offset : offset + c.shape[1]], solo)
            offset += c.shape[1]

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        status = kernels.kernel_status()
        assert status.requested == "numpy"
        assert status.active == "numpy"

    def test_unknown_kernel_degrades_to_numpy_with_reason(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "turbo")
        status = kernels.kernel_status()
        assert status.active == "numpy"
        assert "unknown kernel" in status.reason
        # The query path still works under the fallback.
        transition = transition_matrix(_graph("figure1"))
        dense = np.ones((transition.shape[0], 2))
        assert np.array_equal(
            kernels.csr_matmat(transition, dense), transition @ dense
        )

    def test_missing_numba_degrades_to_numpy_with_reason(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numba")
        status = kernels.kernel_status()
        assert status.requested == "numba"
        if status.active == "numpy":  # the CI image: numba not installed
            assert "numba" in status.reason
        else:  # a dev box with numba: the kernel must self-report active
            assert "active" in status.reason

    def test_status_reresolves_when_env_changes(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "turbo")
        assert kernels.active_kernel() == "numpy"
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        assert kernels.kernel_status().reason == "pure-numpy kernels (default)"

    def test_kernel_gauge_exported(self):
        from repro.service.metrics import ServiceMetrics

        exposition = ServiceMetrics().render()
        assert 'nc_kernel_active{kernel="numpy"} 1' in exposition


# --------------------------------------------------------------------------
# Layer 3: the micro-batched worker pool (subprocess, end to end)
# --------------------------------------------------------------------------


def _config() -> WorkerConfig:
    return WorkerConfig(
        damping=0.8,
        iterations=10,
        excluded_labels=None,
        include_inverse_labels=False,
        none_bucket=True,
        discriminator_params=(),
    )


def _run_concurrently(pool: ProcessWorkerPool, jobs: "list[tuple]") -> list:
    """Submit every (header, query_ids) job from its own thread at once."""
    results: list = [None] * len(jobs)
    errors: list = []

    def _one(i: int, header, query_ids) -> None:
        try:
            results[i] = pool.run(
                header=header,
                query_ids=query_ids,
                context_size=3,
                alpha=0.05,
                rng_seed=123,
                config=_config(),
            )
        except Exception as exc:  # pragma: no cover - fails the assert below
            errors.append((query_ids, exc))

    threads = [
        threading.Thread(target=_one, args=(i, h, q))
        for i, (h, q) in enumerate(jobs)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors, f"batched jobs failed: {errors}"
    return results


def _payload(result) -> tuple:
    """A comparable, order-preserving projection of a FindNCResult."""
    return (
        result.query,
        tuple(result.context.ranked_nodes),
        tuple(sorted(result.context.scores.items())),
        tuple(
            (r.label, r.score, r.inst_score, r.card_score, r.inst_p_value,
             r.card_p_value)
            for r in result.results
        ),
        tuple((n.label, n.score, n.channel, n.p_value) for n in result.notable),
    )


class TestPoolBatchParity:
    def test_batched_pool_matches_solo_pool(self):
        graph = figure1_graph()
        queries = [(1,), (2,), (3,), (1, 2)]
        shared = publish_graph(graph)
        try:
            with ProcessWorkerPool(1) as solo_pool:
                expected = [
                    solo_pool.run(
                        header=shared.header,
                        query_ids=q,
                        context_size=3,
                        alpha=0.05,
                        rng_seed=123,
                        config=_config(),
                    )
                    for q in queries
                ]
            with ProcessWorkerPool(
                1, batch_window_ms=80.0, max_batch=4
            ) as batched_pool:
                got = _run_concurrently(
                    batched_pool, [(shared.header, q) for q in queries]
                )
                stats = batched_pool.stats()
        finally:
            shared.unlink()
        for solo, batched in zip(expected, got):
            assert _payload(batched) == _payload(solo)
        # The point of the test: these answers actually shared a sweep.
        assert stats.batches >= 1
        assert stats.batched_members == len(queries)
        assert stats.completed == len(queries)

    def test_mixed_version_batch_never_crosses_snapshots(self):
        """Members pinned to different snapshot versions are grouped apart
        and each still matches its own solo answer."""
        first = publish_graph(figure1_graph())
        second = publish_graph(figure1_graph())
        queries = [(1,), (2,)]
        try:
            with ProcessWorkerPool(1) as solo_pool:
                expected = {
                    (shared.segment, q): solo_pool.run(
                        header=shared.header,
                        query_ids=q,
                        context_size=3,
                        alpha=0.05,
                        rng_seed=123,
                        config=_config(),
                    )
                    for shared in (first, second)
                    for q in queries
                }
            with ProcessWorkerPool(
                1, batch_window_ms=80.0, max_batch=4
            ) as batched_pool:
                jobs = [
                    (shared.header, q)
                    for shared in (first, second)
                    for q in queries
                ]
                got = _run_concurrently(batched_pool, jobs)
                stats = batched_pool.stats()
        finally:
            first.unlink()
            second.unlink()
        for (shared, q), result in zip(
            ((s, q) for s in (first, second) for q in queries), got
        ):
            assert _payload(result) == _payload(expected[(shared.segment, q)])
        # Two versions cannot share a batch: at least two dispatches.
        assert stats.batches + (stats.dispatched - stats.batched_members) >= 2
        assert stats.completed == len(jobs)

    def test_single_member_window_ships_as_a_plain_task(self):
        """A batch of one takes the unbatched worker path (its parity
        oracle) and still completes."""
        shared = publish_graph(figure1_graph())
        try:
            with ProcessWorkerPool(
                1, batch_window_ms=10.0, max_batch=4
            ) as pool:
                result = pool.run(
                    header=shared.header,
                    query_ids=(1, 2),
                    context_size=3,
                    alpha=0.05,
                    rng_seed=123,
                    config=_config(),
                )
                stats = pool.stats()
        finally:
            shared.unlink()
        assert result.query == (1, 2)
        assert stats.batches == 1
        assert stats.batched_members == 1

    @pytest.mark.parametrize(
        "kwargs",
        [{"batch_window_ms": -1.0}, {"max_batch": 0}],
    )
    def test_rejects_bad_batching_kwargs(self, kwargs):
        with pytest.raises(ValueError):
            ProcessWorkerPool(1, **kwargs)
