"""Evaluation metrics.

* Set-retrieval quality: precision / recall / F1 at a context-size cutoff
  (Figures 2-4, Tables 2-3 report F1 against the crowdsourced context).
* Ranking agreement: the "minimum number of switches needed to transform
  one ranking to the other" (Section 4.2's metrics comparison) — the
  bubble-sort a.k.a. Kendall-tau distance.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TypeVar

T = TypeVar("T")


def precision_at(predicted: Sequence[T], relevant: "set[T] | frozenset[T]", k: int) -> float:
    """Precision of the top-``k`` predictions (0 when ``k`` = 0)."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    top = list(predicted[:k])
    if not top:
        return 0.0
    hits = sum(1 for item in top if item in relevant)
    return hits / len(top)


def recall_at(predicted: Sequence[T], relevant: "set[T] | frozenset[T]", k: int) -> float:
    """Recall of the top-``k`` predictions (0 when there are no relevants)."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if not relevant:
        return 0.0
    top = list(predicted[:k])
    hits = sum(1 for item in top if item in relevant)
    return hits / len(relevant)


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean; 0 when both components are 0."""
    if precision < 0 or recall < 0:
        raise ValueError("precision/recall must be non-negative")
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def f1_at(predicted: Sequence[T], relevant: "set[T] | frozenset[T]", k: int) -> float:
    """F1 of the top-``k`` predictions against the relevant set."""
    return f1_score(
        precision_at(predicted, relevant, k), recall_at(predicted, relevant, k)
    )


def f1_curve(
    predicted: Sequence[T],
    relevant: "set[T] | frozenset[T]",
    cutoffs: Iterable[int],
) -> list[tuple[int, float]]:
    """``(k, F1@k)`` for each cutoff — one line of Figure 2."""
    return [(k, f1_at(predicted, relevant, k)) for k in cutoffs]


def best_f1(
    predicted: Sequence[T],
    relevant: "set[T] | frozenset[T]",
    *,
    max_k: int | None = None,
) -> tuple[float, int]:
    """``(max F1, argmax k)`` over all cutoffs — one cell of Table 2."""
    limit = len(predicted) if max_k is None else min(max_k, len(predicted))
    best_value = 0.0
    best_k = 0
    hits = 0
    relevant_size = len(relevant)
    if relevant_size == 0:
        return (0.0, 0)
    for k in range(1, limit + 1):
        if predicted[k - 1] in relevant:
            hits += 1
        precision = hits / k
        recall = hits / relevant_size
        value = f1_score(precision, recall)
        if value > best_value:
            best_value = value
            best_k = k
    return (best_value, best_k)


def kendall_switches(ranking_a: Sequence[T], ranking_b: Sequence[T]) -> int:
    """Minimum adjacent swaps turning ``ranking_a`` into ``ranking_b``.

    Both rankings must be permutations of the same items. Counted as the
    number of inversions (merge-sort style, O(n log n)).
    """
    if len(ranking_a) != len(ranking_b) or set(ranking_a) != set(ranking_b):
        raise ValueError("rankings must be permutations of the same items")
    if len(set(ranking_a)) != len(ranking_a):
        raise ValueError("rankings must not contain duplicates")
    position_in_b = {item: index for index, item in enumerate(ranking_b)}
    sequence = [position_in_b[item] for item in ranking_a]
    return _count_inversions(sequence)


def _count_inversions(sequence: list[int]) -> int:
    if len(sequence) < 2:
        return 0
    middle = len(sequence) // 2
    left = sequence[:middle]
    right = sequence[middle:]
    count = _count_inversions(left) + _count_inversions(right)
    merged = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
            count += len(left) - i
    merged.extend(left[i:])
    merged.extend(right[j:])
    sequence[:] = merged
    return count


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0 for an empty iterable (experiment-friendly)."""
    items = list(values)
    if not items:
        return 0.0
    return sum(items) / len(items)
