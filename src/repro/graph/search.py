"""Entity search: resolving user-provided names to graph nodes.

The paper assumes "there exists a number of techniques that correctly map
keywords to nodes in any knowledge graph" [12, 24] and takes node sets as
input. This module supplies that mapping layer: exact lookup, normalized
lookup (case / underscore / punctuation folding) and fuzzy fallback, so the
examples and the CLI can accept names like ``"angela merkel"``.
"""

from __future__ import annotations

import difflib
import re
import unicodedata
from collections.abc import Callable, Iterable

from repro.errors import EntityResolutionError
from repro.graph.model import KnowledgeGraph

_PUNCT_RE = re.compile(r"[\s_\-.,:;'\"()]+")


def normalize_name(name: str) -> str:
    """Fold case, accents, punctuation and runs of separators.

    >>> normalize_name("Angela  Merkel") == normalize_name("angela_merkel")
    True
    """
    decomposed = unicodedata.normalize("NFKD", name)
    stripped = "".join(ch for ch in decomposed if not unicodedata.combining(ch))
    return _PUNCT_RE.sub(" ", stripped).strip().lower()


class EntityIndex:
    """Name -> node-id resolution over a :class:`KnowledgeGraph`.

    Builds lazily and refreshes when the graph mutates.

    >>> from repro.graph.builder import GraphBuilder
    >>> g = GraphBuilder().typed("Angela_Merkel", "politician").build()
    >>> index = EntityIndex(g)
    >>> index.resolve("angela merkel") == g.node_id("Angela_Merkel")
    True
    """

    def __init__(self, graph: KnowledgeGraph) -> None:
        self._graph = graph
        self._version = -1
        self._normalized: dict[str, list[int]] = {}

    def _refresh(self) -> None:
        graph = self._graph
        if graph.version == self._version:
            return
        # Build into a local dict and publish it with a single assignment:
        # concurrent readers (the query service shares one index across
        # request threads) always observe a *complete* mapping — either
        # the previous one or the new one, never a half-built dict.
        normalized: dict[str, list[int]] = {}
        version = graph.version
        for node_id in graph.nodes():
            key = normalize_name(graph.node_name(node_id))
            normalized.setdefault(key, []).append(node_id)
        self._normalized = normalized
        self._version = version

    def lookup(self, name: str) -> list[int]:
        """All nodes whose normalized name equals normalized ``name``."""
        graph = self._graph
        if graph.has_node(name):
            return [graph.node_id(name)]
        self._refresh()
        return list(self._normalized.get(normalize_name(name), ()))

    def resolve(self, name: str) -> int:
        """Resolve ``name`` to exactly one node id.

        Raises :class:`EntityResolutionError` carrying up to five fuzzy
        candidates when the name is unknown, and when it is ambiguous.
        """
        matches = self.lookup(name)
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            names = tuple(sorted(self._graph.node_name(m) for m in matches)[:5])
            raise EntityResolutionError(name, names)
        raise EntityResolutionError(name, tuple(self.suggest(name)))

    def resolve_all(self, names: Iterable[str]) -> list[int]:
        """Resolve several names, preserving order."""
        return [self.resolve(name) for name in names]

    def suggest(self, name: str, *, limit: int = 5) -> list[str]:
        """Fuzzy candidates for an unknown name (closest node names)."""
        self._refresh()
        key = normalize_name(name)
        close = difflib.get_close_matches(key, self._normalized.keys(), n=limit, cutoff=0.6)
        out: list[str] = []
        for candidate in close:
            for node_id in self._normalized[candidate]:
                out.append(self._graph.node_name(node_id))
        return out[:limit]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and bool(self.lookup(name))


def resolve_node_refs(
    graph: KnowledgeGraph,
    refs: Iterable["int | str"],
    index: "Callable[[], EntityIndex]",
) -> list[int]:
    """Resolve mixed node references: ids, exact names, digit ids-as-strings,
    then fuzzy names.

    The single resolution path shared by :meth:`FindNC.resolve_query` and
    the query service's :class:`~repro.service.engine.NCEngine` — keeping
    the two in lock-step matters because the service's cache key is built
    from the resolved ids. ``index`` is a zero-argument callable so lazy
    builders only pay for the fuzzy index when a fuzzy lookup happens.

    Resolution order for strings: exact node name first (a node literally
    named ``"1954"`` wins over id 1954), then — for all-digit strings,
    as sent by ``GET /search?query=42`` where everything arrives as
    text — the integer node id, then the fuzzy index.
    """
    resolved: list[int] = []
    for item in refs:
        if isinstance(item, str) and not graph.has_node(item):
            if item.isdigit() and graph.has_node(int(item)):
                resolved.append(int(item))
            else:
                resolved.append(index().resolve(item))
        else:
            resolved.append(graph.node_id(item))
    return resolved
