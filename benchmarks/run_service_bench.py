"""Run the query-service benchmark and emit BENCH_PR<N>.json.

Thin wrapper over :func:`repro.service.bench.run_service_benchmark` (the
same driver behind ``repro bench-serve``), defaulting the output to the
repo-root ``BENCH_PR10.json`` so the service has a committed perf record
alongside ``BENCH_PR1.json`` – ``BENCH_PR9.json``. Since PR 3 the suite
includes the thread-vs-process backend comparison on distinct-query
traffic; since PR 4 it also measures the snapshot-store cold start
(parse+compile vs mmap open, asserted >= 10x) and snapshot-file serving
parity; since PR 5 it exercises the multi-version **hot swap** (a
registry version swap under sustained traffic — zero failed requests,
post-swap result parity, and drain-then-retire of the old version all
asserted); since PR 6 it runs the **fault storm** (crash-injected and
SIGKILLed workers plus a mid-storm swap under sustained traffic — zero
wrong answers, only structured errors, bounded error rate, and post-storm
recovery to ``ok`` health all asserted); since PR 7 it replays the
**load profile** (Zipf-skewed, session-grouped open-loop traffic via
:mod:`repro.service.loadgen`, latency quantiles with seeded bootstrap
confidence intervals, raw samples embedded for
``tools/bench_compare.py``; see ``benchmarks/README.md`` for the field
reference); since PR 8 it runs the **saturated batch** phase
(micro-batched vs per-query process workers on saturated distinct-query
traffic, byte-identical results asserted, throughput ratio gated >= 2x
by ``tools/bench_compare.py --saturated``); since PR 9 it measures the
**trace overhead** (1%-head-sampled tracing vs tracing disabled on the
same saturated-batch workload, gated within the no-regression threshold
by ``tools/bench_compare.py --trace-overhead``, plus a forced slow-query
capture whose worker-side PPR/sweep spans must sum to at most the
request span); since PR 10 it runs the **live ingest** phase (delta
append → incremental CSR merge → hot swap cycles under sustained
reads — zero failed reads, exact chain provenance and merge
arithmetic, fresh-engine result parity all asserted, and the
ingest-window read p99 gated against a like-for-like quiescent window
by ``tools/bench_compare.py --live-ingest``).

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_service_bench.py [--out BENCH_PR10.json]
                                                          [--scale 2.0] [--workers 4]
                                                          [--quick] [--snapshot PATH]

``--quick`` is the CI smoke mode: tiny scale, one repetition, two worker
processes — seconds instead of minutes, enough to catch bitrot in both
backends on every PR (numbers are NOT comparable to the committed
BENCH_PR*.json files). ``--snapshot`` names the snapshot file for the
cold-start/serving phases; CI passes a cached path so the compiled
synthetic-YAGO snapshot is reused across workflow runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.bench import print_report, run_service_benchmark  # noqa: E402

#: The --quick preset: the smallest workload that still exercises every
#: phase, including the process backend with two workers.
QUICK_PRESET = {
    "scale": 0.5,
    "context_size": 30,
    "distinct": 6,
    "repeat": 1,
    "workers": 2,
    "saturated_scale": 1.0,
    "saturated_distinct": 4,
    "saturated_max_batch": 4,
}


def main(argv: "list[str] | None" = None) -> int:
    """Parse arguments, run the service benchmark, write the JSON report."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument("--dataset", default="yago")
    parser.add_argument("--scale", type=float, default=2.0)
    parser.add_argument("--context-size", type=int, default=100)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--distinct", type=int, default=12)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--saturated-scale", type=float, default=32.0)
    parser.add_argument("--saturated-distinct", type=int, default=16)
    parser.add_argument("--saturated-max-batch", type=int, default=16)
    parser.add_argument("--saturated-window-ms", type=float, default=30.0)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke preset: scale 0.5, 6 distinct queries, context 30, "
        "1 repetition, 2 worker processes",
    )
    parser.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        help="snapshot file for the cold-start/serving phases; an existing "
        "matching file is reused (CI caches it), else it is compiled here",
    )
    args = parser.parse_args(argv)
    if args.quick:
        for name, value in QUICK_PRESET.items():
            setattr(args, name, value)
    out = args.out if args.out is not None else REPO_ROOT / "BENCH_PR10.json"

    report = run_service_benchmark(
        dataset=args.dataset,
        scale=args.scale,
        context_size=args.context_size,
        workers=args.workers,
        distinct=args.distinct,
        repeat=args.repeat,
        seed=args.seed,
        saturated_scale=args.saturated_scale,
        saturated_distinct=args.saturated_distinct,
        saturated_max_batch=args.saturated_max_batch,
        saturated_window_ms=args.saturated_window_ms,
        snapshot_path=str(args.snapshot) if args.snapshot is not None else None,
    )
    print_report(report)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
