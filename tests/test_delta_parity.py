"""Incremental-vs-rebuild differential suite for the delta ingest path.

The tentpole guarantee of the live write path: folding delta runs into
an existing snapshot with :meth:`StreamingCompiler.merge_delta` must be
**byte-identical** — all eight CSR arrays, the name tables, and the
frozen transition — to a full recompile of the final statement set with
the chain's accumulated vocabulary pre-interned. The oracle here
replays the chain independently (a dict of inversion classes plus a
first-mention vocabulary model), so any divergence in dedup, ordering,
vocab interning, or weight recomputation fails the comparison.

Chaos cases (``--run-chaos``) drive the ``delta.append`` and
``registry.compact`` fault points: a crash mid-append or
mid-compaction may orphan files but must never leave the manifest
referencing a torn one, and a registry-backed server must keep
answering from the old version.
"""

import json
import os
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.figure1 import figure1_graph
from repro.disk import (
    DeltaLog,
    DeltaLogError,
    RegistryError,
    SnapshotRegistry,
    canonicalize_ops,
    inspect_delta_run,
    merge_snapshot_file,
    open_snapshot,
    read_delta_run,
    write_delta_run,
)
from repro.disk.delta import _class_key
from repro.disk.ingest import StreamingCompiler, compile_triples, ingest_triples
from repro.graph.compiled import ARRAY_FIELDS
from repro.graph.labels import inverse_label
from repro.service import faults

node_names = st.sampled_from([f"n{i}" for i in range(6)])
label_names = st.sampled_from(["r", "s", "t"])
statements = st.tuples(node_names, label_names, node_names)
fact_lists = st.lists(statements, min_size=0, max_size=20)
op_lists = st.lists(
    st.tuples(st.sampled_from(["+", "-"]), statements), max_size=12
)
batch_lists = st.lists(op_lists, min_size=1, max_size=3)


def assert_byte_identical(compiled, expected):
    for name, dtype in ARRAY_FIELDS:
        actual = getattr(compiled, name)
        assert actual.dtype == dtype
        assert actual.tobytes() == getattr(expected, name).tobytes(), name
    assert compiled.node_count == expected.node_count
    assert compiled.label_count == expected.label_count


def replay_oracle(base_facts, batches):
    """Independently replay a delta chain: final statements + vocabulary.

    Models the chain as a dict of inversion classes (first orientation
    wins; removes delete the class) and the vocabulary as the base's
    interning followed by each canonical batch's adds in
    subject/object/forward-label/inverse-label first-mention order —
    the exact sequence :meth:`StreamingCompiler.add` uses. Returns
    ``(final_statements, node_names, label_names, canonical_batches)``.
    """
    _, names, labels, _ = compile_triples(base_facts)
    names = list(names)
    labels = list(labels)
    known_names = set(names)
    known_labels = set(labels)

    state = {}
    for statement in base_facts:
        state.setdefault(_class_key(*statement), statement)
    canonical_batches = []
    for ops in batches:
        adds, removes = canonicalize_ops(ops)
        canonical_batches.append((adds, removes))
        for subject, label, obj in adds:
            for name in (subject, obj):
                if name not in known_names:
                    known_names.add(name)
                    names.append(name)
            for interned in (label, inverse_label(label)):
                if interned not in known_labels:
                    known_labels.add(interned)
                    labels.append(interned)
            state.setdefault(_class_key(subject, label, obj), (subject, label, obj))
        for statement in removes:
            state.pop(_class_key(*statement), None)
    return list(state.values()), names, labels, canonical_batches


def merge_chain(base_facts, canonical_batches):
    """Fold canonical batches into the base via the incremental path."""
    compiled, names, labels, _ = compile_triples(base_facts)
    labels = list(labels)
    for adds, removes in canonical_batches:
        compiled, names, label_table, _ = StreamingCompiler.merge_delta(
            compiled, names, labels, adds, removes
        )
        labels = list(label_table)
    return compiled, names, labels


class TestIncrementalVsRebuild:
    @given(fact_lists, batch_lists)
    @settings(max_examples=40, deadline=None)
    def test_merge_chain_equals_full_recompile(self, base, batches):
        """The tentpole differential: chained merges == one recompile."""
        final, oracle_names, oracle_labels, canonical = replay_oracle(
            base, batches
        )
        compiled, names, labels = merge_chain(base, canonical)
        expected, _, _, _ = compile_triples(
            final, node_names=oracle_names, label_names=oracle_labels
        )
        assert_byte_identical(compiled, expected)
        assert names == oracle_names
        assert labels == oracle_labels

    def test_mixed_order_duplicate_add_remove(self):
        """Last op per inversion class wins; earlier churn is ignored."""
        t = ("a", "r", "b")
        adds, removes = canonicalize_ops([("+", t), ("-", t), ("+", t)])
        assert (adds, removes) == ((t,), ())
        adds, removes = canonicalize_ops([("-", t), ("+", t), ("-", t)])
        assert (adds, removes) == ((), (t,))
        # Add-then-remove nets to a REMOVE, not a no-op: "ensure absent"
        # must still delete the statement from pre-existing base state.
        compiled, _, _ = merge_chain(
            [("a", "r", "b"), ("b", "s", "c")], [((), (t,))]
        )
        expected, _, _, _ = compile_triples(
            [("b", "s", "c")], node_names=["a", "b", "c"],
            label_names=["r", "r_inv", "s", "s_inv"],
        )
        assert_byte_identical(compiled, expected)

    def test_remove_is_orientation_blind(self):
        """Removing the inverse orientation deletes both CSR directions."""
        base = [("a", "r", "c"), ("c", "s", "a")]
        final, names, labels, canonical = replay_oracle(
            base, [[("-", ("c", "r_inv", "a"))]]
        )
        assert final == [("c", "s", "a")]
        compiled, _, _ = merge_chain(base, canonical)
        expected, _, _, _ = compile_triples(
            final, node_names=names, label_names=labels
        )
        assert_byte_identical(compiled, expected)

    def test_vocab_growing_adds_intern_in_first_mention_order(self):
        base = [("a", "r", "b")]
        canonical = [canonicalize_ops([
            ("+", ("x", "t", "a")),
            ("+", ("x", "r", "y")),
        ])]
        compiled, names, labels = merge_chain(base, canonical)
        # canonicalize sorts adds, so ("x","r","y") interns first.
        assert names == ["a", "b", "x", "y"]
        assert labels == ["r", "r_inv", "t", "t_inv"]
        assert compiled.node_count == 4
        assert compiled.edge_count == 6

    def test_empty_delta_is_identity(self):
        base = [("a", "r", "b"), ("b", "s", "c")]
        compiled, names, labels = merge_chain(base, [((), ())])
        expected, exp_names, exp_labels, _ = compile_triples(base)
        assert_byte_identical(compiled, expected)
        assert names == exp_names
        assert labels == list(exp_labels)

    def test_duplicate_add_of_existing_edge_is_identity(self):
        base = [("a", "r", "b")]
        canonical = [canonicalize_ops([("+", ("a", "r", "b"))])]
        compiled, _, _ = merge_chain(base, canonical)
        expected, _, _, _ = compile_triples(base)
        assert_byte_identical(compiled, expected)

    def test_remove_unknown_statement_is_noop(self):
        """Removes never grow the vocabulary — unknown names are skipped."""
        base = [("a", "r", "b")]
        canonical = [canonicalize_ops([("-", ("ghost", "r", "phantom"))])]
        compiled, names, _ = merge_chain(base, canonical)
        expected, _, _, _ = compile_triples(base)
        assert_byte_identical(compiled, expected)
        assert names == ["a", "b"]

    def test_remove_then_readd_flipped_orientation(self):
        base = [("a", "r", "b")]
        batches = [
            [("-", ("a", "r", "b"))],
            [("+", ("b", "r_inv", "a"))],
        ]
        final, names, labels, canonical = replay_oracle(base, batches)
        compiled, out_names, _ = merge_chain(base, canonical)
        expected, _, _, _ = compile_triples(
            final, node_names=names, label_names=labels
        )
        assert_byte_identical(compiled, expected)
        assert out_names == names


class TestDeltaRunFormat:
    def test_round_trip(self, tmp_path):
        adds = (("a", "r", "b"), ("x", "t", "a"))
        removes = (("b", "s", "c"),)
        path = tmp_path / "v000001-d0000.delta"
        written = write_delta_run(adds, removes, path, base_version=1, seq=0)
        assert written == os.path.getsize(path)
        got_adds, got_removes = read_delta_run(path)
        assert (tuple(got_adds), tuple(got_removes)) == (adds, removes)
        run = inspect_delta_run(path)
        assert (run.base_version, run.seq) == (1, 0)
        assert (run.adds, run.removes) == (2, 1)
        assert run.file == "v000001-d0000.delta"

    def test_delta_log_append_and_discovery(self, tmp_path):
        log = DeltaLog(tmp_path, base_version=3)
        first = log.append([("+", ("a", "r", "b"))])
        second = log.append([("-", ("a", "r", "b"))])
        assert [run.file for run in log.runs()] == [
            "v000003-d0000.delta",
            "v000003-d0001.delta",
        ]
        assert (first.adds, first.removes) == (1, 0)
        assert (second.adds, second.removes) == (0, 1)
        assert log.next_seq() == 2

    def test_noop_batch_appends_nothing(self, tmp_path):
        log = DeltaLog(tmp_path, base_version=1)
        assert log.append([]) is None
        assert log.runs() == []

    def test_foreign_files_are_ignored(self, tmp_path):
        (tmp_path / "v000001-d0000.delta.tmp.123").write_bytes(b"torn")
        (tmp_path / "notes.txt").write_text("hi")
        log = DeltaLog(tmp_path, base_version=1)
        assert log.runs() == []
        assert log.next_seq() == 0


class TestFileLevelParity:
    def test_merge_snapshot_file_matches_full_recompile(self, tmp_path):
        """File-in/file-out parity, frozen transition included."""
        from repro.graph.matrix import transition_from_snapshot

        base = [("a", "r", "b"), ("b", "s", "c"), ("c", "t", "a")]
        batches = [
            [("+", ("d", "r", "a")), ("-", ("b", "s", "c"))],
            [("+", ("d", "t", "e"))],
        ]
        final, names, labels, canonical = replay_oracle(base, batches)

        base_path = tmp_path / "base.snap"
        ingest_triples(base, base_path)
        out_path = tmp_path / "merged.snap"
        stats = merge_snapshot_file(
            base_path, canonical, out_path, version=9
        )
        assert stats.removed == 2  # both directions of the removed class

        expected, _, _, _ = compile_triples(
            final, node_names=names, label_names=labels, version=9
        )
        with open_snapshot(out_path) as snap:
            assert_byte_identical(snap.compiled, expected)
            assert list(snap.node_names) == names
            assert list(snap.label_table) == labels
            assert snap.header.version == 9
            stored = snap.transition()
            rebuilt = transition_from_snapshot(expected)
            assert stored.data.tobytes() == rebuilt.data.tobytes()
            assert stored.indices.tobytes() == rebuilt.indices.tobytes()
            assert stored.indptr.tobytes() == rebuilt.indptr.tobytes()

    def test_compact_output_matches_chain_tip(self, tmp_path):
        """Compaction rewrites the tip's content as a self-standing root."""
        registry = SnapshotRegistry(tmp_path / "serving")
        registry.publish_graph(figure1_graph())
        registry.append_delta([("+", ("fresh_x", "fresh_rel", "fresh_y"))])
        tip = registry.merge_pending()
        assert tip.base == 1 and len(tip.deltas) == 1
        compacted = registry.compact()
        assert compacted.base is None and compacted.deltas == ()
        with open_snapshot(tip.path) as chained, open_snapshot(
            compacted.path
        ) as root:
            assert_byte_identical(root.compiled, chained.compiled)
            assert list(root.node_names) == list(chained.node_names)


@pytest.mark.slow
class TestBothExecutors:
    def test_merged_snapshot_serves_identically_on_both_backends(
        self, tmp_path
    ):
        """The merged version answers the same on thread and process."""
        from repro.service.engine import NCEngine

        registry = SnapshotRegistry(tmp_path / "serving")
        registry.publish_graph(figure1_graph())
        registry.append_delta(
            [("+", ("Angela_Merkel", "colleagueOf", "Barack_Obama"))]
        )
        entry = registry.merge_pending()
        query = ["Angela_Merkel", "Barack_Obama"]
        with NCEngine(
            registry.open_view(entry.version), context_size=3, seed=7
        ) as thread_engine:
            threaded = thread_engine.search(query)
        with NCEngine(
            registry.open_view(entry.version),
            context_size=3,
            seed=7,
            executor="process",
            max_workers=1,
        ) as process_engine:
            processed = process_engine.search(query)
        assert [(i.label, i.score) for i in threaded.results] == [
            (i.label, i.score) for i in processed.results
        ]
        assert threaded.notable_labels() == processed.notable_labels()


@pytest.mark.chaos
class TestCrashMidIngest:
    def test_torn_append_never_reaches_the_manifest(self, tmp_path):
        registry = SnapshotRegistry(tmp_path / "serving")
        registry.publish_graph(figure1_graph())
        faults.set_injector(
            faults.FaultInjector([faults.FaultRule("delta.append")])
        )
        try:
            with pytest.raises(DeltaLogError, match="fault injection"):
                registry.append_delta([("+", ("x", "r", "y"))])
        finally:
            faults.reset()
        # The torn tmp is on disk but invisible: no pending runs, the
        # manifest untouched, and the next append reuses the sequence.
        torn = [
            name
            for name in os.listdir(registry.directory)
            if ".delta.tmp." in name
        ]
        assert torn, "crash-mid-append should leave the torn tmp behind"
        assert registry.pending_runs() == []
        assert registry.latest().version == 1
        run = registry.append_delta([("+", ("x", "r", "y"))])
        assert run.file == "v000001-d0000.delta"
        entry = registry.merge_pending()
        assert entry.version == 2 and entry.deltas == (run.file,)

    def test_server_keeps_answering_from_the_old_version(self, tmp_path):
        from repro.service.engine import NCEngine
        from repro.service.server import create_server

        registry = SnapshotRegistry(tmp_path / "serving")
        registry.publish_graph(figure1_graph())
        engine = NCEngine(
            registry.open_view(), context_size=3, max_workers=2, seed=5
        )
        engine.pin()
        server = create_server(engine, port=0, registry=registry, retain=2)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            faults.set_injector(
                faults.FaultInjector([faults.FaultRule("delta.append")])
            )
            try:
                request = urllib.request.Request(
                    f"{url}/v1/admin/ingest?wait=1",
                    data=b"+ <x> <r> <y> .\n",
                    method="POST",
                )
                with pytest.raises(urllib.error.HTTPError) as failure:
                    urllib.request.urlopen(request, timeout=30)
                assert failure.value.code == 500
                body = json.loads(failure.value.read())
                assert body["code"] == "ingest_failed"
            finally:
                faults.reset()
            # Old version still serving; healthz healthy; nothing pending.
            with urllib.request.urlopen(
                f"{url}/v1/healthz", timeout=30
            ) as response:
                health = json.loads(response.read())
            assert health["status"] == "ok"
            assert health["version_id"] == 1
            with urllib.request.urlopen(
                f"{url}/v1/search?query=Angela_Merkel&context_size=3",
                timeout=30,
            ) as response:
                assert response.status == 200
            # Disarmed, the same batch lands and the version advances.
            request = urllib.request.Request(
                f"{url}/v1/admin/ingest?wait=1",
                data=b"+ <x> <r> <y> .\n",
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                body = json.loads(response.read())
            assert body["accepted"] is True
            assert body["merged_version"] == 2
            with urllib.request.urlopen(
                f"{url}/v1/healthz", timeout=30
            ) as response:
                assert json.loads(response.read())["version_id"] == 2
        finally:
            server.shutdown()
            server.server_close()
            engine.close()


@pytest.mark.chaos
class TestCrashMidCompaction:
    def test_orphaned_snapshot_never_reaches_the_manifest(self, tmp_path):
        registry = SnapshotRegistry(tmp_path / "serving")
        registry.publish_graph(figure1_graph())
        registry.append_delta([("+", ("x", "r", "y"))])
        tip = registry.merge_pending()
        assert tip.version == 2 and tip.base == 1
        faults.set_injector(
            faults.FaultInjector([faults.FaultRule("registry.compact")])
        )
        try:
            with pytest.raises(RegistryError, match="fault injection"):
                registry.compact()
        finally:
            faults.reset()
        # The orphan v3 file exists but the manifest still points at the
        # chained v2 tip; a fresh registry instance loads cleanly and
        # every manifest row references a real file.
        assert os.path.exists(os.path.join(registry.directory, "v000003.snap"))
        reloaded = SnapshotRegistry(registry.directory, create=False)
        assert reloaded.latest().version == 2
        assert reloaded.latest().deltas == tip.deltas
        for entry in reloaded.versions():
            assert os.path.exists(entry.path), entry.file
        view = reloaded.open_view()
        view.close()
        # Recovery: the retry skips the orphaned id and compacts as v4.
        compacted = reloaded.compact()
        assert compacted.version == 4
        assert compacted.base is None and compacted.deltas == ()
