"""Multiprocess execution substrate: shared-memory graph snapshots.

The GIL caps thread-based serving of *distinct* queries at roughly one
core's worth of work; scaling with cores means processes, and processes
mean a serialization boundary. This package keeps that boundary cheap:
the compiled columnar snapshot (:class:`~repro.graph.compiled.CompiledGraph`)
is already a handful of flat numpy arrays, so one graph version is
published **once** into a named :mod:`multiprocessing.shared_memory`
segment (:func:`publish_snapshot`) and every worker process attaches a
zero-copy, read-only view (:func:`attach_snapshot`) — no per-request
pickling of the graph, no per-worker copy of the adjacency.

:class:`SnapshotGraphView` wraps an attached snapshot in the reader
surface of :class:`~repro.graph.model.KnowledgeGraph`, which is what lets
the unchanged ``FindNC`` pipeline run inside a worker against shared
memory. The worker pool that drives this lives in
:mod:`repro.service.workers`; the segment lifecycle contract is
documented in ``docs/ARCHITECTURE.md``.
"""

from repro.parallel.shm import (
    SharedSnapshot,
    SharedSnapshotHeader,
    SnapshotGraphView,
    attach_snapshot,
    publish_snapshot,
)

__all__ = [
    "SharedSnapshot",
    "SharedSnapshotHeader",
    "SnapshotGraphView",
    "attach_snapshot",
    "publish_snapshot",
]
