"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_args(self):
        args = build_parser().parse_args(
            ["search", "--query", "Angela_Merkel", "Barack_Obama", "--scale", "0.5"]
        )
        assert args.command == "search"
        assert args.query == ["Angela_Merkel", "Barack_Obama"]
        assert args.scale == 0.5

    def test_experiment_validates_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "yago" in out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Angela_Merkel" in out

    def test_search_on_figure1(self, capsys):
        code = main(
            [
                "search",
                "--dataset",
                "figure1",
                "--context-size",
                "3",
                "--query",
                "Angela_Merkel",
                "Barack_Obama",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query" in out
        assert "context" in out

    def test_search_baseline_flag(self, capsys):
        code = main(
            [
                "search",
                "--dataset",
                "figure1",
                "--baseline",
                "--context-size",
                "3",
                "--query",
                "Angela_Merkel",
            ]
        )
        assert code == 0
        assert "RandomWalk" in capsys.readouterr().out
