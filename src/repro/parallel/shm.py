"""Zero-copy publication of compiled graph snapshots over shared memory.

One :class:`~repro.graph.compiled.CompiledGraph` version is exported into
a **single** named shared-memory segment laid out as::

    [ indptr | sources | label_ids | targets | label_indptr | label_order
      | label_weights | out_weight | node-name offsets | node-name blob
      | label-name offsets | label-name blob
      | transition data | indices | indptr   (optional CSR triple) ]

with every block 8-byte aligned. The optional trailing blocks carry the
frozen Equation-2 PPR transition matrix (:data:`TRANSITION_FIELDS`), so
workers adopt the publisher's matrix instead of each rebuilding
``weighted_adjacency``; the disk snapshot store (:mod:`repro.disk`)
persists the same block set to a file. The layout is described by a small
picklable :class:`SharedSnapshotHeader` (segment name, scalar metadata,
per-block offsets/shapes) — the *only* thing that crosses the process
boundary per publication; requests then reference the header and workers
attach at most once per graph version.

Name tables travel as UTF-8 blobs plus ``int64`` offset arrays. Node
names are decoded lazily (:class:`SharedNameTable`) because the pipeline
only ever touches the few hundred names that appear as instance values;
edge-label names are few and decode eagerly into a
:class:`~repro.graph.labels.LabelTable`.

Lifecycle contract (enforced by :mod:`repro.service.workers`):

* the **publisher** (the engine process) owns the segment: it calls
  :meth:`SharedSnapshot.unlink` exactly once, when the version is retired
  and no request in flight still references it;
* **attachers** only ever :meth:`AttachedSnapshot.close` — they must
  never unlink. Attaching deregisters the segment from this process's
  ``resource_tracker`` so a worker exiting does not tear the segment
  down under the publisher (CPython < 3.13 tracks attached segments too;
  3.13+ exposes ``track=False`` for the same effect).

POSIX keeps an unlinked segment alive until the last map closes, so a
worker holding an old version's mapping finishes its request safely even
after the publisher unlinks; only *new* attaches fail, which the pool
surfaces as :class:`StaleSnapshotError` and the engine answers by
re-dispatching against the current version.
"""

from __future__ import annotations

import secrets
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import NodeNotFoundError
from repro.graph.compiled import ARRAY_FIELDS, CompiledGraph
from repro.graph.labels import LabelTable

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from collections.abc import Iterable, Sequence

    from repro.graph.model import KnowledgeGraph, NodeRef


class StaleSnapshotError(RuntimeError):
    """Attaching failed because the publisher already unlinked the segment."""


def _aligned(offset: int, alignment: int = 8) -> int:
    """Round ``offset`` up to the next multiple of ``alignment``."""
    return (offset + alignment - 1) // alignment * alignment


@dataclass(frozen=True)
class _BlockSpec:
    """One array block inside the segment: where it is and what it holds."""

    offset: int
    length: int  # element count, not bytes
    dtype: str   # numpy dtype string, e.g. "int64" / "uint8"

    @property
    def nbytes(self) -> int:
        """Block size in bytes."""
        return self.length * np.dtype(self.dtype).itemsize


#: Block names of a packed frozen transition matrix (CSR triple), in
#: canonical order. Shared by the shm segment and the disk snapshot store
#: (:mod:`repro.disk`): both publish the same three arrays so consumers
#: rebuild ``scipy.sparse.csr_matrix((data, indices, indptr))`` zero-copy.
TRANSITION_FIELDS: "tuple[str, ...]" = (
    "transition_data",
    "transition_indices",
    "transition_indptr",
)


def transition_blocks(transition) -> "list[tuple[str, np.ndarray]]":
    """``(name, array)`` pairs of a scipy CSR matrix, in
    :data:`TRANSITION_FIELDS` order (the export half of transition
    sharing)."""
    return [
        ("transition_data", np.asarray(transition.data)),
        ("transition_indices", np.asarray(transition.indices)),
        ("transition_indptr", np.asarray(transition.indptr)),
    ]


def build_transition_csr(
    data: np.ndarray, indices: np.ndarray, indptr: np.ndarray, node_count: int
):
    """Rebuild the frozen transition matrix from its shared CSR triple.

    The attach half of transition sharing: the arrays may view foreign
    memory (an shm segment or an mmapped snapshot file); scipy wraps them
    without copying. Import is local so :mod:`repro.parallel.shm` keeps
    working where scipy is absent until a transition is actually used.
    """
    from scipy import sparse

    return sparse.csr_matrix(
        (data, indices, indptr), shape=(node_count, node_count), copy=False
    )


@dataclass(frozen=True)
class SharedSnapshotHeader:
    """The picklable description of one published snapshot segment.

    Everything a worker needs to reconstruct the snapshot: the segment
    *name* (the shared-memory rendezvous), the three snapshot scalars,
    and the block table. Headers are tiny (a few hundred bytes pickled)
    and safe to ship with every request. ``transition`` is the optional
    block table of the pinned PPR transition matrix's CSR triple
    (:data:`TRANSITION_FIELDS`); when present, workers adopt the matrix
    instead of rebuilding it from the adjacency.
    """

    segment: str
    graph_name: str
    version: int
    node_count: int
    label_count: int
    arrays: "tuple[tuple[str, _BlockSpec], ...]"
    node_name_offsets: _BlockSpec
    node_name_blob: _BlockSpec
    label_name_offsets: _BlockSpec
    label_name_blob: _BlockSpec
    total_bytes: int
    transition: "tuple[tuple[str, _BlockSpec], ...] | None" = None


def _encode_names(names: "Sequence[str]") -> "tuple[np.ndarray, np.ndarray]":
    """Pack ``names`` into ``(offsets, blob)`` — int64 offsets, UTF-8 bytes."""
    encoded = [name.encode("utf-8") for name in names]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(raw) for raw in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy() if encoded else (
        np.empty(0, dtype=np.uint8)
    )
    return offsets, blob


class SharedNameTable:
    """Lazy, read-only view of a packed name table.

    Quacks like the ``list[str]`` returned by
    ``KnowledgeGraph._node_names_list()`` for the operations the pipeline
    performs (indexing, length, iteration), but decodes each name from
    the shared UTF-8 blob on first touch and memoizes it — a request
    typically reads a few hundred of the graph's hundreds of thousands
    of names, so eager decoding would dominate attach time.
    """

    __slots__ = ("_offsets", "_blob", "_cache")

    def __init__(self, offsets: np.ndarray, blob: np.ndarray) -> None:
        self._offsets = offsets
        self._blob = blob
        self._cache: dict[int, str] = {}

    def __len__(self) -> int:
        return self._offsets.shape[0] - 1

    def __getitem__(self, index: int) -> str:
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        if not -len(self) <= index < len(self):
            raise IndexError(index)
        if index < 0:
            index += len(self)
        start, end = int(self._offsets[index]), int(self._offsets[index + 1])
        name = bytes(self._blob[start:end]).decode("utf-8")
        self._cache[index] = name
        return name

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]

    def release(self) -> None:
        """Drop the shared-buffer views (decoded strings survive)."""
        self._offsets = np.empty(1, dtype=np.int64)
        self._blob = np.empty(0, dtype=np.uint8)


class SharedSnapshot:
    """A published snapshot segment, owned by the publishing process."""

    def __init__(self, header: SharedSnapshotHeader, shm: shared_memory.SharedMemory) -> None:
        self.header = header
        self._shm: shared_memory.SharedMemory | None = shm
        self._unlinked = False

    @property
    def segment(self) -> str:
        """The shared-memory segment name (the attach rendezvous)."""
        return self.header.segment

    @property
    def version(self) -> int:
        """The graph version this segment holds."""
        return self.header.version

    @property
    def nbytes(self) -> int:
        """Total segment size in bytes."""
        return self.header.total_bytes

    def unlink(self) -> None:
        """Remove the segment name and release the publisher's mapping.

        Idempotent. Workers still holding a mapping keep reading safely
        (POSIX semantics); new attaches fail with
        :class:`StaleSnapshotError`.
        """
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        if not self._unlinked:
            self._unlinked = True
            shm.unlink()
        shm.close()

    close = unlink  # the publisher's close implies retirement

    def __enter__(self) -> "SharedSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.unlink()


def publish_snapshot(
    compiled: CompiledGraph,
    node_names: "Sequence[str]",
    label_names: "Sequence[str]",
    *,
    graph_name: str = "knowledge-graph",
    segment_prefix: str = "repro-snap",
    transition=None,
) -> SharedSnapshot:
    """Export one compiled snapshot into a fresh shared-memory segment.

    ``node_names`` / ``label_names`` are sliced to the snapshot's
    ``node_count`` / ``label_count`` so a name table that has grown past
    the snapshot (writers kept adding nodes) cannot leak newer state into
    the published version.

    ``transition`` (optional) is the pinned PPR transition matrix (scipy
    CSR) for this snapshot version; its ``(data, indices, indptr)``
    triple is packed into the segment so every worker adopts ONE frozen
    matrix instead of rebuilding ``weighted_adjacency`` per worker per
    version.

    Returns the :class:`SharedSnapshot` handle whose
    :attr:`~SharedSnapshot.header` workers attach with; the caller owns
    the segment and must eventually :meth:`~SharedSnapshot.unlink` it.
    """
    if len(node_names) < compiled.node_count:
        raise ValueError(
            f"need {compiled.node_count} node names, got {len(node_names)}"
        )
    if len(label_names) < compiled.label_count:
        raise ValueError(
            f"need {compiled.label_count} label names, got {len(label_names)}"
        )
    node_offsets, node_blob = _encode_names(node_names[: compiled.node_count])
    label_offsets, label_blob = _encode_names(label_names[: compiled.label_count])

    blocks: list[tuple[str, np.ndarray]] = [
        (name, array) for name, array in compiled.arrays().items()
    ]
    blocks += [
        ("node_name_offsets", node_offsets),
        ("node_name_blob", node_blob),
        ("label_name_offsets", label_offsets),
        ("label_name_blob", label_blob),
    ]
    if transition is not None:
        if transition.shape != (compiled.node_count, compiled.node_count):
            raise ValueError(
                f"transition matrix shape {transition.shape} does not match "
                f"the snapshot's {compiled.node_count} nodes"
            )
        blocks += transition_blocks(transition)
    specs: dict[str, _BlockSpec] = {}
    offset = 0
    for name, array in blocks:
        offset = _aligned(offset)
        specs[name] = _BlockSpec(
            offset=offset, length=int(array.shape[0]), dtype=array.dtype.name
        )
        offset += array.nbytes
    total = max(offset, 1)  # zero-size segments are not allowed

    segment = f"{segment_prefix}-v{compiled.version}-{secrets.token_hex(4)}"
    # Creation takes the same lock as the attach-side register patch
    # (see _attach_segment): on Python < 3.13 an attach happening on
    # another thread no-ops resource_tracker.register for its duration,
    # and a create inside that window would silently lose its tracker
    # registration (defeating the die-without-unlink reclaim).
    with _attach_lock:
        shm = shared_memory.SharedMemory(name=segment, create=True, size=total)
    try:
        for name, array in blocks:
            spec = specs[name]
            if spec.length == 0:
                continue
            view = np.ndarray(
                (spec.length,), dtype=spec.dtype, buffer=shm.buf, offset=spec.offset
            )
            view[:] = array
            del view  # drop the exported-buffer reference before any close()
    except BaseException:  # pragma: no cover - only on copy failure
        shm.close()
        shm.unlink()
        raise

    header = SharedSnapshotHeader(
        segment=segment,
        graph_name=graph_name,
        version=compiled.version,
        node_count=compiled.node_count,
        label_count=compiled.label_count,
        arrays=tuple((name, specs[name]) for name, _ in ARRAY_FIELDS),
        node_name_offsets=specs["node_name_offsets"],
        node_name_blob=specs["node_name_blob"],
        label_name_offsets=specs["label_name_offsets"],
        label_name_blob=specs["label_name_blob"],
        total_bytes=total,
        transition=(
            tuple((name, specs[name]) for name in TRANSITION_FIELDS)
            if transition is not None
            else None
        ),
    )
    return SharedSnapshot(header, shm)


def publish_graph(
    graph: "KnowledgeGraph", *, segment_prefix: str = "repro-snap"
) -> SharedSnapshot:
    """Publish ``graph``'s current compiled snapshot (convenience wrapper)."""
    compiled = graph.compiled()
    return publish_snapshot(
        compiled,
        graph._node_names_list(),  # noqa: SLF001 - sliced to the snapshot inside
        [
            graph._label_table().name(label_id)  # noqa: SLF001
            for label_id in range(compiled.label_count)
        ],
        graph_name=graph.name,
        segment_prefix=segment_prefix,
    )


_attach_lock = threading.Lock()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without resource-tracker ownership.

    Python < 3.13 registers attached segments with the resource tracker
    exactly as created ones, but parent and spawned workers share ONE
    tracker process whose registry is a set — an attacher's entry
    collapses into the publisher's, and any attach-side unregister (ours
    or the tracker's exit-time cleanup) would tear down the publisher's
    bookkeeping. So registration is suppressed during attach; 3.13+ has
    ``track=False`` for exactly this.
    """
    from repro.service import faults  # lazy: service imports this module

    if faults.fire("shm.attach"):
        raise StaleSnapshotError(
            f"fault injection: attach of segment {name!r} failed"
        )
    try:
        try:
            return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
        except TypeError:
            with _attach_lock:
                original = resource_tracker.register
                resource_tracker.register = lambda *args, **kwargs: None
                try:
                    return shared_memory.SharedMemory(name=name)
                finally:
                    resource_tracker.register = original
    except FileNotFoundError as error:
        raise StaleSnapshotError(
            f"shared snapshot segment {name!r} is gone (publisher unlinked it)"
        ) from error


class AttachedSnapshot:
    """A worker-side, read-only reconstruction of a published snapshot."""

    def __init__(self, header: SharedSnapshotHeader) -> None:
        self.header = header
        self._shm: shared_memory.SharedMemory | None = _attach_segment(header.segment)
        arrays = {
            name: self._view(spec) for name, spec in header.arrays
        }
        #: The reconstructed snapshot; arrays view the shared segment.
        self.compiled = CompiledGraph.from_arrays(
            version=header.version,
            node_count=header.node_count,
            label_count=header.label_count,
            arrays=arrays,
        )
        #: Lazy node-name table (phi of Definition 1).
        self.node_names = SharedNameTable(
            self._view(header.node_name_offsets), self._view(header.node_name_blob)
        )
        # Label vocabularies are small; decode them eagerly into a real
        # LabelTable so lookup()/name() behave exactly like the live graph.
        label_names = SharedNameTable(
            self._view(header.label_name_offsets), self._view(header.label_name_blob)
        )
        self.label_table = LabelTable()
        for label in label_names:
            self.label_table.intern(label)
        label_names.release()
        self._transition = None

    def transition(self):
        """The published frozen PPR transition matrix, or ``None``.

        Rebuilt (and memoized) as a scipy CSR over zero-copy views of the
        segment's :data:`TRANSITION_FIELDS` blocks. ``None`` when the
        publisher did not share one (workers then rebuild it from the
        snapshot arrays, the pre-PR-4 behaviour).
        """
        if self._transition is not None:
            return self._transition
        if self.header.transition is None:
            return None
        views = {name: self._view(spec) for name, spec in self.header.transition}
        self._transition = build_transition_csr(
            views["transition_data"],
            views["transition_indices"],
            views["transition_indptr"],
            self.header.node_count,
        )
        return self._transition

    def _view(self, spec: _BlockSpec) -> np.ndarray:
        assert self._shm is not None
        view = np.ndarray(
            (spec.length,), dtype=spec.dtype, buffer=self._shm.buf, offset=spec.offset
        )
        view.setflags(write=False)
        return view

    def close(self) -> None:
        """Release this process's mapping (never unlinks the segment).

        Drops every numpy view first — a ``memoryview`` with live
        exports cannot be released — so callers must not use
        :attr:`compiled` or :attr:`node_names` afterwards.
        """
        if self._shm is None:
            return
        self.compiled = None  # type: ignore[assignment]
        self._transition = None
        self.node_names.release()
        self.node_names = None  # type: ignore[assignment]
        shm, self._shm = self._shm, None
        shm.close()

    def __enter__(self) -> "AttachedSnapshot":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def attach_snapshot(header: SharedSnapshotHeader) -> AttachedSnapshot:
    """Attach to a published snapshot; raises :class:`StaleSnapshotError`
    when the publisher has already unlinked the segment."""
    return AttachedSnapshot(header)


class SnapshotGraphView:
    """The reader surface of :class:`~repro.graph.model.KnowledgeGraph`,
    backed entirely by an attached shared snapshot.

    Inside a worker process the ``FindNC`` pipeline needs a "graph", but
    only its *reader* API: id/name resolution, the label table, the
    compiled snapshot (for the weighted-adjacency / transition-matrix
    build and the batch distribution sweep). This adapter provides
    exactly that set; every mutating or live-adjacency method is absent
    by construction, so a worker cannot accidentally depend on state
    that was never shared.

    The view's :meth:`compiled` / ``_compiled()`` return the attached
    snapshot, which makes
    :class:`~repro.walk.pagerank.PersonalizedPageRank` and
    :func:`~repro.core.distributions.build_all_distributions` run
    unmodified on shared memory.

    ``attached`` is anything exposing the attach surface — an shm
    :class:`AttachedSnapshot` or a :class:`repro.disk.DiskSnapshot`
    (mmap-backed); the view itself never touches the transport.
    """

    #: Marker consumed by :class:`~repro.service.engine.NCEngine`: a
    #: frozen view's ``version`` never advances, so the engine pins once
    #: and serves with no live :class:`KnowledgeGraph` in the process.
    frozen = True

    def __init__(self, attached) -> None:
        self._attached = attached
        self.name = attached.header.graph_name
        self._name_index: "dict[str, int] | None" = None

    # -- identity ----------------------------------------------------------

    @property
    def version(self) -> int:
        """The pinned snapshot version (never advances: views are frozen)."""
        return self._attached.header.version

    @property
    def node_count(self) -> int:
        """|V| of the pinned version."""
        return self._attached.header.node_count

    @property
    def edge_count(self) -> int:
        """|E| of the pinned version."""
        return self._attached.compiled.edge_count

    # -- node resolution ---------------------------------------------------

    def has_node(self, ref: "NodeRef") -> bool:
        """Whether ``ref`` (id or exact name) exists in the pinned version."""
        if isinstance(ref, str):
            try:
                self.node_id(ref)
                return True
            except NodeNotFoundError:
                return False
        return isinstance(ref, int) and 0 <= ref < self.node_count

    def node_id(self, ref: "NodeRef") -> int:
        """Resolve an id (range-checked) or exact name.

        Workers receive queries already resolved to ids by the engine, so
        their string path stays cold. Snapshot-file *serving*
        (``repro serve --snapshot``) resolves names in this process, which
        makes the string path hot — the first string lookup builds a full
        ``{name: id}`` index (one decode pass over the name blob, the
        same cost the live graph pays at construction) and every later
        lookup is a dict hit.
        """
        if isinstance(ref, str):
            index = self._name_index
            if index is None:
                index = {
                    name: node_id
                    for node_id, name in enumerate(self._attached.node_names)
                }
                self._name_index = index
            node_id = index.get(ref)
            if node_id is None:
                raise NodeNotFoundError(ref)
            return node_id
        if not isinstance(ref, int) or isinstance(ref, bool):
            raise TypeError(
                f"node reference must be int or str, got {type(ref).__name__}"
            )
        if not 0 <= ref < self.node_count:
            raise NodeNotFoundError(ref)
        return ref

    def node_ids(self, refs: "Iterable[NodeRef]") -> list[int]:
        """Resolve many references at once (mirrors the live graph)."""
        return [self.node_id(ref) for ref in refs]

    def node_name(self, node_id: int) -> str:
        """phi(v), decoded lazily from the shared name blob."""
        if not 0 <= node_id < self.node_count:
            raise NodeNotFoundError(node_id)
        return self._attached.node_names[node_id]

    def nodes(self) -> range:
        """All node ids of the pinned version (dense, so a range).

        Mirrors :meth:`KnowledgeGraph.nodes` — the entity index iterates
        this to build its normalized-name map when a frozen view is
        served directly.
        """
        return range(self.node_count)

    def node_names(self):
        """Iterate phi over all nodes (decoded lazily)."""
        return iter(self._attached.node_names)

    # -- snapshot access (the internal fast-path surface) ------------------

    def compiled(self) -> CompiledGraph:
        """The attached snapshot (already pinned — identical on every call)."""
        return self._attached.compiled

    def _compiled(self) -> CompiledGraph:
        return self._attached.compiled

    def _label_table(self) -> LabelTable:
        return self._attached.label_table

    def _node_names_list(self) -> SharedNameTable:
        return self._attached.node_names

    def summary(self) -> str:
        """One-line |V|/|E| digest, like the live graph's."""
        return (
            f"{self.name}@v{self.version} (shared view): "
            f"|V|={self.node_count}, |E|={self.edge_count}"
        )

    def close(self) -> None:
        """Release the underlying attachment (segment mapping or mmap).

        The view must not be used afterwards — same contract as closing
        the attachment directly. Convenience for serving callers that own
        the view's whole lifecycle (the benchmark, short-lived scripts).
        """
        self._attached.close()
