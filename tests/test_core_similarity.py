"""Unit tests for structural similarity helpers."""

import pytest

from repro.core.similarity import (
    jaccard_neighbors,
    mean_query_similarity,
    shared_neighbor_count,
)
from repro.graph.builder import GraphBuilder


@pytest.fixture()
def graph():
    return (
        GraphBuilder()
        .fact("a", "r", "x")
        .fact("a", "r", "y")
        .fact("b", "r", "x")
        .fact("b", "r", "y")
        .fact("c", "r", "x")
        .fact("d", "r", "z")
        .build()
    )


class TestSharedNeighbors:
    def test_full_overlap(self, graph):
        assert shared_neighbor_count(graph, "a", "b") == 2

    def test_partial_overlap(self, graph):
        assert shared_neighbor_count(graph, "a", "c") == 1

    def test_no_overlap(self, graph):
        assert shared_neighbor_count(graph, "a", "d") == 0


class TestJaccard:
    def test_identical_neighborhoods(self, graph):
        assert jaccard_neighbors(graph, "a", "b") == pytest.approx(1.0)

    def test_partial(self, graph):
        assert jaccard_neighbors(graph, "a", "c") == pytest.approx(0.5)

    def test_disjoint(self, graph):
        assert jaccard_neighbors(graph, "a", "d") == pytest.approx(0.0)

    def test_isolated_nodes(self):
        graph = GraphBuilder().node("lonely").node("alone").build()
        assert jaccard_neighbors(graph, "lonely", "alone") == 0.0

    def test_symmetry(self, graph):
        assert jaccard_neighbors(graph, "a", "c") == jaccard_neighbors(graph, "c", "a")


class TestMeanQuerySimilarity:
    def test_averages_over_query(self, graph):
        value = mean_query_similarity(graph, "c", ["a", "b"])
        assert value == pytest.approx(0.5)

    def test_empty_query_rejected(self, graph):
        with pytest.raises(ValueError):
            mean_query_similarity(graph, "a", [])
