"""Tests for the process execution backend (pool, lifecycle, parity)."""

from __future__ import annotations

import glob
import threading
import time

import pytest

from repro.datasets.figure1 import figure1_graph
from repro.errors import DeadlineExceededError
from repro.parallel.shm import StaleSnapshotError, publish_graph
from repro.service import faults
from repro.service.engine import NCEngine
from repro.service.workers import (
    ProcessWorkerPool,
    RemoteQueryError,
    WorkerConfig,
    WorkerCrashError,
)

QUERY = ["Angela_Merkel", "Barack_Obama"]


def _segments() -> set[str]:
    """The repro snapshot segments currently linked on this host."""
    return set(glob.glob("/dev/shm/repro-snap-*"))


def _config() -> WorkerConfig:
    return WorkerConfig(
        damping=0.8,
        iterations=10,
        excluded_labels=None,
        include_inverse_labels=False,
        none_bucket=True,
        discriminator_params=(),
    )


@pytest.fixture(scope="module")
def pool():
    """One persistent single-worker pool shared by the pool-level tests."""
    with ProcessWorkerPool(1) as p:
        yield p


class TestProcessWorkerPool:
    def test_run_executes_findnc_remotely(self, pool):
        graph = figure1_graph()
        shared = publish_graph(graph)
        try:
            result = pool.run(
                header=shared.header,
                query_ids=(1, 2),
                context_size=3,
                alpha=0.05,
                rng_seed=123,
                config=_config(),
            )
            assert result.query == (1, 2)
            assert result.results
        finally:
            pool.retire(shared)

    def test_retire_unlinks_idle_segment_immediately(self, pool):
        shared = publish_graph(figure1_graph())
        assert f"/dev/shm/{shared.segment}" in _segments()
        pool.retire(shared)
        assert f"/dev/shm/{shared.segment}" not in _segments()

    def test_stale_segment_surfaces_as_retriable_error(self, pool):
        shared = publish_graph(figure1_graph())
        header = shared.header
        shared.unlink()
        with pytest.raises(StaleSnapshotError):
            pool.run(
                header=header,
                query_ids=(1, 2),
                context_size=3,
                alpha=0.05,
                rng_seed=123,
                config=_config(),
            )
        assert pool.stats().stale_retries == 1

    def test_worker_error_carries_remote_traceback(self, pool):
        shared = publish_graph(figure1_graph())
        try:
            with pytest.raises(RemoteQueryError, match="worker traceback"):
                pool.run(
                    header=shared.header,
                    query_ids=(10 ** 9,),  # beyond the snapshot: QueryError
                    context_size=3,
                    alpha=0.05,
                    rng_seed=123,
                    config=_config(),
                )
        finally:
            pool.retire(shared)

    def test_stats_counters(self, pool):
        stats = pool.stats()
        assert stats.workers == 1
        assert stats.alive == 1
        assert stats.dispatched >= 3
        assert stats.inflight == 0
        assert stats.as_dict()["workers"] == 1

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ProcessWorkerPool(0)


class TestWorkerCrash:
    pytestmark = pytest.mark.chaos

    def test_dead_worker_raises_then_slot_recovers(self):
        pool = ProcessWorkerPool(1)
        shared = publish_graph(figure1_graph())
        try:
            pool._processes[0].terminate()
            pool._processes[0].join(timeout=10)
            with pytest.raises(WorkerCrashError):
                pool.run(
                    header=shared.header,
                    query_ids=(1, 2),
                    context_size=3,
                    alpha=0.05,
                    rng_seed=123,
                    config=_config(),
                )
            # The watchdog respawned the slot: the next job must succeed
            # and the pool must report the replacement.
            result = pool.run(
                header=shared.header,
                query_ids=(1, 2),
                context_size=3,
                alpha=0.05,
                rng_seed=123,
                config=_config(),
            )
            assert result.query == (1, 2)
            stats = pool.stats()
            assert stats.respawns == 1
            assert stats.alive == 1
            assert stats.inflight == 0  # crashed job gave its slot back
        finally:
            pool.retire(shared)
            pool.close()

    def test_sigkill_mid_job_recovers_slot_and_refcount(self, monkeypatch):
        """SIGKILL a worker while it is computing: the watchdog abandons
        the job, recovers the segment refcount, and replaces the worker."""
        # The first task stalls for 30s inside the worker (worker.slow is
        # read from the env at spawn), guaranteeing the SIGKILL lands
        # mid-job; the variable is cleared before the respawn so the
        # replacement worker is healthy.
        monkeypatch.setenv(faults.FAULTS_ENV, "worker.slow=1:30:1")
        pool = ProcessWorkerPool(1, watchdog_tick=0.05, crash_grace_s=0.2)
        monkeypatch.delenv(faults.FAULTS_ENV)
        shared = publish_graph(figure1_graph())
        try:
            victim = pool._processes[0]
            killer = threading.Timer(0.3, victim.kill)
            killer.start()
            started = time.monotonic()
            with pytest.raises(WorkerCrashError, match="replacement worker"):
                pool.run(
                    header=shared.header,
                    query_ids=(1, 2),
                    context_size=3,
                    alpha=0.05,
                    rng_seed=123,
                    config=_config(),
                )
            # Surfaced within the kill delay + tick + grace, not the
            # worker's 30s stall.
            assert time.monotonic() - started < 5.0
            killer.join()
            stats = pool.stats()
            assert stats.respawns == 1
            assert stats.alive == 1
            assert stats.inflight == 0  # _abandon gave the slot back
            # The replacement worker serves the next job.
            result = pool.run(
                header=shared.header,
                query_ids=(1, 2),
                context_size=3,
                alpha=0.05,
                rng_seed=123,
                config=_config(),
            )
            assert result.query == (1, 2)
        finally:
            # The abandoned job's refcount was recovered: retire unlinks
            # the segment immediately instead of parking it forever.
            pool.retire(shared)
            assert f"/dev/shm/{shared.segment}" not in _segments()
            pool.close()

    def test_respawn_rate_limit_then_revive(self):
        pool = ProcessWorkerPool(
            1,
            watchdog_tick=0.05,
            crash_grace_s=0.2,
            respawn_limit=1,
            respawn_window_s=60.0,
        )
        shared = publish_graph(figure1_graph())

        def crash_once() -> None:
            pool._processes[0].kill()
            pool._processes[0].join(timeout=10)

        def run_once():
            return pool.run(
                header=shared.header,
                query_ids=(1, 2),
                context_size=3,
                alpha=0.05,
                rng_seed=123,
                config=_config(),
            )

        try:
            crash_once()
            with pytest.raises(WorkerCrashError, match="replacement worker"):
                run_once()
            # Second crash inside the window: the respawn budget (1 per
            # 60s) is spent, so the dead slot stays down.
            crash_once()
            with pytest.raises(WorkerCrashError, match="suppressed"):
                run_once()
            stats = pool.stats()
            assert stats.respawns == 1
            assert stats.respawns_suppressed == 1
            assert stats.alive == 0
            # revive() resets the window and brings the slot back now.
            assert pool.revive() == 1
            assert pool.stats().alive == 1
            assert run_once().query == (1, 2)
        finally:
            pool.retire(shared)
            pool.close()

    def test_revive_on_closed_pool_is_a_noop(self):
        pool = ProcessWorkerPool(1)
        pool.close()
        assert pool.revive() == 0


class TestPoolDeadlines:
    def test_expired_deadline_rejected_before_dispatch(self, pool):
        shared = publish_graph(figure1_graph())
        try:
            dispatched_before = pool.stats().dispatched
            with pytest.raises(DeadlineExceededError, match="before the job"):
                pool.run(
                    header=shared.header,
                    query_ids=(1, 2),
                    context_size=3,
                    alpha=0.05,
                    rng_seed=123,
                    config=_config(),
                    deadline=time.monotonic() - 0.01,
                )
            stats = pool.stats()
            assert stats.dispatched == dispatched_before  # never enqueued
            assert stats.deadline_abandons == 1
        finally:
            pool.retire(shared)

    def test_generous_deadline_does_not_interfere(self, pool):
        shared = publish_graph(figure1_graph())
        try:
            result = pool.run(
                header=shared.header,
                query_ids=(1, 2),
                context_size=3,
                alpha=0.05,
                rng_seed=123,
                config=_config(),
                deadline=time.monotonic() + 30.0,
            )
            assert result.query == (1, 2)
        finally:
            pool.retire(shared)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"watchdog_tick": 0.0},
            {"crash_grace_s": -0.1},
            {"respawn_limit": 0},
            {"respawn_window_s": 0.0},
        ],
    )
    def test_rejects_bad_tuning_kwargs(self, kwargs):
        with pytest.raises(ValueError):
            ProcessWorkerPool(1, **kwargs)


class TestDispatcherDrain:
    def test_close_flushes_gathered_batch_members(self):
        """Members sitting in the gather window survive ``close()``.

        Regression: the dispatcher used to exit as soon as ``_closed``
        was observed, dropping already-accepted tasks still waiting out
        the batch window — their callers then failed with "worker pool
        closed" even though the pool had acknowledged the work. The
        window here is far longer than the test, so every member is
        still gathered (not dispatched) when ``close()`` lands.
        """
        pool = ProcessWorkerPool(1, max_batch=8, batch_window_ms=60_000.0)
        shared = publish_graph(figure1_graph())
        results: "list" = []
        errors: "list[BaseException]" = []

        def submit() -> None:
            try:
                results.append(
                    pool.run(
                        header=shared.header,
                        query_ids=(1, 2),
                        context_size=3,
                        alpha=0.05,
                        rng_seed=123,
                        config=_config(),
                    )
                )
            except BaseException as error:  # noqa: BLE001 - asserted below
                errors.append(error)

        threads = [threading.Thread(target=submit) for _ in range(3)]
        try:
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with pool._lock:
                    gathered = len(pool._pending)
                if gathered == len(threads):
                    break
                time.sleep(0.01)
            else:
                pytest.fail("members never reached the gather window")

            pool.close()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not any(thread.is_alive() for thread in threads)
            assert not errors, f"flushed members failed: {errors!r}"
            assert len(results) == len(threads)
            assert all(result.query == (1, 2) for result in results)
            assert all(result.results for result in results)
        finally:
            shared.unlink()


class TestProcessEngine:
    @pytest.fixture()
    def graph(self):
        return figure1_graph()

    @pytest.mark.slow
    def test_parity_lifecycle_and_no_segment_leaks(self, graph):
        before = _segments()
        with NCEngine(graph, context_size=3, max_workers=2, seed=5) as thread_engine:
            thread_results = [
                thread_engine.search(QUERY),
                thread_engine.search(["Vladimir_Putin"]),
            ]
        with NCEngine(
            graph, context_size=3, max_workers=2, executor="process", seed=5
        ) as engine:
            # -- result parity with the thread backend ---------------------
            process_results = [
                engine.search(QUERY),
                engine.search(["Vladimir_Putin"]),
            ]
            for mine, theirs in zip(process_results, thread_results):
                assert mine.query == theirs.query
                assert [r.label for r in mine.results] == [
                    r.label for r in theirs.results
                ]
                assert [r.score for r in mine.results] == [
                    r.score for r in theirs.results
                ]
                assert mine.notable_labels() == theirs.notable_labels()

            # -- cache / coalescing stay in the parent ---------------------
            outcome = engine.request(QUERY)
            assert outcome.cached
            stats = engine.stats()
            assert stats.executor == "process"
            assert stats.workers is not None and stats.workers["workers"] == 2
            assert stats.workers["completed"] >= 2

            # -- version bump: re-pin publishes a new segment and unlinks
            # the old one (no in-flight requests reference it) -------------
            first_segment = engine._pinned.shared.segment
            assert f"/dev/shm/{first_segment}" in _segments()
            graph.add_edge(
                graph.add_node("New_Entity"), "type", graph.add_node("new_type")
            )
            fresh = engine.search(QUERY)
            assert fresh is not outcome.result  # old version's cache purged
            second_segment = engine._pinned.shared.segment
            assert second_segment != first_segment
            assert f"/dev/shm/{first_segment}" not in _segments()
            assert f"/dev/shm/{second_segment}" in _segments()
        # -- engine close unlinks everything it published ------------------
        assert _segments() <= before

    def test_deterministic_across_backends_and_cache_clears(self, graph):
        with NCEngine(
            graph, context_size=3, max_workers=1, executor="process", seed=5
        ) as engine:
            first = engine.search(QUERY)
            engine.cache.clear()
            second = engine.search(QUERY)
            assert first is not second
            assert [r.score for r in first.results] == [
                r.score for r in second.results
            ]

    def test_rejects_unknown_executor(self, graph):
        with pytest.raises(ValueError, match="executor"):
            NCEngine(graph, executor="fiber")
