"""Unit tests for the exact / Monte-Carlo multinomial test."""

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.errors import StatisticsError
from repro.stats.multinomial import (
    exact_multinomial_test,
    log_multinomial_pmf,
    montecarlo_multinomial_test,
    multinomial_test,
    number_of_compositions,
)


class TestLogPmf:
    def test_binomial_agreement(self):
        pi = np.array([0.3, 0.7])
        x = np.array([2, 3])
        expected = scipy_stats.binom.logpmf(2, 5, 0.3)
        assert log_multinomial_pmf(pi, x) == pytest.approx(float(expected))

    def test_zero_probability_cell(self):
        assert log_multinomial_pmf(np.array([0.0, 1.0]), np.array([1, 0])) == float(
            "-inf"
        )

    def test_degenerate_certainty(self):
        assert log_multinomial_pmf(np.array([1.0]), np.array([4])) == pytest.approx(0.0)

    def test_pmf_sums_to_one_small_case(self):
        pi = np.array([0.2, 0.5, 0.3])
        n = 4
        total = 0.0
        for a in range(n + 1):
            for b in range(n + 1 - a):
                c = n - a - b
                total += math.exp(log_multinomial_pmf(pi, np.array([a, b, c])))
        assert total == pytest.approx(1.0)


class TestCompositions:
    def test_known_values(self):
        assert number_of_compositions(5, 1) == 1
        assert number_of_compositions(5, 2) == 6
        assert number_of_compositions(2, 3) == 6

    def test_invalid(self):
        with pytest.raises(StatisticsError):
            number_of_compositions(-1, 2)
        with pytest.raises(StatisticsError):
            number_of_compositions(3, 0)


class TestExactTest:
    def test_fair_coin_extreme(self):
        # [5, 0] under (0.5, 0.5): only (5,0) and (0,5) are that unlikely.
        result = exact_multinomial_test([0.5, 0.5], [5, 0])
        assert result.p_value == pytest.approx(2 * 0.5**5)
        assert result.method == "exact"

    def test_typical_outcome_not_significant(self):
        result = exact_multinomial_test([0.5, 0.5], [3, 2])
        assert result.p_value > 0.5
        assert not result.significant
        assert result.score == 0.0

    def test_observation_on_zero_cell_maximally_significant(self):
        result = exact_multinomial_test([1.0, 0.0], [0, 3])
        assert result.p_value == 0.0
        assert result.significant
        assert result.score == 1.0

    def test_zero_cells_excluded_from_enumeration(self):
        # Same answer with or without padding zero-probability cells.
        with_pad = exact_multinomial_test([0.5, 0.5, 0.0], [4, 1, 0])
        without = exact_multinomial_test([0.5, 0.5], [4, 1])
        assert with_pad.p_value == pytest.approx(without.p_value)

    def test_empty_observation_degenerate(self):
        result = exact_multinomial_test([0.4, 0.6], [0, 0])
        assert result.p_value == 1.0
        assert result.method == "degenerate"

    def test_p_value_never_exceeds_one(self):
        result = exact_multinomial_test([0.25, 0.25, 0.25, 0.25], [1, 1, 1, 1])
        assert 0.0 <= result.p_value <= 1.0

    def test_agrees_with_binomial_two_sided_mass(self):
        # Pr_s = sum of binomial pmf over outcomes with pmf <= pmf(obs).
        pi = [0.3, 0.7]
        obs = [4, 1]
        n = 5
        pmf = [float(scipy_stats.binom.pmf(k, n, 0.3)) for k in range(n + 1)]
        threshold = pmf[4]
        expected = sum(p for p in pmf if p <= threshold * (1 + 1e-9))
        result = exact_multinomial_test(pi, obs)
        assert result.p_value == pytest.approx(expected)


class TestMonteCarloTest:
    def test_close_to_exact(self):
        pi = [0.2, 0.3, 0.5]
        x = [5, 0, 0]
        exact = exact_multinomial_test(pi, x)
        approx = montecarlo_multinomial_test(pi, x, samples=60_000, rng=3)
        assert approx.p_value == pytest.approx(exact.p_value, abs=0.01)
        assert approx.method == "montecarlo"

    def test_never_returns_zero(self):
        result = montecarlo_multinomial_test([0.5, 0.5], [20, 0], samples=1000, rng=1)
        assert result.p_value > 0.0

    def test_deterministic_under_seed(self):
        a = montecarlo_multinomial_test([0.5, 0.5], [6, 1], samples=5000, rng=9)
        b = montecarlo_multinomial_test([0.5, 0.5], [6, 1], samples=5000, rng=9)
        assert a.p_value == b.p_value

    def test_zero_cell_shortcut(self):
        result = montecarlo_multinomial_test([1.0, 0.0], [1, 1], samples=100, rng=1)
        assert result.p_value == 0.0


class TestDispatch:
    def test_small_case_uses_exact(self):
        result = multinomial_test([0.5, 0.5], [3, 1])
        assert result.method == "exact"

    def test_large_support_uses_montecarlo(self):
        pi = [1 / 60] * 60
        x = [0] * 60
        x[0] = 3
        x[1] = 2
        result = multinomial_test(pi, x, samples=2000, rng=4)
        assert result.method == "montecarlo"

    def test_significance_flag_respects_alpha(self):
        lenient = multinomial_test([0.5, 0.5], [5, 0], alpha=0.10)
        strict = multinomial_test([0.5, 0.5], [5, 0], alpha=0.01)
        assert lenient.significant  # p = 0.0625 <= 0.10
        assert not strict.significant

    def test_score_is_one_minus_p_when_significant(self):
        result = multinomial_test([0.9, 0.1], [0, 5])
        assert result.significant
        assert result.score == pytest.approx(1.0 - result.p_value)


class TestValidation:
    def test_support_mismatch(self):
        with pytest.raises(StatisticsError):
            multinomial_test([0.5, 0.5], [1, 2, 3])

    def test_unnormalized_pi_rejected(self):
        with pytest.raises(StatisticsError):
            multinomial_test([0.5, 0.2], [1, 1])

    def test_negative_counts_rejected(self):
        with pytest.raises(StatisticsError):
            multinomial_test([0.5, 0.5], [-1, 2])

    def test_negative_pi_rejected(self):
        with pytest.raises(StatisticsError):
            multinomial_test([-0.5, 1.5], [1, 1])

    def test_empty_support_rejected(self):
        with pytest.raises(StatisticsError):
            multinomial_test([], [])

    def test_bad_sample_count_rejected(self):
        with pytest.raises(StatisticsError):
            montecarlo_multinomial_test([0.5, 0.5], [1, 1], samples=0)


class TestVectorizedEnumeration:
    def test_compositions_array_matches_reference(self):
        from repro.stats.multinomial import _iter_compositions, compositions_array

        for n in range(0, 7):
            for k in range(1, 5):
                reference = np.array(list(_iter_compositions(n, k)), dtype=np.int64)
                vectorized = compositions_array(n, k)
                assert vectorized.shape == (
                    number_of_compositions(n, k),
                    k,
                ), (n, k)
                assert (vectorized == reference.reshape(-1, k)).all(), (n, k)

    def test_compositions_array_validates(self):
        from repro.stats.multinomial import compositions_array

        with pytest.raises(StatisticsError):
            compositions_array(-1, 2)
        with pytest.raises(StatisticsError):
            compositions_array(3, 0)

    def test_outcome_table_cache_reuses_arrays(self):
        from repro.stats.multinomial import _cached_outcome_table

        first = _cached_outcome_table(4, 3)
        again = _cached_outcome_table(4, 3)
        assert first[0] is again[0]
        assert not first[0].flags.writeable  # shared across threads

    def test_streamed_and_cached_paths_agree(self):
        from repro.stats.multinomial import _composition_batches

        pi = np.array([0.1, 0.2, 0.3, 0.4])
        x = np.array([3, 0, 1, 1])
        expected = exact_multinomial_test(pi, x)
        # force the streaming path by tiny batches
        streamed = np.concatenate(list(_composition_batches(5, 4, batch_rows=7)))
        from repro.stats.multinomial import compositions_array

        assert (streamed == compositions_array(5, 4)).all()
        assert expected.method == "exact"

    def test_outcome_table_cache_respects_budget(self):
        from repro.stats.multinomial import _OutcomeTableCache

        cache = _OutcomeTableCache(budget_elements=200)
        first = cache.get(4, 3)  # 15 rows x 3 = 45 elements
        assert cache.get(4, 3)[0] is first[0]
        cache.get(5, 3)  # 21 x 3 = 63
        cache.get(6, 3)  # 28 x 3 = 84
        cache.get(7, 3)  # 36 x 3 = 108 -> budget exceeded, LRU evicted
        assert cache._elements <= 200 or len(cache._entries) == 1
        # evicted entry is rebuilt as a fresh (but equal) array
        rebuilt = cache.get(4, 3)
        assert (rebuilt[0] == first[0]).all()
