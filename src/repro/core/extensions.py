"""Extensions sketched in the paper's future work (Section 6).

"As future work we plan to expand the notion of notable characteristics to
incorporate more complex patterns. We also intend to explore correlations
between attributes as well as graph structures and incorporate results
into the model."

Two such extensions, built on the same distribution/test machinery:

* **Composite characteristics** (:class:`CompositeCharacteristicFinder`):
  a characteristic is a two-label *path pattern* ``l1 -> l2`` (e.g.
  ``graduatedFrom -> isLocatedIn``: the country of one's university). The
  instance distribution counts the 2-hop endpoints, the cardinality
  distribution the number of matching paths per node, and the same
  multinomial test applies.
* **Attribute correlations** (:class:`CorrelationFinder`): for a pair of
  labels, the 2x2 *existence* contingency (has both / only first / only
  second / neither) of the query is tested against the context's — "query
  members who win prizes also own companies" becomes testable.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.core.discrimination import (
    DiscriminationResult,
    Discriminator,
    MultinomialDiscriminator,
)
from repro.core.distributions import NONE_INSTANCE, CharacteristicDistributions
from repro.graph.labels import is_inverse_label
from repro.graph.model import KnowledgeGraph, NodeRef
from repro.stats.histograms import align_count_maps
from repro.stats.multinomial import MultinomialTestResult, multinomial_test
from repro.util.rng import RandomSource


# -- composite (path) characteristics -------------------------------------------


@dataclass(frozen=True)
class CompositeLabel:
    """A two-hop path pattern acting as one characteristic."""

    first: str
    second: str

    def __str__(self) -> str:
        return f"{self.first}->{self.second}"


def composite_instance_counts(
    graph: KnowledgeGraph,
    nodes: Iterable[NodeRef],
    pattern: CompositeLabel,
    *,
    none_bucket: bool = True,
) -> dict[object, int]:
    """Endpoint counts of 2-hop paths ``node -first-> . -second-> value``."""
    counts: dict[object, int] = {}
    for node in nodes:
        endpoints: list[int] = []
        for middle in graph.neighbors(node, pattern.first):
            endpoints.extend(graph.neighbors(middle, pattern.second))
        if not endpoints and none_bucket:
            counts[NONE_INSTANCE] = counts.get(NONE_INSTANCE, 0) + 1
            continue
        for endpoint in endpoints:
            value = graph.node_name(endpoint)
            counts[value] = counts.get(value, 0) + 1
    return counts


def composite_cardinality_counts(
    graph: KnowledgeGraph, nodes: Iterable[NodeRef], pattern: CompositeLabel
) -> dict[int, int]:
    """``{i: members with exactly i matching 2-hop paths}``."""
    counts: dict[int, int] = {}
    for node in nodes:
        paths = sum(
            graph.out_degree(middle, pattern.second)
            for middle in graph.neighbors(node, pattern.first)
        )
        counts[paths] = counts.get(paths, 0) + 1
    return counts


def build_composite_distributions(
    graph: KnowledgeGraph,
    query: Sequence[NodeRef],
    context: Sequence[NodeRef],
    pattern: CompositeLabel,
    *,
    none_bucket: bool = True,
) -> CharacteristicDistributions:
    """The Inst/Card pairs of a composite characteristic."""
    inst_q = composite_instance_counts(graph, query, pattern, none_bucket=none_bucket)
    inst_c = composite_instance_counts(
        graph, context, pattern, none_bucket=none_bucket
    )
    support, x_inst, y_inst = align_count_maps(inst_q, inst_c)
    card_q = composite_cardinality_counts(graph, query, pattern)
    card_c = composite_cardinality_counts(graph, context, pattern)
    max_card = max(max(card_q, default=0), max(card_c, default=0))
    card_support = tuple(range(max_card + 1))
    x_card = np.array([card_q.get(i, 0) for i in card_support], dtype=np.int64)
    y_card = np.array([card_c.get(i, 0) for i in card_support], dtype=np.int64)
    return CharacteristicDistributions(
        label=str(pattern),
        instance_support=tuple(support),
        inst_query=x_inst,
        inst_context=y_inst,
        cardinality_support=card_support,
        card_query=x_card,
        card_context=y_card,
    )


class CompositeCharacteristicFinder:
    """Scores two-hop path patterns as candidate notable characteristics.

    Candidate patterns pair a label leaving the query with a label leaving
    its value nodes, capped at ``max_patterns`` (2-hop pattern space grows
    quadratically; the cap keeps runs interactive).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        *,
        discriminator: Discriminator | None = None,
        max_patterns: int = 40,
        include_inverse: bool = False,
        rng: RandomSource = None,
    ) -> None:
        self._graph = graph
        self._discriminator = discriminator or MultinomialDiscriminator(rng=rng)
        self.max_patterns = max_patterns
        self.include_inverse = include_inverse

    def candidate_patterns(
        self, query: Sequence[NodeRef]
    ) -> list[CompositeLabel]:
        """Label pairs actually instantiated from the query's 2-hop region."""
        graph = self._graph
        first_labels: set[str] = set()
        second_by_first: dict[str, set[str]] = {}
        for node in query:
            for label in graph.out_labels(node):
                if not self.include_inverse and is_inverse_label(label):
                    continue
                first_labels.add(label)
                seconds = second_by_first.setdefault(label, set())
                for middle in graph.neighbors(node, label):
                    for second in graph.out_labels(middle):
                        if is_inverse_label(second) and not self.include_inverse:
                            continue
                        seconds.add(second)
        patterns = [
            CompositeLabel(first, second)
            for first in sorted(first_labels)
            for second in sorted(second_by_first.get(first, ()))
            # the trivial bounce-back first -> first_inv is never notable
            if second not in (first, f"{first}_inv")
        ]
        return patterns[: self.max_patterns]

    def run(
        self, query: Sequence[NodeRef], context: Sequence[NodeRef]
    ) -> list[DiscriminationResult]:
        """Score every candidate composite pattern; sorted by score."""
        results = []
        for pattern in self.candidate_patterns(query):
            distributions = build_composite_distributions(
                self._graph, query, context, pattern
            )
            results.append(self._discriminator.score(distributions))
        results.sort(key=lambda r: (-r.score, r.label))
        return results


# -- attribute correlations ---------------------------------------------------------


@dataclass(frozen=True)
class CorrelationResult:
    """Existence-correlation test for one label pair."""

    first: str
    second: str
    p_value: float
    query_cells: tuple[int, int, int, int]  # both, only first, only second, neither
    context_cells: tuple[int, int, int, int]

    @property
    def notable(self) -> bool:
        """Whether the pair's co-occurrence shift is significant (p <= 0.05)."""
        return self.p_value <= 0.05

    @property
    def label(self) -> str:
        """The pair rendered as one characteristic name (``"a & b"``)."""
        return f"{self.first} & {self.second}"

    def query_joint_rate(self) -> float:
        """Fraction of query entities carrying *both* labels."""
        total = sum(self.query_cells)
        return self.query_cells[0] / total if total else 0.0

    def context_joint_rate(self) -> float:
        """Fraction of context entities carrying *both* labels."""
        total = sum(self.context_cells)
        return self.context_cells[0] / total if total else 0.0


def existence_cells(
    graph: KnowledgeGraph, nodes: Iterable[NodeRef], first: str, second: str
) -> tuple[int, int, int, int]:
    """The 2x2 existence contingency ``(both, only first, only second, neither)``."""
    both = only_first = only_second = neither = 0
    for node in nodes:
        has_first = graph.out_degree(node, first) > 0
        has_second = graph.out_degree(node, second) > 0
        if has_first and has_second:
            both += 1
        elif has_first:
            only_first += 1
        elif has_second:
            only_second += 1
        else:
            neither += 1
    return (both, only_first, only_second, neither)


class CorrelationFinder:
    """Tests pairwise attribute correlations, query vs context.

    The context's 2x2 existence histogram for each label pair is the
    multinomial hypothesis; the query's cells are the observation — the
    same machinery as the per-label test, one level up.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        *,
        alpha: float = 0.05,
        smoothing: float = 0.5,
        max_pairs: int = 60,
        rng: RandomSource = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self._graph = graph
        self.alpha = alpha
        self.smoothing = smoothing
        self.max_pairs = max_pairs
        self._rng = rng

    def candidate_pairs(self, query: Sequence[NodeRef]) -> list[tuple[str, str]]:
        """Unordered label pairs incident to the query, capped at ``max_pairs``."""
        labels = sorted(
            label
            for label in self._graph.incident_labels(query)
            if not is_inverse_label(label)
        )
        return list(combinations(labels, 2))[: self.max_pairs]

    def test_pair(
        self,
        query: Sequence[NodeRef],
        context: Sequence[NodeRef],
        first: str,
        second: str,
    ) -> CorrelationResult:
        """Multinomial test of the pair's 2x2 existence table, query vs context."""
        query_cells = existence_cells(self._graph, query, first, second)
        context_cells = existence_cells(self._graph, context, first, second)
        context_arr = np.array(context_cells, dtype=float) + self.smoothing
        pi = context_arr / context_arr.sum()
        outcome: MultinomialTestResult = multinomial_test(
            pi, np.array(query_cells), alpha=self.alpha, rng=self._rng
        )
        return CorrelationResult(
            first=first,
            second=second,
            p_value=outcome.p_value,
            query_cells=query_cells,
            context_cells=context_cells,
        )

    def run(
        self, query: Sequence[NodeRef], context: Sequence[NodeRef]
    ) -> list[CorrelationResult]:
        """Test every candidate pair; sorted by ascending p-value."""
        results = [
            self.test_pair(query, context, first, second)
            for first, second in self.candidate_pairs(query)
        ]
        results.sort(key=lambda r: (r.p_value, r.label))
        return results
