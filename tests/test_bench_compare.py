"""Tests for tools/bench_compare.py and the bootstrap CI primitives."""

import importlib.util
import json
import math
import sys
from pathlib import Path

import pytest

from repro.eval.bootstrap import (
    bootstrap_quantile_ci,
    quantile,
    quantile_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def bench_compare():
    """The tools/bench_compare.py module, loaded from its file path."""
    spec = importlib.util.spec_from_file_location(
        "bench_compare", REPO_ROOT / "tools" / "bench_compare.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_compare", module)
    spec.loader.exec_module(module)
    return module


class TestBootstrap:
    def test_quantile_interpolates(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
        assert quantile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0
        assert math.isnan(quantile([], 0.9))

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)

    def test_ci_is_deterministic_and_brackets_point(self):
        samples = [float(i % 13) for i in range(100)]
        first = bootstrap_quantile_ci(samples, 0.9, iterations=200, seed=3)
        assert first == bootstrap_quantile_ci(samples, 0.9, iterations=200, seed=3)
        point, lo, hi = first
        assert lo <= point <= hi

    def test_tiny_samples_collapse_band(self):
        point, lo, hi = bootstrap_quantile_ci([2.0], 0.5)
        assert point == lo == hi == 2.0

    def test_quantile_report_shape(self):
        block = quantile_report([0.01 * i for i in range(50)], iterations=100)
        assert set(block) == {"p50", "p90", "p99"}
        for entry in block.values():
            assert entry["ci_lo"] <= entry["value"] <= entry["ci_hi"]


class TestCompare:
    def test_self_check_passes(self, bench_compare, capsys):
        assert bench_compare.self_check() == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_detected_end_to_end(self, bench_compare, tmp_path):
        base = [0.010 + (i % 10) * 0.0002 for i in range(150)]
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(
            json.dumps({"pr": 6, "load_profile": {"open": {"latencies_s": base}}})
        )
        new.write_text(
            json.dumps(
                {
                    "pr": 7,
                    "load_profile": {
                        "open": {"latencies_s": [v * 3 for v in base]}
                    },
                }
            )
        )
        assert bench_compare.main([str(old), str(new), "--iterations", "200"]) == 1
        assert bench_compare.main([str(new), str(old), "--iterations", "200"]) == 0
        assert bench_compare.main([str(old), str(old), "--json"]) == 0

    def test_malformed_input_is_exit_2(self, bench_compare, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text("{not json")
        assert bench_compare.main([str(junk), str(junk)]) == 2

    def test_committed_bench_report_has_load_profile(self, bench_compare):
        report = bench_compare.load_report(str(REPO_ROOT / "BENCH_PR7.json"))
        assert report["pr"] == 7
        samples = bench_compare.latency_samples(report)
        assert len(samples) >= 30
        for run in ("open", "closed"):
            block = report["load_profile"][run]["quantiles"]
            assert block["p99"]["ci_lo"] <= block["p99"]["value"]
