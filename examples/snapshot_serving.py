"""Snapshot-store walkthrough: compile once, cold-start in milliseconds.

The PR-4 serving story, end to end:

1. ``repro.datasets.to_snapshot`` routes the synthetic YAGO dataset
   through the streaming bulk ingester into a single-file binary
   snapshot (the same eight columnar arrays the live graph compiles,
   plus the name tables and the frozen PPR transition matrix).
2. ``repro.disk.open_snapshot_view`` maps that file back — zero-copy,
   no parsing, no dict graph — and the view feeds straight into
   ``NCEngine``: the whole FindNC service runs with **no
   KnowledgeGraph in the process**.
3. The boot-time gap is measured live: generate+compile vs one mmap.

The CLI spells the same flow ``repro compile yago yago.snap`` +
``repro serve --snapshot yago.snap``.

Run:  python examples/snapshot_serving.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro import NCEngine
from repro.datasets import load_dataset, to_snapshot
from repro.datasets.loader import clear_dataset_cache
from repro.disk import open_snapshot_view


def compile_snapshot(path: str) -> None:
    """Step 1: dataset → snapshot file through the bulk ingester."""
    stats = to_snapshot("yago", path, scale=1.0)
    print(f"[1] compiled synthetic YAGO -> {os.path.basename(path)}")
    print(f"    |V|={stats.nodes}, |E|={stats.edges}, |L|={stats.labels}, "
          f"{stats.bytes_written} bytes on disk")


def serve_from_snapshot(path: str) -> None:
    """Step 2: mmap the file and serve queries graph-free."""
    started = time.perf_counter()
    view = open_snapshot_view(path)
    opened = time.perf_counter() - started
    print(f"\n[2] mmap cold start: {view.summary()} in {opened * 1e3:.1f}ms")

    with NCEngine(view, context_size=50, seed=11) as engine:
        engine.pin()
        result = engine.search(["angela merkel", "barack obama"])
        print("    notable characteristics for {angela merkel, barack obama}:")
        for notable in result.notable[:5]:
            print(f"      * {notable.label} (score {notable.score:.3f})")


def compare_boot_times(path: str) -> None:
    """Step 3: the cold-start gap, measured on this machine."""
    clear_dataset_cache()  # force a real generate+compile
    started = time.perf_counter()
    load_dataset("yago", scale=1.0).compiled()
    build_s = time.perf_counter() - started

    started = time.perf_counter()
    view = open_snapshot_view(path)
    int(view.compiled().indptr[-1])  # touch the index
    mmap_s = time.perf_counter() - started

    print(f"\n[3] boot comparison: build+compile {build_s * 1e3:.0f}ms vs "
          f"mmap {mmap_s * 1e3:.1f}ms ({build_s / mmap_s:.0f}x)")


def main() -> None:
    """Run the three steps against a temp snapshot file."""
    with tempfile.TemporaryDirectory(prefix="repro-example-") as workdir:
        path = os.path.join(workdir, "yago-s1.snap")
        compile_snapshot(path)
        serve_from_snapshot(path)
        compare_boot_times(path)


if __name__ == "__main__":
    main()
