"""The streaming bulk ingester: dict-graph parity, dedup, closure, formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.ingest import (
    StreamingCompiler,
    compile_triples,
    detect_format,
    ingest_file,
    ingest_triples,
)
from repro.disk.store import open_snapshot
from repro.graph.builder import graph_from_triples
from repro.graph.compiled import ARRAY_FIELDS
from repro.graph.io import save_graph

node_names = st.sampled_from([f"n{i}" for i in range(6)])
label_names = st.sampled_from(["r", "s", "t"])
fact_lists = st.lists(
    st.tuples(node_names, label_names, node_names), min_size=1, max_size=25
)


def assert_byte_identical(compiled, expected):
    for name, dtype in ARRAY_FIELDS:
        actual = getattr(compiled, name)
        assert actual.dtype == dtype
        assert actual.tobytes() == getattr(expected, name).tobytes(), name
    assert compiled.node_count == expected.node_count
    assert compiled.label_count == expected.label_count


class TestDictGraphParity:
    @given(fact_lists)
    @settings(max_examples=40, deadline=None)
    def test_same_stream_same_arrays(self, facts):
        """Ingesting a stream == building the dict graph from it + compiling."""
        graph = graph_from_triples(facts)
        compiled, names, labels, stats = compile_triples(facts)
        assert_byte_identical(compiled, graph.compiled())
        assert names == graph._node_names_list()
        assert list(labels) == list(graph._label_table())
        assert stats.edges == graph.edge_count

    @given(fact_lists)
    @settings(max_examples=40, deadline=None)
    def test_closure_off_parity(self, facts):
        graph = graph_from_triples(facts, add_inverse=False)
        compiled, names, labels, _ = compile_triples(facts, add_inverse=False)
        assert_byte_identical(compiled, graph.compiled())
        assert names == graph._node_names_list()

    def test_preinterned_vocabulary_reproduces_ids(self):
        """Pre-interned names pin node/label ids regardless of stream order."""
        facts = [("a", "r", "b"), ("c", "s", "a")]
        graph = graph_from_triples(facts)
        names = graph._node_names_list()
        labels = list(graph._label_table())
        # Feed the graph's edges back in graph-iteration order (not the
        # original insertion order) with the vocabulary pre-interned: the
        # arrays must still come out identical to graph.compiled().
        stream = [
            (names[edge.source], edge.label, names[edge.target])
            for edge in graph.edges()
        ]
        compiled, out_names, out_labels, _ = compile_triples(
            stream,
            add_inverse=False,
            node_names=names,
            label_names=labels,
            version=graph.version,
        )
        assert_byte_identical(compiled, graph.compiled())
        assert out_names == names
        assert compiled.version == graph.version


class TestDedupAndCounting:
    def test_duplicate_statements_collapse(self):
        facts = [("a", "r", "b")] * 5 + [("b", "s", "c")]
        compiled, _, _, stats = compile_triples(facts)
        graph = graph_from_triples(facts)
        assert_byte_identical(compiled, graph.compiled())
        assert stats.triples == 6
        assert stats.edges == graph.edge_count
        assert stats.duplicates == 4 * 2  # repeat copies dropped, both directions

    def test_empty_stream(self):
        compiled, names, labels, stats = compile_triples([])
        assert compiled.node_count == 0
        assert compiled.edge_count == 0
        assert names == [] and len(labels) == 0
        assert stats.triples == 0

    def test_self_loops_and_palindromes(self):
        facts = [("a", "r", "a"), ("a", "r_inv", "a")]
        graph = graph_from_triples(facts)
        compiled, _, _, _ = compile_triples(facts)
        assert_byte_identical(compiled, graph.compiled())

    def test_rejects_empty_node_name(self):
        compiler = StreamingCompiler()
        with pytest.raises(ValueError, match="non-empty"):
            compiler.add("", "r", "b")


class TestFileIngest:
    def test_ntriples_file_matches_same_stream_graph(self, tmp_path):
        graph = graph_from_triples(
            [("Angela_Merkel", "leaderOf", "Germany"),
             ("Barack_Obama", "leaderOf", "USA"),
             ("Angela_Merkel", "born", "1954")]
        )
        nt = tmp_path / "dump.nt"
        save_graph(graph, str(nt))
        snap = tmp_path / "dump.snap"
        stats = ingest_file(nt, snap)
        assert stats.bytes_written > 0
        # Oracle: the dict graph built from the SAME parsed stream.
        from repro.store.ntriples import load_ntriples_file

        stream = [
            (str(t.subject), str(t.predicate), str(t.object))
            for t in load_ntriples_file(str(nt))
        ]
        oracle = graph_from_triples(stream)
        with open_snapshot(snap) as stored:
            assert_byte_identical(stored.compiled, oracle.compiled())
            assert list(stored.node_names) == oracle._node_names_list()
            assert stored.transition() is not None

    def test_tsv_file_ingest(self, tmp_path):
        tsv = tmp_path / "facts.tsv"
        tsv.write_text(
            "Angela_Merkel\tleaderOf\tGermany\n"
            "#comment line\n"
            "Barack_Obama\tleaderOf\tUSA\n"
        )
        snap = tmp_path / "facts.snap"
        stats = ingest_file(tsv, snap, fmt="tsv")
        assert stats.triples == 2
        assert stats.edges == 4  # inverse closure
        with open_snapshot(snap) as stored:
            assert "leaderOf" in list(stored.label_table)
            assert "leaderOf_inv" in list(stored.label_table)

    def test_format_detection(self, tmp_path):
        assert detect_format("x.nt") == "nt"
        assert detect_format("x.ntriples") == "nt"
        assert detect_format("x.tsv") == "tsv"
        with pytest.raises(ValueError, match="cannot infer"):
            detect_format("x.parquet")
        with pytest.raises(ValueError, match="unknown dump format"):
            ingest_file(tmp_path / "x.nt", tmp_path / "x.snap", fmt="rdfxml")

    def test_no_transition_flag(self, tmp_path):
        stats = ingest_triples(
            [("a", "r", "b")], tmp_path / "x.snap", include_transition=False
        )
        assert stats.edges == 2
        with open_snapshot(tmp_path / "x.snap") as stored:
            assert stored.transition() is None


class TestIngestedSnapshotIsServable:
    def test_out_weight_matches_transition_normalizers(self):
        """The baked transition is the one the pipeline would build."""
        from repro.graph.matrix import transition_from_snapshot

        facts = [("a", "r", "b"), ("b", "s", "c"), ("c", "t", "a")]
        compiled, _, _, _ = compile_triples(facts)
        transition = transition_from_snapshot(compiled)
        # Column sums of a transition matrix are 1 for non-dangling nodes.
        sums = np.asarray(transition.sum(axis=0)).ravel()
        dangling = compiled.out_degrees() == 0
        assert np.allclose(sums[~dangling], 1.0)
        assert np.allclose(sums[dangling], 0.0)
