"""Unit tests for the minimal SPARQL SELECT front-end."""

import pytest

from repro.errors import ParseError
from repro.store.sparql import parse_select, select
from repro.store.terms import IRI, Literal
from repro.store.triples import Triple
from repro.store.triplestore import TripleStore


@pytest.fixture()
def store():
    st = TripleStore()
    facts = [
        ("merkel", "type", "politician"),
        ("obama", "type", "politician"),
        ("pitt", "type", "actor"),
        ("merkel", "isLeaderOf", "germany"),
        ("obama", "isLeaderOf", "usa"),
        ("merkel", "studied", "physics"),
        ("obama", "studied", "law"),
    ]
    for s, p, o in facts:
        st.add(Triple.of(s, p, o))
    st.add(Triple(IRI("merkel"), IRI("born"), Literal("1954")))
    return st


class TestParsing:
    def test_basic_shape(self):
        query = parse_select(
            "SELECT ?x WHERE { ?x <type> <politician> . }"
        )
        assert query.variables == ("x",)
        assert not query.distinct
        assert query.limit is None

    def test_star_projection(self):
        query = parse_select("SELECT * WHERE { ?x <type> ?t . }")
        assert query.variables == ()

    def test_distinct_and_limit(self):
        query = parse_select(
            "SELECT DISTINCT ?t WHERE { ?x <type> ?t . } LIMIT 5"
        )
        assert query.distinct
        assert query.limit == 5

    def test_case_insensitive_keywords(self):
        query = parse_select("select ?x where { ?x <type> <actor> . } limit 1")
        assert query.limit == 1

    def test_rejects_unbound_projection(self):
        with pytest.raises(ParseError):
            parse_select("SELECT ?nope WHERE { ?x <type> ?t . }")

    def test_rejects_garbage(self):
        with pytest.raises(ParseError):
            parse_select("INSERT DATA { }")

    def test_rejects_malformed_pattern(self):
        with pytest.raises(ParseError):
            parse_select("SELECT ?x WHERE { ?x <only-two-terms> . }")

    def test_rejects_empty_where(self):
        with pytest.raises(ParseError):
            parse_select("SELECT ?x WHERE {   }")


class TestExecution:
    def test_single_pattern(self, store):
        rows = select(store, "SELECT ?x WHERE { ?x <type> <politician> . }")
        names = {str(row["x"]) for row in rows}
        assert names == {"merkel", "obama"}

    def test_join(self, store):
        rows = select(
            store,
            """SELECT ?who ?where WHERE {
                ?who <type> <politician> .
                ?who <isLeaderOf> ?where .
            }""",
        )
        pairs = {(str(r["who"]), str(r["where"])) for r in rows}
        assert pairs == {("merkel", "germany"), ("obama", "usa")}

    def test_projection_drops_other_variables(self, store):
        rows = select(
            store,
            "SELECT ?where WHERE { ?who <isLeaderOf> ?where . }",
        )
        assert all(set(row) == {"where"} for row in rows)

    def test_distinct_deduplicates(self, store):
        rows = select(
            store, "SELECT DISTINCT ?t WHERE { ?x <type> ?t . }"
        )
        assert len(rows) == 2  # politician, actor

    def test_limit(self, store):
        rows = select(store, "SELECT ?x WHERE { ?x <type> ?t . } LIMIT 2")
        assert len(rows) == 2

    def test_literal_object(self, store):
        rows = select(store, 'SELECT ?who WHERE { ?who <born> "1954" . }')
        assert [str(r["who"]) for r in rows] == ["merkel"]

    def test_star_returns_all_bindings(self, store):
        rows = select(store, "SELECT * WHERE { ?x <isLeaderOf> ?y . }")
        assert all(set(row) == {"x", "y"} for row in rows)

    def test_no_results(self, store):
        rows = select(
            store, "SELECT ?x WHERE { ?x <type> <astronaut> . }"
        )
        assert rows == []
