"""Figure 8 — cardinality distribution of ``hasWonPrize``, actors query.

Paper claims asserted: the query and context distributions "are quite
similar" — the multinomial test cannot reject equality, so the
characteristic is *not* notable under FindNC.
"""

from conftest import run_once

from repro.core.findnc import FindNC
from repro.datasets.seeds import ACTORS_DOMAIN
from repro.eval.experiments import distribution_figure, resolve_domain_queries


def test_fig8_haswonprize_cardinality_distribution(benchmark, setting):
    table = run_once(
        benchmark,
        distribution_figure,
        setting,
        label="hasWonPrize",
        channel="cardinality",
    )
    print()
    print(table.render())

    # The support covers small prize counts (0..4-ish), like the figure.
    cardinalities = [int(v) for v in table.column("value")]
    assert cardinalities[0] == 0
    assert max(cardinalities) <= 6

    # Both distributions put most mass on 0-3 prizes.
    for _value, query_p, context_p in table.rows[:4]:
        assert 0.0 <= query_p <= 1.0 and 0.0 <= context_p <= 1.0

    graph = setting.graph()
    query = resolve_domain_queries(graph, ACTORS_DOMAIN)[3]
    finder = FindNC(graph, context_size=100, rng=setting.algorithm_seed)
    result = finder.run(query)
    prize = result.result_for("hasWonPrize")
    assert not prize.notable, (
        f"'hasWonPrize' must not be notable under FindNC (p={prize.min_p_value})"
    )
    assert prize.min_p_value > 0.05
