"""Random-walk machinery: weighted walkers, Personalized PageRank (Eq. 2),
metapaths (Section 3.1) and the PathMining sampler."""

from repro.walk.metapath import Metapath, count_matching_paths
from repro.walk.pagerank import (
    PersonalizedPageRank,
    personalized_pagerank,
    power_iteration,
    power_iteration_batch,
    power_iteration_python,
)
from repro.walk.pathmining import MinedPaths, PathMiner
from repro.walk.walker import RandomWalker, WalkRecord

__all__ = [
    "Metapath",
    "MinedPaths",
    "PathMiner",
    "PersonalizedPageRank",
    "RandomWalker",
    "WalkRecord",
    "count_matching_paths",
    "personalized_pagerank",
    "power_iteration",
    "power_iteration_batch",
    "power_iteration_python",
]
