"""Compiled columnar graph snapshot — the batched-access substrate.

:class:`KnowledgeGraph` stores its adjacency as per-node dicts of Python
sets, which is the right shape for incremental mutation but the wrong
shape for the hot paths (distribution sweeps, PageRank, weighted-matrix
construction): every scan pays per-edge interpreter costs, repeated label
lookups and per-target name decoding.

:class:`CompiledGraph` is a frozen CSR-style encoding of the same
adjacency as flat numpy arrays:

* ``indptr`` / ``label_ids`` / ``targets`` — node-major edge rows: node
  ``v``'s out-edges occupy rows ``indptr[v]:indptr[v+1]``, grouped by
  label id (ascending) and sorted by target within a label, so the
  snapshot is deterministic for a given graph state.
* ``sources`` — the parallel source column, making the three arrays a
  ready-to-use COO triple for :func:`scipy.sparse.coo_matrix`.
* ``label_indptr`` / ``label_order`` — label-major edge slices: the rows
  of label ``l`` are ``label_order[label_indptr[l]:label_indptr[l+1]]``.
* ``label_weights`` / ``out_weight`` — Equation 1's informativeness
  weights per label id and their per-node out-edge sums (the random-walk
  normalizers), precomputed once instead of on every PageRank call.

Snapshots are immutable; the graph caches one per mutation
:attr:`~repro.graph.model.KnowledgeGraph.version` (see
:func:`compile_graph`), so any mutation transparently invalidates every
consumer. Callers must not write to the arrays.

**Pinning.** The public accessor
:meth:`repro.graph.model.KnowledgeGraph.compiled` returns the current
snapshot so callers can *pin* it: a pinned snapshot stays valid (and
immutable) while writers keep mutating the graph, which is what lets the
query service (:mod:`repro.service`) answer requests lock-free against a
live graph. Internal hot paths still go through the ``_compiled()``
alias. A pinned snapshot never covers nodes added after it was taken —
consumers that accept one (:meth:`repro.core.findnc.FindNC.run`) check
membership with :meth:`CompiledGraph.covers` and reject stale inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (model imports us lazily)
    from repro.graph.model import KnowledgeGraph


#: The snapshot's flat array fields in canonical order, with their dtypes.
#: This is the serialization contract of the snapshot layer: the
#: shared-memory exporter (:mod:`repro.parallel.shm`) lays the arrays out
#: in exactly this order, and :meth:`CompiledGraph.from_arrays`
#: reconstructs a snapshot from any buffers that honour it.
ARRAY_FIELDS: "tuple[tuple[str, np.dtype], ...]" = (
    ("indptr", np.dtype(np.int64)),
    ("sources", np.dtype(np.int64)),
    ("label_ids", np.dtype(np.int64)),
    ("targets", np.dtype(np.int64)),
    ("label_indptr", np.dtype(np.int64)),
    ("label_order", np.dtype(np.int64)),
    ("label_weights", np.dtype(np.float64)),
    ("out_weight", np.dtype(np.float64)),
)


@dataclass(frozen=True)
class CompiledGraph:
    """Immutable CSR-style snapshot of one :class:`KnowledgeGraph` version."""

    version: int
    node_count: int
    label_count: int
    #: ``(n + 1,)`` int64 — node ``v``'s edge rows are ``indptr[v]:indptr[v+1]``.
    indptr: np.ndarray
    #: ``(E,)`` int64 — source node id of each edge row.
    sources: np.ndarray
    #: ``(E,)`` int64 — label id of each edge row.
    label_ids: np.ndarray
    #: ``(E,)`` int64 — target node id of each edge row.
    targets: np.ndarray
    #: ``(L + 1,)`` int64 — label ``l``'s rows are ``label_order[label_indptr[l]:...]``.
    label_indptr: np.ndarray
    #: ``(E,)`` int64 — permutation of edge rows grouped by label id.
    label_order: np.ndarray
    #: ``(L,)`` float64 — Equation 1 weights ``1 - |E_l|/|E|`` (0 for dead labels).
    label_weights: np.ndarray
    #: ``(n,)`` float64 — per-node sum of out-edge label weights (walk normalizers).
    out_weight: np.ndarray

    @property
    def edge_count(self) -> int:
        """|E| of the snapshot (edge rows, inverse edges included)."""
        return int(self.targets.shape[0])

    def arrays(self) -> "dict[str, np.ndarray]":
        """The flat array fields, in :data:`ARRAY_FIELDS` order.

        The export side of the serialization boundary: everything a
        process needs to rebuild this snapshot besides the three scalar
        fields (``version``, ``node_count``, ``label_count``). Arrays are
        returned as-is (read-only views, zero-copy).
        """
        return {name: getattr(self, name) for name, _ in ARRAY_FIELDS}

    @classmethod
    def from_arrays(
        cls,
        *,
        version: int,
        node_count: int,
        label_count: int,
        arrays: "dict[str, np.ndarray]",
    ) -> "CompiledGraph":
        """Rebuild a snapshot from externally supplied array buffers.

        The attach side of the serialization boundary: ``arrays`` must
        hold every :data:`ARRAY_FIELDS` entry with the right dtype and a
        consistent shape (``indptr`` of length ``node_count + 1``,
        ``label_indptr`` of length ``label_count + 1``, the four edge
        columns all equally long). The buffers may view foreign memory —
        e.g. a :mod:`multiprocessing.shared_memory` segment — and are
        marked read-only in place, preserving zero-copy attachment.
        """
        views: dict[str, np.ndarray] = {}
        edge_total: int | None = None
        for name, dtype in ARRAY_FIELDS:
            if name not in arrays:
                raise ValueError(f"missing snapshot array {name!r}")
            array = arrays[name]
            if array.dtype != dtype:
                raise ValueError(
                    f"snapshot array {name!r} must have dtype {dtype}, "
                    f"got {array.dtype}"
                )
            if array.ndim != 1:
                raise ValueError(f"snapshot array {name!r} must be 1-D")
            array.setflags(write=False)
            views[name] = array
        expected = {
            "indptr": node_count + 1,
            "label_indptr": label_count + 1,
            "label_weights": label_count,
            "out_weight": node_count,
        }
        for name, length in expected.items():
            if views[name].shape[0] != length:
                raise ValueError(
                    f"snapshot array {name!r} has length {views[name].shape[0]}, "
                    f"expected {length}"
                )
        edge_total = views["targets"].shape[0]
        for name in ("sources", "label_ids", "label_order"):
            if views[name].shape[0] != edge_total:
                raise ValueError(
                    f"snapshot array {name!r} has length {views[name].shape[0]}, "
                    f"expected the edge count {edge_total}"
                )
        return cls(
            version=version,
            node_count=node_count,
            label_count=label_count,
            **views,
        )

    def node_slice(self, node: int) -> slice:
        """The edge-row slice of ``node`` into the node-major arrays."""
        return slice(int(self.indptr[node]), int(self.indptr[node + 1]))

    def out_degrees(self) -> np.ndarray:
        """``(n,)`` int64 — total out-degree per node."""
        return np.diff(self.indptr)

    def edges_for_label(self, label_id: int) -> tuple[np.ndarray, np.ndarray]:
        """``(sources, targets)`` of every edge carrying ``label_id``."""
        if not 0 <= label_id < self.label_count:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        rows = self.label_order[
            self.label_indptr[label_id] : self.label_indptr[label_id + 1]
        ]
        return self.sources[rows], self.targets[rows]

    def covers(self, nodes: "np.ndarray | list[int] | tuple[int, ...]") -> bool:
        """Whether every id in ``nodes`` existed when this snapshot was taken.

        Nodes added to the graph after compilation have ids beyond
        ``node_count``; pinned-snapshot consumers use this to reject
        queries that reference them instead of indexing out of bounds.
        """
        arr = np.asarray(nodes, dtype=np.int64)
        if arr.size == 0:
            return True
        return bool(arr.min() >= 0 and arr.max() < self.node_count)

    def incident_label_ids(self, nodes: "np.ndarray | list[int] | tuple[int, ...]") -> np.ndarray:
        """Sorted unique label ids on out-edges of ``nodes`` (``L | nodes``).

        The snapshot-side equivalent of
        :meth:`repro.graph.model.KnowledgeGraph.incident_labels`, used by
        pinned-snapshot candidate enumeration (Definition 3).
        """
        rows, _ = self.gather_rows(np.asarray(list(nodes), dtype=np.int64))
        return np.unique(self.label_ids[rows])

    def gather_rows(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Edge rows of ``nodes`` (with multiplicity), plus their owner index.

        Returns ``(rows, owners)`` where ``rows`` indexes the edge arrays
        and ``owners[i]`` is the position in ``nodes`` that row ``i``
        belongs to. One vectorized gather instead of a per-node Python
        loop — the primitive under the single-sweep distribution builder.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        starts = self.indptr[nodes]
        lengths = self.indptr[nodes + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        # Row i of the output is starts[owner] + (i - first output row of owner).
        ends = np.cumsum(lengths)
        local = np.arange(total, dtype=np.int64) - np.repeat(ends - lengths, lengths)
        rows = np.repeat(starts, lengths) + local
        owners = np.repeat(np.arange(nodes.shape[0], dtype=np.int64), lengths)
        return rows, owners


def compile_graph(graph: "KnowledgeGraph") -> CompiledGraph:
    """Compile ``graph``'s adjacency into a :class:`CompiledGraph`.

    One O(E log deg) pass; callers normally go through the version-keyed
    cache ``graph._compiled()`` instead of calling this directly.
    """
    adjacency = graph._out_adjacency()  # noqa: SLF001 - internal fast path
    n = graph.node_count
    label_count = len(graph._label_table())  # noqa: SLF001 - internal fast path
    edge_total = graph.edge_count

    indptr = np.zeros(n + 1, dtype=np.int64)
    label_ids = np.empty(edge_total, dtype=np.int64)
    targets = np.empty(edge_total, dtype=np.int64)
    pos = 0
    for node in range(n):
        for label_id, node_targets in sorted(adjacency[node].items()):
            end = pos + len(node_targets)
            label_ids[pos:end] = label_id
            targets[pos:end] = sorted(node_targets)
            pos = end
        indptr[node + 1] = pos
    if pos != edge_total:  # pragma: no cover - would mean a corrupted graph
        raise RuntimeError(
            f"graph reports {edge_total} edges but adjacency holds {pos}"
        )
    sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))

    # Label-major view: a stable argsort keeps (source, target) order inside
    # each label group, matching the node-major ordering.
    label_order = np.argsort(label_ids, kind="stable").astype(np.int64, copy=False)
    label_counts = np.bincount(label_ids, minlength=label_count) if edge_total else (
        np.zeros(label_count, dtype=np.int64)
    )
    label_indptr = np.zeros(label_count + 1, dtype=np.int64)
    np.cumsum(label_counts, out=label_indptr[1:])

    # Equation 1 weights (identical formula to GraphStatistics.label_weights).
    label_weights = np.zeros(label_count, dtype=np.float64)
    if edge_total:
        live = label_counts > 0
        label_weights[live] = 1.0 - label_counts[live] / edge_total
    out_weight = (
        np.bincount(sources, weights=label_weights[label_ids], minlength=n)
        if edge_total
        else np.zeros(n, dtype=np.float64)
    )

    snapshot = CompiledGraph(
        version=graph.version,
        node_count=n,
        label_count=label_count,
        indptr=indptr,
        sources=sources,
        label_ids=label_ids,
        targets=targets,
        label_indptr=label_indptr,
        label_order=label_order,
        label_weights=label_weights,
        out_weight=out_weight,
    )
    for array in (
        indptr,
        sources,
        label_ids,
        targets,
        label_indptr,
        label_order,
        label_weights,
        out_weight,
    ):
        array.setflags(write=False)
    return snapshot
