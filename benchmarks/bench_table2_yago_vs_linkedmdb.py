"""Table 2 — ContextRW max F1 on YAGO vs LinkedMDB (actors domain).

Paper claims asserted:
* results on the two datasets are comparable — per the paper the overall
  max F1 gap stays small ("not larger than 0.07" in the text's intent; we
  assert <= 0.25 at our scale, see EXPERIMENTS.md for the measured gap and
  the direction deviation);
* every max F1 is attained at a non-trivial context size (the ranking is
  informative, not a top-1 artifact).
"""

from conftest import run_once

from repro.eval.experiments import dataset_comparison


def test_table2_yago_vs_linkedmdb(benchmark, setting):
    table = run_once(benchmark, dataset_comparison, setting)
    print()
    print(table.render())

    by_key = {(q, d): (f1, argmax) for q, d, f1, argmax in table.rows}
    for q in (2, 3, 4, 5, 6):
        yago_f1, yago_k = by_key[(q, "yago")]
        lmdb_f1, lmdb_k = by_key[(q, "linkedmdb")]
        assert yago_f1 > 0.15 and lmdb_f1 > 0.15, (
            f"both datasets must retrieve substantial context at |Q|={q}"
        )
        assert abs(yago_f1 - lmdb_f1) <= 0.25, (
            f"dataset gap too large at |Q|={q}: {yago_f1:.3f} vs {lmdb_f1:.3f}"
        )
        assert yago_k >= 10 and lmdb_k >= 10
