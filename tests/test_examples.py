"""Smoke tests for the runnable examples (the cheap ones run fully)."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestProductCatalog:
    def test_builds_and_finds_weather_sealing(self, capsys):
        module = runpy.run_path(str(EXAMPLES / "product_catalog.py"))
        module["main"]()
        out = capsys.readouterr().out
        assert "weather_sealing" in out
        assert "NOTABLE" in out

    def test_catalog_is_deterministic(self):
        module = runpy.run_path(str(EXAMPLES / "product_catalog.py"))
        a = module["build_catalog"]()
        b = module["build_catalog"]()
        assert a.node_count == b.node_count
        assert a.edge_count == b.edge_count


class TestQuickstartPart1:
    def test_figure1_context(self, capsys):
        module = runpy.run_path(str(EXAMPLES / "quickstart.py"))
        module["part1_context_on_figure1"]()
        out = capsys.readouterr().out
        assert "Vladimir_Putin" in out
        assert "Matteo_Renzi" in out
        assert "Francois_Hollande" in out


class TestExampleFilesPresent:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart.py",
            "actors_comparison.py",
            "authors_influences.py",
            "product_catalog.py",
            "complex_patterns.py",
            "snapshot_serving.py",
        ],
    )
    def test_example_exists_and_compiles(self, name):
        path = EXAMPLES / name
        assert path.exists()
        # compile without executing (the heavy ones build scale-2 graphs)
        source = path.read_text(encoding="utf-8")
        compile(source, str(path), "exec")
        assert '"""' in source  # every example is documented


class TestSnapshotServing:
    def test_compile_and_serve_graph_free(self, capsys):
        module = runpy.run_path(str(EXAMPLES / "snapshot_serving.py"))
        module["main"]()
        out = capsys.readouterr().out
        assert "mmap cold start" in out
        assert "notable characteristics" in out
        assert "boot comparison" in out


class TestCrossProcessDeterminism:
    """Regression: namespace-derived RNGs must not depend on PYTHONHASHSEED."""

    CODE = (
        "from repro.datasets import synthetic_yago\n"
        "import hashlib\n"
        "g = synthetic_yago(scale=0.3, seed=5)\n"
        "edges = sorted((g.node_name(e.source), e.label, g.node_name(e.target))"
        " for e in g.edges())\n"
        "print(hashlib.sha256(str(edges).encode()).hexdigest())\n"
    )

    def test_same_graph_across_processes(self):
        digests = set()
        for seed in ("1", "2"):  # different hash salts
            result = subprocess.run(
                [sys.executable, "-c", self.CODE],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                check=False,
            )
            if result.returncode != 0:  # pragma: no cover - env-dependent
                pytest.skip(f"subprocess unavailable: {result.stderr[:200]}")
            digests.add(result.stdout.strip())
        assert len(digests) == 1, "graph generation depends on the hash salt"
