"""Tests for the concurrent NC query engine (pinning, cache, single-flight)."""

import threading

import pytest

from repro.core.findnc import FindNCResult
from repro.datasets.figure1 import figure1_graph
from repro.errors import QueryError
from repro.service.engine import NCEngine


@pytest.fixture()
def graph():
    return figure1_graph()


@pytest.fixture()
def engine(graph):
    with NCEngine(graph, context_size=3, max_workers=2, seed=5) as eng:
        yield eng


QUERY = ["Angela_Merkel", "Barack_Obama"]


class TestSearch:
    def test_end_to_end(self, engine, graph):
        result = engine.search(QUERY)
        assert isinstance(result, FindNCResult)
        assert sorted(graph.node_name(n) for n in result.query) == sorted(QUERY)
        assert len(result.context) <= 3
        assert result.results  # candidates were evaluated

    def test_cache_hit_returns_same_object(self, engine):
        first = engine.search(QUERY)
        outcome = engine.request(QUERY)
        assert outcome.cached
        assert outcome.result is first

    def test_identical_requests_are_deterministic(self, engine):
        first = engine.search(QUERY)
        engine.cache.clear()
        second = engine.search(QUERY)
        assert second is not first
        assert [r.label for r in second.results] == [r.label for r in first.results]
        assert [r.score for r in second.results] == [r.score for r in first.results]

    def test_query_spelling_shares_cache_entry(self, engine, graph):
        engine.search(QUERY)
        # fuzzy spelling, different order, and raw ids all canonicalize
        outcome = engine.request(["barack obama", "angela merkel"])
        assert outcome.cached
        ids = engine.request([graph.node_id(n) for n in QUERY])
        assert ids.cached
        assert engine.stats().computed == 1

    def test_params_are_part_of_the_key(self, engine):
        engine.search(QUERY)
        assert not engine.request(QUERY, context_size=2).cached
        assert not engine.request(QUERY, alpha=0.1).cached
        assert engine.stats().computed == 3

    def test_empty_query_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.search([])

    def test_closed_engine_rejects_requests(self, graph):
        eng = NCEngine(graph, context_size=3)
        eng.close()
        with pytest.raises(RuntimeError):
            eng.search(QUERY)


class TestPinning:
    def test_pin_is_stable_without_mutation(self, engine):
        assert engine.pin() is engine.pin()
        assert engine.stats().repins == 1

    def test_repin_after_mutation(self, engine, graph):
        state = engine.pin()
        graph.add_edge("Angela_Merkel", "testEdge", "Barack_Obama")
        fresh = engine.pin()
        assert fresh is not state
        assert fresh.snapshot.version == graph.version
        assert engine.stats().repins == 2

    def test_query_on_node_added_after_pin(self, engine, graph):
        engine.pin()
        graph.add_edge("Newcomer_Entity", "leaderOf", "Germany")
        # the engine must transparently re-pin; the new node is servable
        result = engine.search(["Newcomer_Entity"])
        assert result.results is not None


class TestCacheUnderMutation:
    def test_mutation_recomputes_and_purges(self, engine, graph):
        first = engine.search(QUERY)
        version_before = engine.stats().pinned_version
        assert engine.cache.stats().size == 1

        graph.add_edge("Angela_Merkel", "ownsPet", "Dog")
        second = engine.search(QUERY)

        stats = engine.stats()
        assert stats.pinned_version == graph.version > version_before
        assert stats.computed == 2  # old entry unreachable -> recomputed
        assert second is not first
        # re-pinning purged the stale version-keyed entry
        assert engine.cache.stats().purged == 1
        assert engine.cache.stats().size == 1
        # and the new entry serves hits at the new version
        assert engine.request(QUERY).cached

    def test_old_results_stay_usable_after_mutation(self, engine, graph):
        first = engine.search(QUERY)
        graph.add_edge("Angela_Merkel", "ownsPet", "Cat")
        # the pinned-snapshot result object is immutable state; reading it
        # after the graph moved on must still work
        assert first.notable_labels() == [n.label for n in first.notable]
        assert first.results[0].label == first.result_for(first.results[0].label).label


class TestSingleFlight:
    def test_concurrent_identical_requests_compute_once(self, graph):
        with NCEngine(graph, context_size=3, max_workers=4, seed=5) as engine:
            engine.pin()
            clients = 6
            barrier = threading.Barrier(clients)
            outcomes = []
            errors = []

            def client():
                try:
                    barrier.wait()
                    outcomes.append(engine.request(QUERY))
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            threads = [threading.Thread(target=client) for _ in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            stats = engine.stats()
            assert stats.computed == 1
            assert stats.requests == clients
            # every client saw the same result object
            results = {id(o.result) for o in outcomes}
            assert len(results) == 1
            # the non-computing clients either coalesced or hit the cache
            assert stats.coalesced + stats.cache_hits == clients - 1

    def test_distinct_queries_all_computed(self, graph):
        with NCEngine(graph, context_size=3, max_workers=4, seed=5) as engine:
            futures = [
                engine.submit([name])[0]
                for name in ("Angela_Merkel", "Barack_Obama", "Vladimir_Putin")
            ]
            results = [f.result() for f in futures]
            assert len(results) == 3
            assert engine.stats().computed == 3


class TestStats:
    def test_stats_shape(self, engine):
        engine.search(QUERY)
        d = engine.stats().as_dict()
        assert d["requests"] == 1
        assert d["computed"] == 1
        assert d["pinned_version"] is not None
        assert d["max_workers"] == 2
        assert d["cache"]["size"] == 1
