"""PathMining — the metapath sampler of Section 3.1.

"We sample a node in V \\ Q with uniform probability and run a random walk
until a query node is reached. The sequence of edge labels m encountered
during the random walk is added to the set of metapaths M along with the
number of times c(m) the same metapath has been found so far."

Two implementation choices are documented here:

* Walks are bounded by ``max_length`` edges (Figure 6 sweeps exactly this
  "maximum metapath length" knob); unbounded walks need not terminate.
* The mined label sequence is kept **as encountered** (walk order) and the
  scoring formula of Section 3.1 replays it *from the query nodes*. This
  asymmetry is load-bearing: a walk that reached the query from one of its
  attribute values (say ``company --created_inv--> actor``) produces a
  sequence that has **no** matches when replayed from an actor — so
  trivial "the query's own neighbourhood" patterns self-eliminate, and
  only role-symmetric, entity-to-entity patterns (co-actor, co-type,
  shared-prize, ...) contribute to the context score. The start node's
  type is attached as the metapath's terminal-type constraint (phi in the
  alternating metapath definition of Section 2): the start node is the
  exemplar of what the replayed path should end at.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.graph.model import KnowledgeGraph
from repro.graph.statistics import GraphStatistics
from repro.util.rng import RandomSource, ensure_rng
from repro.walk.metapath import (
    Metapath,
    ScoredMetapath,
    normalize_probabilities,
    primary_type,
)
from repro.walk.walker import RandomWalker


@dataclass
class MinedPaths:
    """Result of a PathMining run."""

    paths: list[ScoredMetapath]
    samples: int
    hits: int

    @property
    def hit_rate(self) -> float:
        """Fraction of sampled walks that reached a query node."""
        return self.hits / self.samples if self.samples else 0.0

    def metapaths(self) -> list[Metapath]:
        return [p.metapath for p in self.paths]

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)


class PathMiner:
    """Mines metapaths connecting the graph at large to the query set."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        *,
        weighted: bool = True,
        rng: RandomSource = None,
        statistics: GraphStatistics | None = None,
    ) -> None:
        self._graph = graph
        self._rng = ensure_rng(rng)
        self._walker = RandomWalker(
            graph, weighted=weighted, rng=self._rng, statistics=statistics
        )

    @property
    def graph(self) -> KnowledgeGraph:
        return self._graph

    def mine(
        self,
        query: "list[int] | tuple[int, ...] | set[int]",
        *,
        samples: int = 10_000,
        max_length: int = 5,
        max_paths: int | None = None,
    ) -> MinedPaths:
        """Run ``samples`` walks and aggregate the metapaths that hit ``Q``.

        ``max_paths`` keeps only the |M| most frequent metapaths (the
        Table 3 knob); ``None`` keeps all. Probabilities ``Pr(m)`` are
        normalized over the *kept* set, matching "the relative count ...
        divided by the sum of the counts of all metapaths M".
        """
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        if max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {max_length}")
        query_set = frozenset(query)
        if not query_set:
            raise ValueError("query must not be empty")
        for node in query_set:
            if not self._graph.has_node(node):
                raise ValueError(f"query node id out of range: {node}")

        population = self._graph.node_count
        if population <= len(query_set):
            raise ValueError("graph has no nodes outside the query to sample")

        counts: Counter[tuple[tuple[str, ...], str | None]] = Counter()
        hits = 0
        rng = self._rng
        for _ in range(samples):
            start = self._sample_start(rng, population, query_set)
            record = self._walker.walk(start, max_length, stop_at=query_set)
            if record.end not in query_set or not record.labels:
                continue
            hits += 1
            # Keep the labels in walk order (see the module docstring) and
            # the start node's type as the terminal-type constraint.
            start_type = primary_type(self._graph, start)
            counts[(record.labels, start_type)] += 1

        ranked = sorted(
            counts.items(), key=lambda kv: (-kv[1], kv[0][0], kv[0][1] or "")
        )
        if max_paths is not None:
            if max_paths < 1:
                raise ValueError(f"max_paths must be >= 1, got {max_paths}")
            ranked = ranked[:max_paths]
        paths = [
            ScoredMetapath(Metapath(labels, end_type=end_type), count)
            for (labels, end_type), count in ranked
        ]
        normalize_probabilities(paths)
        return MinedPaths(paths=paths, samples=samples, hits=hits)

    def _sample_start(self, rng, population: int, query_set: frozenset[int]) -> int:
        """Uniform sample from V \\ Q by rejection (|Q| << |V| always)."""
        while True:
            candidate = rng.randrange(population)
            if candidate not in query_set:
                return candidate
