"""Micro-benchmarks of the substrate kernels.

Not paper artifacts — these measure the operations everything else is
built from, so performance regressions in the store, the walker, PageRank
or the multinomial test show up here first (multi-round, statistically
timed, unlike the single-shot experiment benches).
"""

import pytest

from repro.core.distributions import build_all_distributions, build_distributions
from repro.datasets.loader import load_dataset
from repro.stats.multinomial import exact_multinomial_test, montecarlo_multinomial_test
from repro.store.terms import IRI
from repro.store.triples import Triple
from repro.store.triplestore import TripleStore
from repro.walk.pagerank import PersonalizedPageRank
from repro.walk.walker import RandomWalker


@pytest.fixture(scope="module")
def graph():
    return load_dataset("yago", scale=1.0)


@pytest.fixture(scope="module")
def loaded_store():
    store = TripleStore()
    for i in range(5_000):
        store.add(Triple.of(f"s{i % 500}", f"p{i % 20}", f"o{i % 800}"))
    return store


class TestStoreKernels:
    def test_bulk_insert_speed(self, benchmark):
        triples = [
            Triple.of(f"s{i % 500}", f"p{i % 20}", f"o{i % 800}")
            for i in range(2_000)
        ]

        def insert():
            TripleStore(triples)

        benchmark(insert)

    def test_predicate_scan_speed(self, benchmark, loaded_store):
        predicate = IRI("p3")

        def scan():
            return sum(1 for _ in loaded_store.match(predicate=predicate))

        count = benchmark(scan)
        assert count > 0

    def test_point_lookup_speed(self, benchmark, loaded_store):
        triple = Triple.of("s1", "p1", "o1")

        def lookup():
            return triple in loaded_store

        benchmark(lookup)


class TestWalkKernels:
    def test_walk_steps_per_second(self, benchmark, graph):
        walker = RandomWalker(graph, rng=1)

        def do_walks():
            for start in range(0, 200):
                walker.walk(start % graph.node_count, 5)

        benchmark(do_walks)

    def test_pagerank_iteration_speed(self, benchmark, graph):
        ppr = PersonalizedPageRank(graph, iterations=10)
        ppr.transition()  # warm the cache; measure the iteration only

        def run():
            return ppr.scores([0])

        scores = benchmark(run)
        assert abs(scores.sum() - 1.0) < 1e-9

    def test_pagerank_batched_per_node_speed(self, benchmark, graph):
        """Five per-query-node PPR runs as one multi-column iteration."""
        ppr = PersonalizedPageRank(graph, iterations=10)
        ppr.transition()  # warm the cache; measure the iteration only
        nodes = list(range(5))

        def run():
            return ppr.scores_per_node(nodes)

        scores = benchmark(run)
        assert abs(scores.sum() - 5.0) < 1e-9


class TestStatsKernels:
    def test_exact_multinomial_speed(self, benchmark):
        pi = [0.4, 0.3, 0.2, 0.1]
        x = [3, 2, 1, 0]

        result = benchmark(lambda: exact_multinomial_test(pi, x))
        assert 0.0 <= result.p_value <= 1.0

    def test_montecarlo_multinomial_speed(self, benchmark):
        pi = [1 / 30] * 30
        x = [0] * 30
        x[0], x[1], x[2] = 3, 1, 1

        result = benchmark(
            lambda: montecarlo_multinomial_test(pi, x, samples=20_000, rng=3)
        )
        assert 0.0 <= result.p_value <= 1.0


class TestPipelineKernels:
    def test_distribution_build_speed(self, benchmark, graph):
        from repro.datasets.seeds import ACTORS_DOMAIN

        query = [graph.node_id(n) for n in ACTORS_DOMAIN.entities[:5]]
        context = [n for n in range(200) if n not in query][:100]

        def build():
            return build_distributions(graph, query, context, "hasWonPrize")

        dists = benchmark(build)
        assert dists.query_size == 5

    def test_batch_distribution_build_speed(self, benchmark, graph):
        """The discrimination-phase kernel: every candidate label, one sweep.

        This is the FindNC hot path at evaluation scale (context >= 500);
        the per-label reference path re-scans Q ∪ C once per label instead.
        """
        from repro.core.findnc import FindNC
        from repro.datasets.seeds import ACTORS_DOMAIN

        query = [graph.node_id(n) for n in ACTORS_DOMAIN.entities[:5]]
        context = [n for n in graph.nodes() if n not in query][:500]
        labels = FindNC(graph).candidate_labels(query + context)
        graph._compiled()  # warm the snapshot; measure the sweep only

        def build():
            return build_all_distributions(graph, query, context, labels)

        dists = benchmark(build)
        assert len(dists) == len(labels)
